/root/repo/target/release/examples/shared_ssd-8edcc447c9c1d6c3.d: crates/bench/../../examples/shared_ssd.rs

/root/repo/target/release/examples/shared_ssd-8edcc447c9c1d6c3: crates/bench/../../examples/shared_ssd.rs

crates/bench/../../examples/shared_ssd.rs:
