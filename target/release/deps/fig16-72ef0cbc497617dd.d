/root/repo/target/release/deps/fig16-72ef0cbc497617dd.d: crates/bench/benches/fig16.rs

/root/repo/target/release/deps/fig16-72ef0cbc497617dd: crates/bench/benches/fig16.rs

crates/bench/benches/fig16.rs:
