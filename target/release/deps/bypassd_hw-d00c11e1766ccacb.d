/root/repo/target/release/deps/bypassd_hw-d00c11e1766ccacb.d: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

/root/repo/target/release/deps/libbypassd_hw-d00c11e1766ccacb.rlib: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

/root/repo/target/release/deps/libbypassd_hw-d00c11e1766ccacb.rmeta: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

crates/hw/src/lib.rs:
crates/hw/src/iommu.rs:
crates/hw/src/lru.rs:
crates/hw/src/mem.rs:
crates/hw/src/page_table.rs:
crates/hw/src/pte.rs:
crates/hw/src/types.rs:
