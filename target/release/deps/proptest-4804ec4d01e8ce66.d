/root/repo/target/release/deps/proptest-4804ec4d01e8ce66.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-4804ec4d01e8ce66: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
