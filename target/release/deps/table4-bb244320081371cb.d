/root/repo/target/release/deps/table4-bb244320081371cb.d: crates/bench/benches/table4.rs

/root/repo/target/release/deps/table4-bb244320081371cb: crates/bench/benches/table4.rs

crates/bench/benches/table4.rs:
