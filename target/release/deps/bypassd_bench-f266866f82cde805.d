/root/repo/target/release/deps/bypassd_bench-f266866f82cde805.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bypassd_bench-f266866f82cde805: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
