/root/repo/target/release/deps/bypassd-b28b12d10eaaacad.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/release/deps/libbypassd-b28b12d10eaaacad.rlib: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/release/deps/libbypassd-b28b12d10eaaacad.rmeta: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
