/root/repo/target/release/deps/fig13-21867b65bedf87d7.d: crates/bench/benches/fig13.rs

/root/repo/target/release/deps/fig13-21867b65bedf87d7: crates/bench/benches/fig13.rs

crates/bench/benches/fig13.rs:
