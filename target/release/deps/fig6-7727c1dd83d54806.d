/root/repo/target/release/deps/fig6-7727c1dd83d54806.d: crates/bench/benches/fig6.rs

/root/repo/target/release/deps/fig6-7727c1dd83d54806: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
