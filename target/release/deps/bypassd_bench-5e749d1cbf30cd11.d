/root/repo/target/release/deps/bypassd_bench-5e749d1cbf30cd11.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bypassd_bench-5e749d1cbf30cd11: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
