/root/repo/target/release/deps/fairness-ad38a1cb21a4ba30.d: crates/bench/benches/fairness.rs

/root/repo/target/release/deps/fairness-ad38a1cb21a4ba30: crates/bench/benches/fairness.rs

crates/bench/benches/fairness.rs:
