/root/repo/target/release/deps/bypassd_ssd-94392c1107d369ea.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/release/deps/libbypassd_ssd-94392c1107d369ea.rlib: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/release/deps/libbypassd_ssd-94392c1107d369ea.rmeta: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
