/root/repo/target/release/deps/parking_lot-f441786b8cd4ed24.d: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-f441786b8cd4ed24: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
