/root/repo/target/release/deps/bypassd_kv-f84e84980f73ccfa.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/release/deps/libbypassd_kv-f84e84980f73ccfa.rlib: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/release/deps/libbypassd_kv-f84e84980f73ccfa.rmeta: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
