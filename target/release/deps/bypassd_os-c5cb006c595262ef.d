/root/repo/target/release/deps/bypassd_os-c5cb006c595262ef.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/release/deps/libbypassd_os-c5cb006c595262ef.rlib: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/release/deps/libbypassd_os-c5cb006c595262ef.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
