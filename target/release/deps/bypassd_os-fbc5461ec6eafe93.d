/root/repo/target/release/deps/bypassd_os-fbc5461ec6eafe93.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/release/deps/libbypassd_os-fbc5461ec6eafe93.rlib: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/release/deps/libbypassd_os-fbc5461ec6eafe93.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
