/root/repo/target/release/deps/fig15-969e9aca2a063006.d: crates/bench/benches/fig15.rs

/root/repo/target/release/deps/fig15-969e9aca2a063006: crates/bench/benches/fig15.rs

crates/bench/benches/fig15.rs:
