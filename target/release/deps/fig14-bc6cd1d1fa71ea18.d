/root/repo/target/release/deps/fig14-bc6cd1d1fa71ea18.d: crates/bench/benches/fig14.rs

/root/repo/target/release/deps/fig14-bc6cd1d1fa71ea18: crates/bench/benches/fig14.rs

crates/bench/benches/fig14.rs:
