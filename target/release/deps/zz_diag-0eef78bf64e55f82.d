/root/repo/target/release/deps/zz_diag-0eef78bf64e55f82.d: crates/bench/benches/zz_diag.rs

/root/repo/target/release/deps/zz_diag-0eef78bf64e55f82: crates/bench/benches/zz_diag.rs

crates/bench/benches/zz_diag.rs:
