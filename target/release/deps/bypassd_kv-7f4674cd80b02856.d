/root/repo/target/release/deps/bypassd_kv-7f4674cd80b02856.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/release/deps/libbypassd_kv-7f4674cd80b02856.rlib: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/release/deps/libbypassd_kv-7f4674cd80b02856.rmeta: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
