/root/repo/target/release/deps/proptest-43f194592bdb673c.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-43f194592bdb673c.rlib: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-43f194592bdb673c.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
