/root/repo/target/release/deps/fig10-1afdf1530958a789.d: crates/bench/benches/fig10.rs

/root/repo/target/release/deps/fig10-1afdf1530958a789: crates/bench/benches/fig10.rs

crates/bench/benches/fig10.rs:
