/root/repo/target/release/deps/bypassd_sim-03e978b62584a581.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libbypassd_sim-03e978b62584a581.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libbypassd_sim-03e978b62584a581.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
