/root/repo/target/release/deps/bypassd_bench-ee8a9174f45f53f1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbypassd_bench-ee8a9174f45f53f1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbypassd_bench-ee8a9174f45f53f1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
