/root/repo/target/release/deps/fig7-fda811aaa1e21d89.d: crates/bench/benches/fig7.rs

/root/repo/target/release/deps/fig7-fda811aaa1e21d89: crates/bench/benches/fig7.rs

crates/bench/benches/fig7.rs:
