/root/repo/target/release/deps/bypassd_hw-26ebe5a6bd277f4b.d: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

/root/repo/target/release/deps/bypassd_hw-26ebe5a6bd277f4b: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

crates/hw/src/lib.rs:
crates/hw/src/iommu.rs:
crates/hw/src/lru.rs:
crates/hw/src/mem.rs:
crates/hw/src/page_table.rs:
crates/hw/src/pte.rs:
crates/hw/src/types.rs:
