/root/repo/target/release/deps/fig10-d1fa234a88276290.d: crates/bench/benches/fig10.rs

/root/repo/target/release/deps/fig10-d1fa234a88276290: crates/bench/benches/fig10.rs

crates/bench/benches/fig10.rs:
