/root/repo/target/release/deps/fig16-f165670985dca81c.d: crates/bench/benches/fig16.rs

/root/repo/target/release/deps/fig16-f165670985dca81c: crates/bench/benches/fig16.rs

crates/bench/benches/fig16.rs:
