/root/repo/target/release/deps/fig5-2ae8ce3bdc16571f.d: crates/bench/benches/fig5.rs

/root/repo/target/release/deps/fig5-2ae8ce3bdc16571f: crates/bench/benches/fig5.rs

crates/bench/benches/fig5.rs:
