/root/repo/target/release/deps/bypassd_fio-063a780f8cd99499.d: crates/fio/src/lib.rs

/root/repo/target/release/deps/libbypassd_fio-063a780f8cd99499.rlib: crates/fio/src/lib.rs

/root/repo/target/release/deps/libbypassd_fio-063a780f8cd99499.rmeta: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
