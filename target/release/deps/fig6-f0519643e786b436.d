/root/repo/target/release/deps/fig6-f0519643e786b436.d: crates/bench/benches/fig6.rs

/root/repo/target/release/deps/fig6-f0519643e786b436: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
