/root/repo/target/release/deps/table1-d0438ae96e73808b.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-d0438ae96e73808b: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
