/root/repo/target/release/deps/criterion-323d5592f5aeea2a.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-323d5592f5aeea2a: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
