/root/repo/target/release/deps/bypassd_fio-b50a1641308c8db6.d: crates/fio/src/lib.rs

/root/repo/target/release/deps/bypassd_fio-b50a1641308c8db6: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
