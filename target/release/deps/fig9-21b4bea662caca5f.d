/root/repo/target/release/deps/fig9-21b4bea662caca5f.d: crates/bench/benches/fig9.rs

/root/repo/target/release/deps/fig9-21b4bea662caca5f: crates/bench/benches/fig9.rs

crates/bench/benches/fig9.rs:
