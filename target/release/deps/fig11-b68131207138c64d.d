/root/repo/target/release/deps/fig11-b68131207138c64d.d: crates/bench/benches/fig11.rs

/root/repo/target/release/deps/fig11-b68131207138c64d: crates/bench/benches/fig11.rs

crates/bench/benches/fig11.rs:
