/root/repo/target/release/deps/bypassd_sim-bc42d77dc6dc4346.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/bypassd_sim-bc42d77dc6dc4346: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
