/root/repo/target/release/deps/fig15-a9688108057ac59b.d: crates/bench/benches/fig15.rs

/root/repo/target/release/deps/fig15-a9688108057ac59b: crates/bench/benches/fig15.rs

crates/bench/benches/fig15.rs:
