/root/repo/target/release/deps/fig5-ed377c4ceea15f56.d: crates/bench/benches/fig5.rs

/root/repo/target/release/deps/fig5-ed377c4ceea15f56: crates/bench/benches/fig5.rs

crates/bench/benches/fig5.rs:
