/root/repo/target/release/deps/ablations-fa471e36af319c56.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-fa471e36af319c56: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
