/root/repo/target/release/deps/bypassd_ssd-b70187093ba3eb59.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/release/deps/bypassd_ssd-b70187093ba3eb59: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
