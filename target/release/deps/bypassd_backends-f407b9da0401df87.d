/root/repo/target/release/deps/bypassd_backends-f407b9da0401df87.d: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

/root/repo/target/release/deps/bypassd_backends-f407b9da0401df87: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

crates/backends/src/lib.rs:
crates/backends/src/aio_backend.rs:
crates/backends/src/bypassd_backend.rs:
crates/backends/src/spdk.rs:
crates/backends/src/sync_backend.rs:
crates/backends/src/traits.rs:
crates/backends/src/uring_backend.rs:
crates/backends/src/xrp_backend.rs:
