/root/repo/target/release/deps/table5-daa2e7836ae60ed5.d: crates/bench/benches/table5.rs

/root/repo/target/release/deps/table5-daa2e7836ae60ed5: crates/bench/benches/table5.rs

crates/bench/benches/table5.rs:
