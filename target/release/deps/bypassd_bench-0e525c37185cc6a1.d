/root/repo/target/release/deps/bypassd_bench-0e525c37185cc6a1.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbypassd_bench-0e525c37185cc6a1.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbypassd_bench-0e525c37185cc6a1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
