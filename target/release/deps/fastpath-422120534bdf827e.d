/root/repo/target/release/deps/fastpath-422120534bdf827e.d: crates/bench/benches/fastpath.rs

/root/repo/target/release/deps/fastpath-422120534bdf827e: crates/bench/benches/fastpath.rs

crates/bench/benches/fastpath.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
