/root/repo/target/release/deps/ablations-085cd17baed5aafb.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-085cd17baed5aafb: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
