/root/repo/target/release/deps/fig12-585f3a415629997b.d: crates/bench/benches/fig12.rs

/root/repo/target/release/deps/fig12-585f3a415629997b: crates/bench/benches/fig12.rs

crates/bench/benches/fig12.rs:
