/root/repo/target/release/deps/bypassd-9fc3b100a27316df.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/release/deps/bypassd-9fc3b100a27316df: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
