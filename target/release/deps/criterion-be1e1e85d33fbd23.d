/root/repo/target/release/deps/criterion-be1e1e85d33fbd23.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-be1e1e85d33fbd23.rlib: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-be1e1e85d33fbd23.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
