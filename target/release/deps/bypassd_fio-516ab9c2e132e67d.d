/root/repo/target/release/deps/bypassd_fio-516ab9c2e132e67d.d: crates/fio/src/lib.rs

/root/repo/target/release/deps/bypassd_fio-516ab9c2e132e67d: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
