/root/repo/target/release/deps/bypassd_ext4-65272cd1309a2761.d: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs

/root/repo/target/release/deps/bypassd_ext4-65272cd1309a2761: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs

crates/ext4/src/lib.rs:
crates/ext4/src/alloc.rs:
crates/ext4/src/dir.rs:
crates/ext4/src/extent.rs:
crates/ext4/src/fmap.rs:
crates/ext4/src/fs.rs:
crates/ext4/src/journal.rs:
crates/ext4/src/layout.rs:
