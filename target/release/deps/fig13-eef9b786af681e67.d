/root/repo/target/release/deps/fig13-eef9b786af681e67.d: crates/bench/benches/fig13.rs

/root/repo/target/release/deps/fig13-eef9b786af681e67: crates/bench/benches/fig13.rs

crates/bench/benches/fig13.rs:
