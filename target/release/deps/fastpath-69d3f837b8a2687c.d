/root/repo/target/release/deps/fastpath-69d3f837b8a2687c.d: crates/bench/benches/fastpath.rs

/root/repo/target/release/deps/fastpath-69d3f837b8a2687c: crates/bench/benches/fastpath.rs

crates/bench/benches/fastpath.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
