/root/repo/target/release/deps/fig8-fa9c6a7166fee474.d: crates/bench/benches/fig8.rs

/root/repo/target/release/deps/fig8-fa9c6a7166fee474: crates/bench/benches/fig8.rs

crates/bench/benches/fig8.rs:
