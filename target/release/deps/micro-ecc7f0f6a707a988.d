/root/repo/target/release/deps/micro-ecc7f0f6a707a988.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-ecc7f0f6a707a988: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
