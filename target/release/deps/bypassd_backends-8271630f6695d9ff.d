/root/repo/target/release/deps/bypassd_backends-8271630f6695d9ff.d: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

/root/repo/target/release/deps/libbypassd_backends-8271630f6695d9ff.rlib: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

/root/repo/target/release/deps/libbypassd_backends-8271630f6695d9ff.rmeta: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

crates/backends/src/lib.rs:
crates/backends/src/aio_backend.rs:
crates/backends/src/bypassd_backend.rs:
crates/backends/src/spdk.rs:
crates/backends/src/sync_backend.rs:
crates/backends/src/traits.rs:
crates/backends/src/uring_backend.rs:
crates/backends/src/xrp_backend.rs:
