/root/repo/target/release/deps/table5-8ed764b2c092809e.d: crates/bench/benches/table5.rs

/root/repo/target/release/deps/table5-8ed764b2c092809e: crates/bench/benches/table5.rs

crates/bench/benches/table5.rs:
