/root/repo/target/release/deps/bypassd_os-7f7d40c943caf14a.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/release/deps/bypassd_os-7f7d40c943caf14a: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
