/root/repo/target/release/deps/bypassd_qos-7985495a63291a6d.d: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

/root/repo/target/release/deps/libbypassd_qos-7985495a63291a6d.rlib: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

/root/repo/target/release/deps/libbypassd_qos-7985495a63291a6d.rmeta: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

crates/qos/src/lib.rs:
crates/qos/src/arbiter.rs:
crates/qos/src/bucket.rs:
crates/qos/src/config.rs:
crates/qos/src/drr.rs:
crates/qos/src/stats.rs:
