/root/repo/target/release/deps/bypassd-10d036d6ba2d134c.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/release/deps/libbypassd-10d036d6ba2d134c.rlib: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/release/deps/libbypassd-10d036d6ba2d134c.rmeta: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
