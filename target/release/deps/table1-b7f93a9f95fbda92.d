/root/repo/target/release/deps/table1-b7f93a9f95fbda92.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-b7f93a9f95fbda92: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
