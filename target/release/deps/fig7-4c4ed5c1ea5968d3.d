/root/repo/target/release/deps/fig7-4c4ed5c1ea5968d3.d: crates/bench/benches/fig7.rs

/root/repo/target/release/deps/fig7-4c4ed5c1ea5968d3: crates/bench/benches/fig7.rs

crates/bench/benches/fig7.rs:
