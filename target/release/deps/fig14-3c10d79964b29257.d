/root/repo/target/release/deps/fig14-3c10d79964b29257.d: crates/bench/benches/fig14.rs

/root/repo/target/release/deps/fig14-3c10d79964b29257: crates/bench/benches/fig14.rs

crates/bench/benches/fig14.rs:
