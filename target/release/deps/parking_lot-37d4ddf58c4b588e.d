/root/repo/target/release/deps/parking_lot-37d4ddf58c4b588e.d: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-37d4ddf58c4b588e.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-37d4ddf58c4b588e.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
