/root/repo/target/release/deps/fig12-127967bf3a389822.d: crates/bench/benches/fig12.rs

/root/repo/target/release/deps/fig12-127967bf3a389822: crates/bench/benches/fig12.rs

crates/bench/benches/fig12.rs:
