/root/repo/target/release/deps/bypassd_kv-d87603e906780ef8.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/release/deps/bypassd_kv-d87603e906780ef8: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
