/root/repo/target/release/deps/bypassd_fio-aa391fdd98b6aad6.d: crates/fio/src/lib.rs

/root/repo/target/release/deps/libbypassd_fio-aa391fdd98b6aad6.rlib: crates/fio/src/lib.rs

/root/repo/target/release/deps/libbypassd_fio-aa391fdd98b6aad6.rmeta: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
