/root/repo/target/release/deps/fig11-ac3fe3ebffc82f30.d: crates/bench/benches/fig11.rs

/root/repo/target/release/deps/fig11-ac3fe3ebffc82f30: crates/bench/benches/fig11.rs

crates/bench/benches/fig11.rs:
