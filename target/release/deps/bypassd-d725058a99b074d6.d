/root/repo/target/release/deps/bypassd-d725058a99b074d6.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/release/deps/bypassd-d725058a99b074d6: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
