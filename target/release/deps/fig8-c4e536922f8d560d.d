/root/repo/target/release/deps/fig8-c4e536922f8d560d.d: crates/bench/benches/fig8.rs

/root/repo/target/release/deps/fig8-c4e536922f8d560d: crates/bench/benches/fig8.rs

crates/bench/benches/fig8.rs:
