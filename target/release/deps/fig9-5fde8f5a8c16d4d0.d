/root/repo/target/release/deps/fig9-5fde8f5a8c16d4d0.d: crates/bench/benches/fig9.rs

/root/repo/target/release/deps/fig9-5fde8f5a8c16d4d0: crates/bench/benches/fig9.rs

crates/bench/benches/fig9.rs:
