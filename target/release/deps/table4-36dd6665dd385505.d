/root/repo/target/release/deps/table4-36dd6665dd385505.d: crates/bench/benches/table4.rs

/root/repo/target/release/deps/table4-36dd6665dd385505: crates/bench/benches/table4.rs

crates/bench/benches/table4.rs:
