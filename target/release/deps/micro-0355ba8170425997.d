/root/repo/target/release/deps/micro-0355ba8170425997.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-0355ba8170425997: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
