/root/repo/target/release/deps/bypassd_qos-43ac3be24b498c89.d: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

/root/repo/target/release/deps/bypassd_qos-43ac3be24b498c89: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

crates/qos/src/lib.rs:
crates/qos/src/arbiter.rs:
crates/qos/src/bucket.rs:
crates/qos/src/config.rs:
crates/qos/src/drr.rs:
crates/qos/src/stats.rs:
