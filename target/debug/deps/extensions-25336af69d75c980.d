/root/repo/target/debug/deps/extensions-25336af69d75c980.d: crates/bench/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-25336af69d75c980: crates/bench/../../tests/extensions.rs

crates/bench/../../tests/extensions.rs:
