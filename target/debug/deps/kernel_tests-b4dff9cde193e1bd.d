/root/repo/target/debug/deps/kernel_tests-b4dff9cde193e1bd.d: crates/os/tests/kernel_tests.rs

/root/repo/target/debug/deps/kernel_tests-b4dff9cde193e1bd: crates/os/tests/kernel_tests.rs

crates/os/tests/kernel_tests.rs:
