/root/repo/target/debug/deps/bypassd_qos-02f7b7eda3572f38.d: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_qos-02f7b7eda3572f38.rmeta: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs Cargo.toml

crates/qos/src/lib.rs:
crates/qos/src/arbiter.rs:
crates/qos/src/bucket.rs:
crates/qos/src/config.rs:
crates/qos/src/drr.rs:
crates/qos/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
