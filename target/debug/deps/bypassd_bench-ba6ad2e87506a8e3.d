/root/repo/target/debug/deps/bypassd_bench-ba6ad2e87506a8e3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_bench-ba6ad2e87506a8e3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
