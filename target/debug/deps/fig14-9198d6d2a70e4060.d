/root/repo/target/debug/deps/fig14-9198d6d2a70e4060.d: crates/bench/benches/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-9198d6d2a70e4060.rmeta: crates/bench/benches/fig14.rs Cargo.toml

crates/bench/benches/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
