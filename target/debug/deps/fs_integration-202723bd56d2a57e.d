/root/repo/target/debug/deps/fs_integration-202723bd56d2a57e.d: crates/ext4/tests/fs_integration.rs

/root/repo/target/debug/deps/fs_integration-202723bd56d2a57e: crates/ext4/tests/fs_integration.rs

crates/ext4/tests/fs_integration.rs:
