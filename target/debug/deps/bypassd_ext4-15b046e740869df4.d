/root/repo/target/debug/deps/bypassd_ext4-15b046e740869df4.d: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs

/root/repo/target/debug/deps/libbypassd_ext4-15b046e740869df4.rlib: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs

/root/repo/target/debug/deps/libbypassd_ext4-15b046e740869df4.rmeta: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs

crates/ext4/src/lib.rs:
crates/ext4/src/alloc.rs:
crates/ext4/src/dir.rs:
crates/ext4/src/extent.rs:
crates/ext4/src/fmap.rs:
crates/ext4/src/fs.rs:
crates/ext4/src/journal.rs:
crates/ext4/src/layout.rs:
