/root/repo/target/debug/deps/bypassd_hw-4df4fdb9a3c8bedb.d: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_hw-4df4fdb9a3c8bedb.rmeta: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/iommu.rs:
crates/hw/src/lru.rs:
crates/hw/src/mem.rs:
crates/hw/src/page_table.rs:
crates/hw/src/pte.rs:
crates/hw/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
