/root/repo/target/debug/deps/bypassd_fio-06d8cc21522fc805.d: crates/fio/src/lib.rs

/root/repo/target/debug/deps/libbypassd_fio-06d8cc21522fc805.rlib: crates/fio/src/lib.rs

/root/repo/target/debug/deps/libbypassd_fio-06d8cc21522fc805.rmeta: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
