/root/repo/target/debug/deps/bypassd_fio-7334cf01bb1df68a.d: crates/fio/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_fio-7334cf01bb1df68a.rmeta: crates/fio/src/lib.rs Cargo.toml

crates/fio/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
