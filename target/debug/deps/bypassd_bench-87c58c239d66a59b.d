/root/repo/target/debug/deps/bypassd_bench-87c58c239d66a59b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_bench-87c58c239d66a59b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
