/root/repo/target/debug/deps/model_based-f66845dcb55ae075.d: crates/bench/../../tests/model_based.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_based-f66845dcb55ae075.rmeta: crates/bench/../../tests/model_based.rs Cargo.toml

crates/bench/../../tests/model_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
