/root/repo/target/debug/deps/engine_tests-a449e9619d66b562.d: crates/kv/tests/engine_tests.rs Cargo.toml

/root/repo/target/debug/deps/libengine_tests-a449e9619d66b562.rmeta: crates/kv/tests/engine_tests.rs Cargo.toml

crates/kv/tests/engine_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
