/root/repo/target/debug/deps/extensions-2522aeaee52132fd.d: crates/bench/../../tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-2522aeaee52132fd.rmeta: crates/bench/../../tests/extensions.rs Cargo.toml

crates/bench/../../tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
