/root/repo/target/debug/deps/bypassd_qos-cb1acfba36e22b5a.d: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

/root/repo/target/debug/deps/bypassd_qos-cb1acfba36e22b5a: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

crates/qos/src/lib.rs:
crates/qos/src/arbiter.rs:
crates/qos/src/bucket.rs:
crates/qos/src/config.rs:
crates/qos/src/drr.rs:
crates/qos/src/stats.rs:
