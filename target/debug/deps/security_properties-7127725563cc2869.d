/root/repo/target/debug/deps/security_properties-7127725563cc2869.d: crates/bench/../../tests/security_properties.rs

/root/repo/target/debug/deps/security_properties-7127725563cc2869: crates/bench/../../tests/security_properties.rs

crates/bench/../../tests/security_properties.rs:
