/root/repo/target/debug/deps/bypassd_os-2a34df85563835d0.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_os-2a34df85563835d0.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
