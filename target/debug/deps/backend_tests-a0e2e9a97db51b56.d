/root/repo/target/debug/deps/backend_tests-a0e2e9a97db51b56.d: crates/backends/tests/backend_tests.rs

/root/repo/target/debug/deps/backend_tests-a0e2e9a97db51b56: crates/backends/tests/backend_tests.rs

crates/backends/tests/backend_tests.rs:
