/root/repo/target/debug/deps/bypassd_os-5e3fa2c54b44c5c0.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_os-5e3fa2c54b44c5c0.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
