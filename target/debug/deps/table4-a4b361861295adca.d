/root/repo/target/debug/deps/table4-a4b361861295adca.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-a4b361861295adca.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
