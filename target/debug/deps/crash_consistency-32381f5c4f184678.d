/root/repo/target/debug/deps/crash_consistency-32381f5c4f184678.d: crates/bench/../../tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-32381f5c4f184678: crates/bench/../../tests/crash_consistency.rs

crates/bench/../../tests/crash_consistency.rs:
