/root/repo/target/debug/deps/bypassd_backends-e31d081b8ac26b35.d: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

/root/repo/target/debug/deps/bypassd_backends-e31d081b8ac26b35: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

crates/backends/src/lib.rs:
crates/backends/src/aio_backend.rs:
crates/backends/src/bypassd_backend.rs:
crates/backends/src/spdk.rs:
crates/backends/src/sync_backend.rs:
crates/backends/src/traits.rs:
crates/backends/src/uring_backend.rs:
crates/backends/src/xrp_backend.rs:
