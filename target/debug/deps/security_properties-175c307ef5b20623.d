/root/repo/target/debug/deps/security_properties-175c307ef5b20623.d: crates/bench/../../tests/security_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_properties-175c307ef5b20623.rmeta: crates/bench/../../tests/security_properties.rs Cargo.toml

crates/bench/../../tests/security_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
