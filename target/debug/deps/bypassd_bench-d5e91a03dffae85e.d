/root/repo/target/debug/deps/bypassd_bench-d5e91a03dffae85e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbypassd_bench-d5e91a03dffae85e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbypassd_bench-d5e91a03dffae85e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
