/root/repo/target/debug/deps/bypassd_kv-cc25844081dcc424.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/debug/deps/libbypassd_kv-cc25844081dcc424.rlib: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/debug/deps/libbypassd_kv-cc25844081dcc424.rmeta: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
