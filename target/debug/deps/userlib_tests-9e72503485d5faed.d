/root/repo/target/debug/deps/userlib_tests-9e72503485d5faed.d: crates/core/tests/userlib_tests.rs

/root/repo/target/debug/deps/userlib_tests-9e72503485d5faed: crates/core/tests/userlib_tests.rs

crates/core/tests/userlib_tests.rs:
