/root/repo/target/debug/deps/bypassd_ext4-d702085f1fd61d9d.d: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_ext4-d702085f1fd61d9d.rmeta: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs Cargo.toml

crates/ext4/src/lib.rs:
crates/ext4/src/alloc.rs:
crates/ext4/src/dir.rs:
crates/ext4/src/extent.rs:
crates/ext4/src/fmap.rs:
crates/ext4/src/fs.rs:
crates/ext4/src/journal.rs:
crates/ext4/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
