/root/repo/target/debug/deps/end_to_end-f4944a884350221d.d: crates/bench/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-f4944a884350221d.rmeta: crates/bench/../../tests/end_to_end.rs Cargo.toml

crates/bench/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
