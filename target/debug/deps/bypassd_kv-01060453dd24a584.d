/root/repo/target/debug/deps/bypassd_kv-01060453dd24a584.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/debug/deps/bypassd_kv-01060453dd24a584: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
