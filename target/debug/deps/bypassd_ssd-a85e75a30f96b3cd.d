/root/repo/target/debug/deps/bypassd_ssd-a85e75a30f96b3cd.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/debug/deps/libbypassd_ssd-a85e75a30f96b3cd.rlib: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/debug/deps/libbypassd_ssd-a85e75a30f96b3cd.rmeta: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
