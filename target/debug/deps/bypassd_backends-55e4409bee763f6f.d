/root/repo/target/debug/deps/bypassd_backends-55e4409bee763f6f.d: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

/root/repo/target/debug/deps/libbypassd_backends-55e4409bee763f6f.rlib: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

/root/repo/target/debug/deps/libbypassd_backends-55e4409bee763f6f.rmeta: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs

crates/backends/src/lib.rs:
crates/backends/src/aio_backend.rs:
crates/backends/src/bypassd_backend.rs:
crates/backends/src/spdk.rs:
crates/backends/src/sync_backend.rs:
crates/backends/src/traits.rs:
crates/backends/src/uring_backend.rs:
crates/backends/src/xrp_backend.rs:
