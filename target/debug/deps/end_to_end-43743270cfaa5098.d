/root/repo/target/debug/deps/end_to_end-43743270cfaa5098.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-43743270cfaa5098: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
