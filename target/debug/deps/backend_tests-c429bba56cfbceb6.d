/root/repo/target/debug/deps/backend_tests-c429bba56cfbceb6.d: crates/backends/tests/backend_tests.rs

/root/repo/target/debug/deps/backend_tests-c429bba56cfbceb6: crates/backends/tests/backend_tests.rs

crates/backends/tests/backend_tests.rs:
