/root/repo/target/debug/deps/model_based-d11909cbb50eecc2.d: crates/bench/../../tests/model_based.rs

/root/repo/target/debug/deps/model_based-d11909cbb50eecc2: crates/bench/../../tests/model_based.rs

crates/bench/../../tests/model_based.rs:
