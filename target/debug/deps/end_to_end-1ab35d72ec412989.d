/root/repo/target/debug/deps/end_to_end-1ab35d72ec412989.d: crates/bench/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1ab35d72ec412989: crates/bench/../../tests/end_to_end.rs

crates/bench/../../tests/end_to_end.rs:
