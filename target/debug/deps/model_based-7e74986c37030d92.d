/root/repo/target/debug/deps/model_based-7e74986c37030d92.d: crates/bench/../../tests/model_based.rs

/root/repo/target/debug/deps/model_based-7e74986c37030d92: crates/bench/../../tests/model_based.rs

crates/bench/../../tests/model_based.rs:
