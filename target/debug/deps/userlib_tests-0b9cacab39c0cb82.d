/root/repo/target/debug/deps/userlib_tests-0b9cacab39c0cb82.d: crates/core/tests/userlib_tests.rs

/root/repo/target/debug/deps/userlib_tests-0b9cacab39c0cb82: crates/core/tests/userlib_tests.rs

crates/core/tests/userlib_tests.rs:
