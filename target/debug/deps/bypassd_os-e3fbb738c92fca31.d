/root/repo/target/debug/deps/bypassd_os-e3fbb738c92fca31.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_os-e3fbb738c92fca31.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
