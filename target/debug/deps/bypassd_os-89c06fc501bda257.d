/root/repo/target/debug/deps/bypassd_os-89c06fc501bda257.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/debug/deps/libbypassd_os-89c06fc501bda257.rlib: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/debug/deps/libbypassd_os-89c06fc501bda257.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
