/root/repo/target/debug/deps/bypassd_fio-b8b82f14f2221052.d: crates/fio/src/lib.rs

/root/repo/target/debug/deps/bypassd_fio-b8b82f14f2221052: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
