/root/repo/target/debug/deps/bypassd_backends-3d15a92f49b500f2.d: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_backends-3d15a92f49b500f2.rmeta: crates/backends/src/lib.rs crates/backends/src/aio_backend.rs crates/backends/src/bypassd_backend.rs crates/backends/src/spdk.rs crates/backends/src/sync_backend.rs crates/backends/src/traits.rs crates/backends/src/uring_backend.rs crates/backends/src/xrp_backend.rs Cargo.toml

crates/backends/src/lib.rs:
crates/backends/src/aio_backend.rs:
crates/backends/src/bypassd_backend.rs:
crates/backends/src/spdk.rs:
crates/backends/src/sync_backend.rs:
crates/backends/src/traits.rs:
crates/backends/src/uring_backend.rs:
crates/backends/src/xrp_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
