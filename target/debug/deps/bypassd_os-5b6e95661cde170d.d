/root/repo/target/debug/deps/bypassd_os-5b6e95661cde170d.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/debug/deps/libbypassd_os-5b6e95661cde170d.rlib: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/debug/deps/libbypassd_os-5b6e95661cde170d.rmeta: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
