/root/repo/target/debug/deps/bypassd_kv-0861bbc9bd254216.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_kv-0861bbc9bd254216.rmeta: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs Cargo.toml

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
