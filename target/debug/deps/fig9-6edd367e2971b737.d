/root/repo/target/debug/deps/fig9-6edd367e2971b737.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-6edd367e2971b737.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
