/root/repo/target/debug/deps/bypassd_qos-fb18ec3442820244.d: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

/root/repo/target/debug/deps/libbypassd_qos-fb18ec3442820244.rlib: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

/root/repo/target/debug/deps/libbypassd_qos-fb18ec3442820244.rmeta: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs

crates/qos/src/lib.rs:
crates/qos/src/arbiter.rs:
crates/qos/src/bucket.rs:
crates/qos/src/config.rs:
crates/qos/src/drr.rs:
crates/qos/src/stats.rs:
