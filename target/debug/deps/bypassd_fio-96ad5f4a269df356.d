/root/repo/target/debug/deps/bypassd_fio-96ad5f4a269df356.d: crates/fio/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_fio-96ad5f4a269df356.rmeta: crates/fio/src/lib.rs Cargo.toml

crates/fio/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
