/root/repo/target/debug/deps/bypassd_ext4-0513b054c7223f85.d: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_ext4-0513b054c7223f85.rmeta: crates/ext4/src/lib.rs crates/ext4/src/alloc.rs crates/ext4/src/dir.rs crates/ext4/src/extent.rs crates/ext4/src/fmap.rs crates/ext4/src/fs.rs crates/ext4/src/journal.rs crates/ext4/src/layout.rs Cargo.toml

crates/ext4/src/lib.rs:
crates/ext4/src/alloc.rs:
crates/ext4/src/dir.rs:
crates/ext4/src/extent.rs:
crates/ext4/src/fmap.rs:
crates/ext4/src/fs.rs:
crates/ext4/src/journal.rs:
crates/ext4/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
