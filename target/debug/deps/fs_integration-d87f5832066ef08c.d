/root/repo/target/debug/deps/fs_integration-d87f5832066ef08c.d: crates/ext4/tests/fs_integration.rs

/root/repo/target/debug/deps/fs_integration-d87f5832066ef08c: crates/ext4/tests/fs_integration.rs

crates/ext4/tests/fs_integration.rs:
