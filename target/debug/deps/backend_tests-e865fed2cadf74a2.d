/root/repo/target/debug/deps/backend_tests-e865fed2cadf74a2.d: crates/backends/tests/backend_tests.rs Cargo.toml

/root/repo/target/debug/deps/libbackend_tests-e865fed2cadf74a2.rmeta: crates/backends/tests/backend_tests.rs Cargo.toml

crates/backends/tests/backend_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
