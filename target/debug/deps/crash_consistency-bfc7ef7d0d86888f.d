/root/repo/target/debug/deps/crash_consistency-bfc7ef7d0d86888f.d: crates/bench/../../tests/crash_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_consistency-bfc7ef7d0d86888f.rmeta: crates/bench/../../tests/crash_consistency.rs Cargo.toml

crates/bench/../../tests/crash_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
