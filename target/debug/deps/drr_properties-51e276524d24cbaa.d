/root/repo/target/debug/deps/drr_properties-51e276524d24cbaa.d: crates/qos/tests/drr_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdrr_properties-51e276524d24cbaa.rmeta: crates/qos/tests/drr_properties.rs Cargo.toml

crates/qos/tests/drr_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
