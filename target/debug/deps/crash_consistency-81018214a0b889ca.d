/root/repo/target/debug/deps/crash_consistency-81018214a0b889ca.d: crates/bench/../../tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-81018214a0b889ca: crates/bench/../../tests/crash_consistency.rs

crates/bench/../../tests/crash_consistency.rs:
