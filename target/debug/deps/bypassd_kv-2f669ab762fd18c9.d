/root/repo/target/debug/deps/bypassd_kv-2f669ab762fd18c9.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_kv-2f669ab762fd18c9.rmeta: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs Cargo.toml

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
