/root/repo/target/debug/deps/fairness-da8630d7a802849f.d: crates/bench/benches/fairness.rs Cargo.toml

/root/repo/target/debug/deps/libfairness-da8630d7a802849f.rmeta: crates/bench/benches/fairness.rs Cargo.toml

crates/bench/benches/fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
