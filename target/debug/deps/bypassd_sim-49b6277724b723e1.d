/root/repo/target/debug/deps/bypassd_sim-49b6277724b723e1.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/bypassd_sim-49b6277724b723e1: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
