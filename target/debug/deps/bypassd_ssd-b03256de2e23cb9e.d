/root/repo/target/debug/deps/bypassd_ssd-b03256de2e23cb9e.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_ssd-b03256de2e23cb9e.rmeta: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs Cargo.toml

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
