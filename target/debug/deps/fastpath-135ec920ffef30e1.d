/root/repo/target/debug/deps/fastpath-135ec920ffef30e1.d: crates/bench/benches/fastpath.rs Cargo.toml

/root/repo/target/debug/deps/libfastpath-135ec920ffef30e1.rmeta: crates/bench/benches/fastpath.rs Cargo.toml

crates/bench/benches/fastpath.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
