/root/repo/target/debug/deps/bypassd-407d82b5182c7890.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd-407d82b5182c7890.rmeta: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
