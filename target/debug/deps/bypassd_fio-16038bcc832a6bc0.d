/root/repo/target/debug/deps/bypassd_fio-16038bcc832a6bc0.d: crates/fio/src/lib.rs

/root/repo/target/debug/deps/bypassd_fio-16038bcc832a6bc0: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
