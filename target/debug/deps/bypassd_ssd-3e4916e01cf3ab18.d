/root/repo/target/debug/deps/bypassd_ssd-3e4916e01cf3ab18.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/debug/deps/libbypassd_ssd-3e4916e01cf3ab18.rlib: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/debug/deps/libbypassd_ssd-3e4916e01cf3ab18.rmeta: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
