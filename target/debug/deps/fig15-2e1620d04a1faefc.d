/root/repo/target/debug/deps/fig15-2e1620d04a1faefc.d: crates/bench/benches/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-2e1620d04a1faefc.rmeta: crates/bench/benches/fig15.rs Cargo.toml

crates/bench/benches/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
