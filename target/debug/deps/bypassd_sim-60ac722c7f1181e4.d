/root/repo/target/debug/deps/bypassd_sim-60ac722c7f1181e4.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_sim-60ac722c7f1181e4.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
