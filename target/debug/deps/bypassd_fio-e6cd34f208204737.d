/root/repo/target/debug/deps/bypassd_fio-e6cd34f208204737.d: crates/fio/src/lib.rs

/root/repo/target/debug/deps/libbypassd_fio-e6cd34f208204737.rlib: crates/fio/src/lib.rs

/root/repo/target/debug/deps/libbypassd_fio-e6cd34f208204737.rmeta: crates/fio/src/lib.rs

crates/fio/src/lib.rs:
