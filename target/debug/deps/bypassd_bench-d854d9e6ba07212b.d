/root/repo/target/debug/deps/bypassd_bench-d854d9e6ba07212b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_bench-d854d9e6ba07212b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
