/root/repo/target/debug/deps/bypassd-0c60c45d2cba3d08.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/debug/deps/bypassd-0c60c45d2cba3d08: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
