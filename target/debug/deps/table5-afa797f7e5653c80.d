/root/repo/target/debug/deps/table5-afa797f7e5653c80.d: crates/bench/benches/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-afa797f7e5653c80.rmeta: crates/bench/benches/table5.rs Cargo.toml

crates/bench/benches/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
