/root/repo/target/debug/deps/bypassd_ssd-f9a9f36b4e7507c1.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/debug/deps/bypassd_ssd-f9a9f36b4e7507c1: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
