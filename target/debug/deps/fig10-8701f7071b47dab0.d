/root/repo/target/debug/deps/fig10-8701f7071b47dab0.d: crates/bench/benches/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-8701f7071b47dab0.rmeta: crates/bench/benches/fig10.rs Cargo.toml

crates/bench/benches/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
