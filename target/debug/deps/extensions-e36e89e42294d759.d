/root/repo/target/debug/deps/extensions-e36e89e42294d759.d: crates/bench/../../tests/extensions.rs

/root/repo/target/debug/deps/extensions-e36e89e42294d759: crates/bench/../../tests/extensions.rs

crates/bench/../../tests/extensions.rs:
