/root/repo/target/debug/deps/proptest_invariants-c18369de35f40e00.d: crates/bench/../../tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-c18369de35f40e00.rmeta: crates/bench/../../tests/proptest_invariants.rs Cargo.toml

crates/bench/../../tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
