/root/repo/target/debug/deps/bypassd-9ceb9c87a5eb5a84.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/debug/deps/libbypassd-9ceb9c87a5eb5a84.rlib: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/debug/deps/libbypassd-9ceb9c87a5eb5a84.rmeta: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
