/root/repo/target/debug/deps/bypassd_sim-16bb6b7a5772f7a3.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_sim-16bb6b7a5772f7a3.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
