/root/repo/target/debug/deps/bypassd_os-d6b9326dd49a12ff.d: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

/root/repo/target/debug/deps/bypassd_os-d6b9326dd49a12ff: crates/os/src/lib.rs crates/os/src/aio.rs crates/os/src/cost.rs crates/os/src/kernel.rs crates/os/src/pagecache.rs crates/os/src/process.rs crates/os/src/uring.rs crates/os/src/xrp.rs

crates/os/src/lib.rs:
crates/os/src/aio.rs:
crates/os/src/cost.rs:
crates/os/src/kernel.rs:
crates/os/src/pagecache.rs:
crates/os/src/process.rs:
crates/os/src/uring.rs:
crates/os/src/xrp.rs:
