/root/repo/target/debug/deps/bypassd_hw-905df6f1f3d4af73.d: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

/root/repo/target/debug/deps/bypassd_hw-905df6f1f3d4af73: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

crates/hw/src/lib.rs:
crates/hw/src/iommu.rs:
crates/hw/src/lru.rs:
crates/hw/src/mem.rs:
crates/hw/src/page_table.rs:
crates/hw/src/pte.rs:
crates/hw/src/types.rs:
