/root/repo/target/debug/deps/fs_integration-118ef0d2d017f43c.d: crates/ext4/tests/fs_integration.rs Cargo.toml

/root/repo/target/debug/deps/libfs_integration-118ef0d2d017f43c.rmeta: crates/ext4/tests/fs_integration.rs Cargo.toml

crates/ext4/tests/fs_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
