/root/repo/target/debug/deps/proptest_invariants-a2149d81ca1fffc7.d: crates/bench/../../tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-a2149d81ca1fffc7: crates/bench/../../tests/proptest_invariants.rs

crates/bench/../../tests/proptest_invariants.rs:
