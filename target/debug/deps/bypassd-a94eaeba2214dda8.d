/root/repo/target/debug/deps/bypassd-a94eaeba2214dda8.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/debug/deps/bypassd-a94eaeba2214dda8: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
