/root/repo/target/debug/deps/bypassd_hw-2021778c9b3b3a9f.d: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_hw-2021778c9b3b3a9f.rmeta: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/iommu.rs:
crates/hw/src/lru.rs:
crates/hw/src/mem.rs:
crates/hw/src/page_table.rs:
crates/hw/src/pte.rs:
crates/hw/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
