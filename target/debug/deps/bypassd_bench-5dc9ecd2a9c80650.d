/root/repo/target/debug/deps/bypassd_bench-5dc9ecd2a9c80650.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bypassd_bench-5dc9ecd2a9c80650: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
