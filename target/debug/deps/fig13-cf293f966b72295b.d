/root/repo/target/debug/deps/fig13-cf293f966b72295b.d: crates/bench/benches/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-cf293f966b72295b.rmeta: crates/bench/benches/fig13.rs Cargo.toml

crates/bench/benches/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
