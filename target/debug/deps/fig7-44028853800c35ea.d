/root/repo/target/debug/deps/fig7-44028853800c35ea.d: crates/bench/benches/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-44028853800c35ea.rmeta: crates/bench/benches/fig7.rs Cargo.toml

crates/bench/benches/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
