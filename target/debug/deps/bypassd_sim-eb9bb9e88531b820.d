/root/repo/target/debug/deps/bypassd_sim-eb9bb9e88531b820.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libbypassd_sim-eb9bb9e88531b820.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libbypassd_sim-eb9bb9e88531b820.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
