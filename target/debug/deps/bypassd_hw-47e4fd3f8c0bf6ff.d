/root/repo/target/debug/deps/bypassd_hw-47e4fd3f8c0bf6ff.d: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

/root/repo/target/debug/deps/libbypassd_hw-47e4fd3f8c0bf6ff.rlib: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

/root/repo/target/debug/deps/libbypassd_hw-47e4fd3f8c0bf6ff.rmeta: crates/hw/src/lib.rs crates/hw/src/iommu.rs crates/hw/src/lru.rs crates/hw/src/mem.rs crates/hw/src/page_table.rs crates/hw/src/pte.rs crates/hw/src/types.rs

crates/hw/src/lib.rs:
crates/hw/src/iommu.rs:
crates/hw/src/lru.rs:
crates/hw/src/mem.rs:
crates/hw/src/page_table.rs:
crates/hw/src/pte.rs:
crates/hw/src/types.rs:
