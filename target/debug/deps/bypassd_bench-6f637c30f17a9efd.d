/root/repo/target/debug/deps/bypassd_bench-6f637c30f17a9efd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bypassd_bench-6f637c30f17a9efd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
