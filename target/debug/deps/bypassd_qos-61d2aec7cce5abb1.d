/root/repo/target/debug/deps/bypassd_qos-61d2aec7cce5abb1.d: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_qos-61d2aec7cce5abb1.rmeta: crates/qos/src/lib.rs crates/qos/src/arbiter.rs crates/qos/src/bucket.rs crates/qos/src/config.rs crates/qos/src/drr.rs crates/qos/src/stats.rs Cargo.toml

crates/qos/src/lib.rs:
crates/qos/src/arbiter.rs:
crates/qos/src/bucket.rs:
crates/qos/src/config.rs:
crates/qos/src/drr.rs:
crates/qos/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
