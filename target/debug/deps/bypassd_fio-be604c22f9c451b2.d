/root/repo/target/debug/deps/bypassd_fio-be604c22f9c451b2.d: crates/fio/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_fio-be604c22f9c451b2.rmeta: crates/fio/src/lib.rs Cargo.toml

crates/fio/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
