/root/repo/target/debug/deps/userlib_tests-2facd599bc602e2e.d: crates/core/tests/userlib_tests.rs Cargo.toml

/root/repo/target/debug/deps/libuserlib_tests-2facd599bc602e2e.rmeta: crates/core/tests/userlib_tests.rs Cargo.toml

crates/core/tests/userlib_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
