/root/repo/target/debug/deps/fig6-025fb54a852c501d.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-025fb54a852c501d.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
