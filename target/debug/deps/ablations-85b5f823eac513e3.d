/root/repo/target/debug/deps/ablations-85b5f823eac513e3.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-85b5f823eac513e3.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
