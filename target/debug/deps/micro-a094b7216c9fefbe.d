/root/repo/target/debug/deps/micro-a094b7216c9fefbe.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-a094b7216c9fefbe.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
