/root/repo/target/debug/deps/kernel_tests-323de6ec5a63087b.d: crates/os/tests/kernel_tests.rs

/root/repo/target/debug/deps/kernel_tests-323de6ec5a63087b: crates/os/tests/kernel_tests.rs

crates/os/tests/kernel_tests.rs:
