/root/repo/target/debug/deps/drr_properties-78a28917b4c66c5a.d: crates/qos/tests/drr_properties.rs

/root/repo/target/debug/deps/drr_properties-78a28917b4c66c5a: crates/qos/tests/drr_properties.rs

crates/qos/tests/drr_properties.rs:
