/root/repo/target/debug/deps/kernel_tests-e82775cd621201a9.d: crates/os/tests/kernel_tests.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_tests-e82775cd621201a9.rmeta: crates/os/tests/kernel_tests.rs Cargo.toml

crates/os/tests/kernel_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
