/root/repo/target/debug/deps/bypassd-18284b6d21e3b48d.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/debug/deps/libbypassd-18284b6d21e3b48d.rlib: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

/root/repo/target/debug/deps/libbypassd-18284b6d21e3b48d.rmeta: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
