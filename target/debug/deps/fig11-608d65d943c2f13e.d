/root/repo/target/debug/deps/fig11-608d65d943c2f13e.d: crates/bench/benches/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-608d65d943c2f13e.rmeta: crates/bench/benches/fig11.rs Cargo.toml

crates/bench/benches/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
