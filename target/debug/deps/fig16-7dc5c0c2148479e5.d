/root/repo/target/debug/deps/fig16-7dc5c0c2148479e5.d: crates/bench/benches/fig16.rs Cargo.toml

/root/repo/target/debug/deps/libfig16-7dc5c0c2148479e5.rmeta: crates/bench/benches/fig16.rs Cargo.toml

crates/bench/benches/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
