/root/repo/target/debug/deps/engine_tests-dcb52af078659377.d: crates/kv/tests/engine_tests.rs

/root/repo/target/debug/deps/engine_tests-dcb52af078659377: crates/kv/tests/engine_tests.rs

crates/kv/tests/engine_tests.rs:
