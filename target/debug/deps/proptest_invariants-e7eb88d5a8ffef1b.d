/root/repo/target/debug/deps/proptest_invariants-e7eb88d5a8ffef1b.d: crates/bench/../../tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-e7eb88d5a8ffef1b: crates/bench/../../tests/proptest_invariants.rs

crates/bench/../../tests/proptest_invariants.rs:
