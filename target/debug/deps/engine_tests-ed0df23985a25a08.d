/root/repo/target/debug/deps/engine_tests-ed0df23985a25a08.d: crates/kv/tests/engine_tests.rs

/root/repo/target/debug/deps/engine_tests-ed0df23985a25a08: crates/kv/tests/engine_tests.rs

crates/kv/tests/engine_tests.rs:
