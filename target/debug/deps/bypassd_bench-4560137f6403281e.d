/root/repo/target/debug/deps/bypassd_bench-4560137f6403281e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbypassd_bench-4560137f6403281e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbypassd_bench-4560137f6403281e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
