/root/repo/target/debug/deps/bypassd_kv-82c6f7ce4f2e5c66.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/debug/deps/bypassd_kv-82c6f7ce4f2e5c66: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
