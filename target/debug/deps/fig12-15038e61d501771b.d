/root/repo/target/debug/deps/fig12-15038e61d501771b.d: crates/bench/benches/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-15038e61d501771b.rmeta: crates/bench/benches/fig12.rs Cargo.toml

crates/bench/benches/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
