/root/repo/target/debug/deps/table1-7dada705224cfaa9.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-7dada705224cfaa9.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
