/root/repo/target/debug/deps/bypassd_kv-4d55d3da04c363d8.d: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/debug/deps/libbypassd_kv-4d55d3da04c363d8.rlib: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

/root/repo/target/debug/deps/libbypassd_kv-4d55d3da04c363d8.rmeta: crates/kv/src/lib.rs crates/kv/src/bpfkv.rs crates/kv/src/btree.rs crates/kv/src/kvell.rs crates/kv/src/util.rs crates/kv/src/ycsb.rs

crates/kv/src/lib.rs:
crates/kv/src/bpfkv.rs:
crates/kv/src/btree.rs:
crates/kv/src/kvell.rs:
crates/kv/src/util.rs:
crates/kv/src/ycsb.rs:
