/root/repo/target/debug/deps/bypassd-195cdde00b4dc2e1.d: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd-195cdde00b4dc2e1.rmeta: crates/core/src/lib.rs crates/core/src/system.rs crates/core/src/userlib.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/system.rs:
crates/core/src/userlib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
