/root/repo/target/debug/deps/fig5-6fc4dc85596dab79.d: crates/bench/benches/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-6fc4dc85596dab79.rmeta: crates/bench/benches/fig5.rs Cargo.toml

crates/bench/benches/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
