/root/repo/target/debug/deps/bypassd_ssd-a5c3ed1626a76e2f.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbypassd_ssd-a5c3ed1626a76e2f.rmeta: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs Cargo.toml

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
