/root/repo/target/debug/deps/bypassd_ssd-16f11bc592631dcb.d: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

/root/repo/target/debug/deps/bypassd_ssd-16f11bc592631dcb: crates/ssd/src/lib.rs crates/ssd/src/atc.rs crates/ssd/src/device.rs crates/ssd/src/dma.rs crates/ssd/src/queue.rs crates/ssd/src/store.rs crates/ssd/src/timing.rs

crates/ssd/src/lib.rs:
crates/ssd/src/atc.rs:
crates/ssd/src/device.rs:
crates/ssd/src/dma.rs:
crates/ssd/src/queue.rs:
crates/ssd/src/store.rs:
crates/ssd/src/timing.rs:
