/root/repo/target/debug/deps/security_properties-80f965271aa1d8cc.d: crates/bench/../../tests/security_properties.rs

/root/repo/target/debug/deps/security_properties-80f965271aa1d8cc: crates/bench/../../tests/security_properties.rs

crates/bench/../../tests/security_properties.rs:
