/root/repo/target/debug/examples/shared_ssd-4f9447e8cbc4a611.d: crates/bench/../../examples/shared_ssd.rs

/root/repo/target/debug/examples/shared_ssd-4f9447e8cbc4a611: crates/bench/../../examples/shared_ssd.rs

crates/bench/../../examples/shared_ssd.rs:
