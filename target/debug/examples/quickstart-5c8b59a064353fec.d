/root/repo/target/debug/examples/quickstart-5c8b59a064353fec.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5c8b59a064353fec.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
