/root/repo/target/debug/examples/shared_ssd-7366cb5a3a32d809.d: crates/bench/../../examples/shared_ssd.rs

/root/repo/target/debug/examples/shared_ssd-7366cb5a3a32d809: crates/bench/../../examples/shared_ssd.rs

crates/bench/../../examples/shared_ssd.rs:
