/root/repo/target/debug/examples/quickstart-c902584d86b4a900.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c902584d86b4a900: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
