/root/repo/target/debug/examples/kv_store_comparison-e6bd23caa9395f3b.d: crates/bench/../../examples/kv_store_comparison.rs

/root/repo/target/debug/examples/kv_store_comparison-e6bd23caa9395f3b: crates/bench/../../examples/kv_store_comparison.rs

crates/bench/../../examples/kv_store_comparison.rs:
