/root/repo/target/debug/examples/shared_ssd-066b685ced727911.d: crates/bench/../../examples/shared_ssd.rs Cargo.toml

/root/repo/target/debug/examples/libshared_ssd-066b685ced727911.rmeta: crates/bench/../../examples/shared_ssd.rs Cargo.toml

crates/bench/../../examples/shared_ssd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
