/root/repo/target/debug/examples/kv_store_comparison-2af186addf8ab579.d: crates/bench/../../examples/kv_store_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libkv_store_comparison-2af186addf8ab579.rmeta: crates/bench/../../examples/kv_store_comparison.rs Cargo.toml

crates/bench/../../examples/kv_store_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
