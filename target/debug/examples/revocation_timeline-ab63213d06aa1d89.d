/root/repo/target/debug/examples/revocation_timeline-ab63213d06aa1d89.d: crates/bench/../../examples/revocation_timeline.rs

/root/repo/target/debug/examples/revocation_timeline-ab63213d06aa1d89: crates/bench/../../examples/revocation_timeline.rs

crates/bench/../../examples/revocation_timeline.rs:
