/root/repo/target/debug/examples/revocation_timeline-23ccfd7aa4f66658.d: crates/bench/../../examples/revocation_timeline.rs

/root/repo/target/debug/examples/revocation_timeline-23ccfd7aa4f66658: crates/bench/../../examples/revocation_timeline.rs

crates/bench/../../examples/revocation_timeline.rs:
