/root/repo/target/debug/examples/quickstart-a7db1e8457e880f6.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a7db1e8457e880f6: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
