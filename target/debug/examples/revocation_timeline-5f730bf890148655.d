/root/repo/target/debug/examples/revocation_timeline-5f730bf890148655.d: crates/bench/../../examples/revocation_timeline.rs Cargo.toml

/root/repo/target/debug/examples/librevocation_timeline-5f730bf890148655.rmeta: crates/bench/../../examples/revocation_timeline.rs Cargo.toml

crates/bench/../../examples/revocation_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
