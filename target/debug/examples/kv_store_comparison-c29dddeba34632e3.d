/root/repo/target/debug/examples/kv_store_comparison-c29dddeba34632e3.d: crates/bench/../../examples/kv_store_comparison.rs

/root/repo/target/debug/examples/kv_store_comparison-c29dddeba34632e3: crates/bench/../../examples/kv_store_comparison.rs

crates/bench/../../examples/kv_store_comparison.rs:
