//! Revocation in action (§3.6, Fig. 12): a reader runs on the BypassD
//! interface; mid-run another process opens the same file through the
//! kernel, the kernel detaches the file table entries, the reader's next
//! direct I/O faults in the IOMMU, UserLib re-`fmap()`s, receives VBA 0,
//! and transparently falls back to the kernel interface. No error ever
//! reaches the application.
//!
//! Run with: `cargo run --release --example revocation_timeline`

use bypassd::{System, UserProcess};
use bypassd_os::OpenFlags;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let system = System::builder().capacity(4 << 30).build();
    system.fs().populate("/timeline.dat", 64 << 20, 9).unwrap();

    type TimelineEntry = (Nanos, &'static str, Nanos);
    let timeline: Arc<Mutex<Vec<TimelineEntry>>> = Arc::new(Mutex::new(Vec::new()));

    let sim = Simulation::new();
    let sys = system.clone();
    let tl = Arc::clone(&timeline);
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&sys, 1000, 1000);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/timeline.dat", false).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut rng = bypassd_sim::rng::Rng::new(1);
        for _ in 0..2_000 {
            let off = rng.gen_range(16_000) * 4096;
            let t0 = ctx.now();
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096, "reads never fail across the revocation");
            let phase = if t.is_fallback(fd) {
                "kernel (fallback)"
            } else {
                "bypassd (direct)"
            };
            tl.lock().push((t0, phase, ctx.now() - t0));
        }
        let (direct, fallback) = proc.op_counts();
        println!("reader finished: {direct} direct ops, {fallback} kernel ops, 0 errors");
    });

    // At 3 ms, a second process opens the file via the kernel interface.
    let sys = system.clone();
    sim.spawn_at(Nanos::from_millis(3), "conflicting", move |ctx| {
        let pid = sys.kernel().spawn_process(1001, 1001);
        let flags = OpenFlags {
            read: true,
            write: false,
            direct: false,
            create: false,
            truncate: false,
            bypassd_intent: false,
        };
        sys.kernel()
            .sys_open(ctx, pid, "/timeline.dat", flags, 0)
            .unwrap();
        println!("[3ms] kernel-interface open → direct mappings revoked");
    });

    sim.run();

    // Print a compact timeline around the transition.
    let tl = timeline.lock();
    let flip = tl
        .iter()
        .position(|(_, phase, _)| *phase == "kernel (fallback)")
        .expect("revocation never happened");
    println!("\nops around the revocation (op#, time, phase, latency):");
    for i in flip.saturating_sub(3)..(flip + 4).min(tl.len()) {
        let (at, phase, lat) = tl[i];
        let marker = if i == flip {
            "  <-- first fallback op"
        } else {
            ""
        };
        println!("  #{i:<5} t={at:<12} {phase:<18} {lat}{marker}");
    }
    let before: u64 = tl[..flip].iter().map(|(_, _, l)| l.as_nanos()).sum::<u64>() / flip as u64;
    let tail = &tl[flip..];
    let after: u64 = tail.iter().map(|(_, _, l)| l.as_nanos()).sum::<u64>() / tail.len() as u64;
    println!(
        "\nmean latency before: {}ns, after: {}ns (kernel path)",
        before, after
    );
    assert!(after > before);
}
