//! The paper's application story in miniature: run the three storage
//! engines (§6.4–6.5) over the I/O paths they were evaluated with and
//! print per-op latencies.
//!
//! Run with: `cargo run --release --example kv_store_comparison`

use std::sync::Arc;

use bypassd::System;
use bypassd_backends::{make_factory, BackendFactory, BackendKind};
use bypassd_kv::{
    BpfKv, BpfKvConfig, BtreeConfig, BtreeStore, Kvell, KvellConfig, YcsbGen, YcsbWorkload,
};
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use parking_lot::Mutex;

fn timed<T: Send + 'static>(f: impl FnOnce(&mut bypassd_sim::ActorCtx) -> T + Send + 'static) -> T {
    let sim = Simulation::new();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    sim.spawn("engine", move |ctx| {
        *o2.lock() = Some(f(ctx));
    });
    sim.run();
    let mut g = out.lock();
    g.take().unwrap()
}

fn main() {
    let system = System::builder().capacity(4 << 30).build();

    // --- WiredTiger-like B-tree (Fig. 13) ---
    println!("== B-tree store (WiredTiger-like), YCSB C, 200 ops ==");
    let store = Arc::new(
        BtreeStore::build(&system, BtreeConfig::new("/wt.db", 100_000, 256 << 10)).unwrap(),
    );
    for kind in [BackendKind::Sync, BackendKind::Xrp, BackendKind::Bypassd] {
        system.reset_virtual_time();
        store.clear_cache();
        let st = Arc::clone(&store);
        let f = make_factory(kind, &system, 0, 0);
        let per_op: Nanos = timed(move |ctx| {
            let mut b = f.make_thread();
            let h = b.open(ctx, st.file(), true).unwrap();
            let mut gen = YcsbGen::new(YcsbWorkload::C, 100_000, 100_000, 1);
            let t0 = ctx.now();
            for _ in 0..200 {
                let op = gen.next_op();
                st.execute(ctx, &mut *b, h, op).unwrap();
            }
            let dt = (ctx.now() - t0) / 200;
            b.close(ctx, h).unwrap();
            dt
        });
        println!("  {kind:>8}: {per_op}/op");
    }

    // --- BPF-KV (Fig. 15): 7 dependent I/Os per lookup ---
    println!("== BPF-KV (6-level index + log), 100 lookups ==");
    let store = Arc::new(BpfKv::build(&system, BpfKvConfig::new("/bpf.db", 50_000)).unwrap());
    for kind in [
        BackendKind::Sync,
        BackendKind::Xrp,
        BackendKind::Spdk,
        BackendKind::Bypassd,
    ] {
        system.reset_virtual_time();
        let st = Arc::clone(&store);
        let f = make_factory(kind, &system, 0, 0);
        let per_op: Nanos = timed(move |ctx| {
            let mut b = f.make_thread();
            let h = b.open(ctx, st.file(), false).unwrap();
            let mut gen = YcsbGen::new(YcsbWorkload::C, 50_000, 50_000, 2);
            let t0 = ctx.now();
            for _ in 0..100 {
                if let bypassd_kv::YcsbOp::Read(k) = gen.next_op() {
                    st.get(ctx, &mut *b, h, k).unwrap();
                }
            }
            let dt = (ctx.now() - t0) / 100;
            b.close(ctx, h).unwrap();
            dt
        });
        println!("  {kind:>8}: {per_op}/lookup (7 I/Os each)");
    }

    // --- KVell (Fig. 16): batching vs latency ---
    println!("== KVell (in-memory index, 1KB slots), YCSB C, 200 ops ==");
    let store = Arc::new(Kvell::build(&system, KvellConfig::new("/kvell.db", 50_000)).unwrap());
    for (label, qd) in [("KVell_1", 1usize), ("KVell_64", 64)] {
        system.reset_virtual_time();
        let st = Arc::clone(&store);
        let f = Arc::new(bypassd_backends::LibaioFactory::new(&system, 0, 0, qd));
        let (kops, lat) = timed(move |ctx| {
            let mut b = f.make_thread();
            let h = b.open(ctx, st.file(), true).unwrap();
            let mut gen = YcsbGen::new(YcsbWorkload::C, 50_000, 50_000, 3);
            let r = st.run_ycsb(ctx, &mut *b, h, &mut gen, 200, qd).unwrap();
            (r.throughput.kops_per_sec(r.elapsed), r.latency.mean())
        });
        println!("  {label:>8}: {kops:.0} kops/s at {lat}/request");
    }
    {
        system.reset_virtual_time();
        let st = Arc::clone(&store);
        let f = make_factory(BackendKind::Bypassd, &system, 0, 0);
        let (kops, lat) = timed(move |ctx| {
            let mut b = f.make_thread();
            let h = b.open(ctx, st.file(), true).unwrap();
            let mut gen = YcsbGen::new(YcsbWorkload::C, 50_000, 50_000, 3);
            let r = st.run_ycsb(ctx, &mut *b, h, &mut gen, 200, 1).unwrap();
            (r.throughput.kops_per_sec(r.elapsed), r.latency.mean())
        });
        println!(
            "  {:>8}: {kops:.0} kops/s at {lat}/request (sync interface)",
            "bypassd"
        );
    }
}
