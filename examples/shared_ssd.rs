//! Sharing the SSD: the scenario SPDK cannot do and BypassD was built
//! for (§1, §6.3).
//!
//! Four processes — two different users — do direct userspace I/O to the
//! same device at the same time. Two of them share one file (reader sees
//! the writer's bytes through the device); the others use private files.
//! Permissions hold the whole time: the unprivileged process cannot map
//! the root-owned secret.
//!
//! Run with: `cargo run --release --example shared_ssd`

use bypassd::{System, UserProcess};
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;

fn main() {
    let system = System::builder().capacity(4 << 30).build();
    let fs = system.fs();
    fs.populate("/shared.db", 64 << 20, 0).unwrap();
    fs.populate("/private-a", 32 << 20, 0xAA).unwrap();
    fs.populate("/private-b", 32 << 20, 0xBB).unwrap();
    // A root-owned secret nobody else may read.
    fs.create("/secret", 0o600, 0, 0).unwrap();
    let secret = fs.lookup("/secret").unwrap();
    fs.allocate(secret, 0, 4096).unwrap();

    let sim = Simulation::new();

    // Writer process: streams records into the shared file.
    let sys = system.clone();
    sim.spawn("writer", move |ctx| {
        let proc = UserProcess::start(&sys, 1000, 1000);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/shared.db", true).unwrap();
        for i in 0..64u64 {
            let record = vec![i as u8 + 1; 4096];
            t.pwrite(ctx, fd, &record, i * 4096).unwrap();
        }
        t.fsync(ctx, fd).unwrap();
        t.close(ctx, fd).unwrap();
        println!("[writer ] wrote 64 records directly from userspace");
    });

    // Reader process (different user!): follows behind the writer.
    let sys = system.clone();
    sim.spawn_at(Nanos::from_millis(1), "reader", move |ctx| {
        let proc = UserProcess::start(&sys, 2000, 2000);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/shared.db", false).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut seen = 0;
        for i in 0..64u64 {
            t.pread(ctx, fd, &mut buf, i * 4096).unwrap();
            if buf[0] == i as u8 + 1 {
                seen += 1;
            }
        }
        println!("[reader ] observed {seen}/64 of the writer's records via the device");
        assert_eq!(seen, 64);

        // The same user may NOT touch the root-owned secret.
        let err = t.open(ctx, "/secret", false).unwrap_err();
        println!("[reader ] open(/secret) correctly denied: {err}");
        t.close(ctx, fd).unwrap();
    });

    // Two more processes hammering private files concurrently.
    for (name, path, uid) in [
        ("worker-a", "/private-a", 3000u32),
        ("worker-b", "/private-b", 4000),
    ] {
        let sys = system.clone();
        sim.spawn(name, move |ctx| {
            let proc = UserProcess::start(&sys, uid, uid);
            let mut t = proc.thread();
            let fd = t.open(ctx, path, true).unwrap();
            let mut buf = vec![0u8; 8192];
            let t0 = ctx.now();
            for i in 0..128u64 {
                t.pread(ctx, fd, &mut buf, (i % 4000) * 8192).unwrap();
            }
            let per_op = (ctx.now() - t0) / 128;
            println!("[{name}] 128 direct 8KB reads at {per_op}/op while sharing the device");
            t.close(ctx, fd).unwrap();
        });
    }

    sim.run();
    let stats = system.device().stats();
    println!(
        "device totals: {} reads, {} writes, 0 protection violations — one SSD, four processes",
        stats.reads, stats.writes
    );

    // With `BYPASSD_TRACE=1` the flight recorder was live the whole
    // time: dump the per-stage latency attribution, a chrome://tracing
    // artifact, and the unified metrics snapshot.
    if system.recorder().on() {
        let device = system.recorder().take_device();
        let ops = system.recorder().take_ops();
        println!("\n--- flight recorder (BYPASSD_TRACE=1) ---");
        print!("{}", bypassd::Breakdown::build(&device, &ops).render());
        let path = std::path::Path::new("target/trace/shared_ssd_trace.json");
        bypassd::write_chrome_trace(path, &device, &ops).expect("write chrome trace");
        println!(
            "chrome trace: {} ({} events) — load at chrome://tracing or ui.perfetto.dev",
            path.display(),
            device.len() + ops.len()
        );
        print!("{}", system.metrics().render());
    }

    noisy_neighbor_demo();
}

/// The QoS subsystem in action: a QD1 process vs a 16-thread flooder,
/// with and without fair-share pacing (`SystemBuilder::qos`).
fn noisy_neighbor_demo() {
    println!("\n--- noisy neighbor: 16-deep flooder vs QD1 reader ---");
    let mut latencies = Vec::new();
    for qos in [false, true] {
        let mut builder = System::builder().capacity(4 << 30);
        if qos {
            builder = builder.qos(bypassd::QosConfig::enabled());
        }
        let system = builder.build();
        let fs = system.fs();
        fs.populate("/quiet", 16 << 20, 0x11).unwrap();
        fs.populate("/noisy", 16 << 20, 0x22).unwrap();

        let sim = Simulation::new();
        // The well-behaved tenant: one thread, one request at a time.
        let sys = system.clone();
        let lat = std::sync::Arc::new(parking_lot::Mutex::new(Nanos::ZERO));
        let l2 = std::sync::Arc::clone(&lat);
        sim.spawn("quiet", move |ctx| {
            let proc = UserProcess::start(&sys, 1000, 1000);
            let mut t = proc.thread();
            let fd = t.open(ctx, "/quiet", false).unwrap();
            let mut buf = vec![0u8; 4096];
            let t0 = ctx.now();
            for i in 0..64u64 {
                t.pread(ctx, fd, &mut buf, (i % 4096) * 4096).unwrap();
            }
            *l2.lock() = (ctx.now() - t0) / 64;
            t.close(ctx, fd).unwrap();
        });
        // The noisy neighbor: one process, 16 threads flooding the SSD.
        let noisy = UserProcess::start(&system, 2000, 2000);
        for n in 0..16 {
            let noisy = std::sync::Arc::clone(&noisy);
            sim.spawn(&format!("noisy{n}"), move |ctx| {
                let mut t = noisy.thread();
                let fd = t.open(ctx, "/noisy", false).unwrap();
                let mut buf = vec![0u8; 4096];
                for i in 0..128u64 {
                    t.pread(ctx, fd, &mut buf, ((n + i * 16) % 4096) * 4096)
                        .unwrap();
                }
                t.close(ctx, fd).unwrap();
            });
        }
        sim.run();
        let per_op = *lat.lock();
        println!(
            "[qos {}] quiet tenant: {per_op}/op next to the flooder",
            if qos { " on" } else { "off" }
        );
        latencies.push(per_op);
    }
    println!(
        "fair-share pacing recovered {:.1}x of the quiet tenant's latency",
        latencies[0].as_nanos() as f64 / latencies[1].as_nanos().max(1) as f64
    );
}
