//! Runs the two acceptance crash campaigns (append + overwrite) and
//! prints their reports — the numbers quoted in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example crash_campaign
//! BYPASSD_CAMPAIGN_POINTS=40 cargo run --release --example crash_campaign
//! ```

use bypassd::{CrashLab, CrashWorkload};
use bypassd_faults::campaign::CampaignConfig;

fn budget(default: usize) -> usize {
    std::env::var("BYPASSD_CAMPAIGN_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut total = 0usize;
    for (name, workload, points) in [
        (
            "append",
            CrashWorkload::Append {
                steps: 10,
                blocks_per_step: 3,
            },
            budget(120),
        ),
        (
            "overwrite",
            CrashWorkload::Overwrite {
                steps: 8,
                region_blocks: 12,
            },
            budget(100),
        ),
    ] {
        let lab = CrashLab::new(workload);
        let report = lab.campaign(&CampaignConfig {
            max_points: points,
            ..CampaignConfig::default()
        });
        println!("[{name}] {}", report.summary());
        println!("[{name}] fingerprint={:#018x}", report.fingerprint);
        total += report.points_run;
        assert!(report.passed(), "{name} campaign failed");
    }
    println!("total crash points passed: {total}");
}
