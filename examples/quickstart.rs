//! Quickstart: the BypassD public API end to end.
//!
//! Builds the simulated machine (memory, IOMMU, Optane-class NVMe device,
//! ext4, kernel), starts a process, opens a file for direct access, and
//! shows the latency difference between the BypassD interface and the
//! plain kernel path.
//!
//! Run with: `cargo run --release --example quickstart`

use bypassd::{System, UserProcess};
use bypassd_os::OpenFlags;
use bypassd_sim::Simulation;

fn main() {
    // A 4 GB simulated namespace with paper-calibrated timing.
    let system = System::builder().capacity(4 << 30).build();

    // Setup (untimed): create a 64 MB file full of 0x42.
    system.fs().populate("/hello.dat", 64 << 20, 0x42).unwrap();

    let sim = Simulation::new();
    let sys = system.clone();
    sim.spawn("app", move |ctx| {
        // --- The BypassD interface ---
        let proc = UserProcess::start(&sys, 1000, 1000);
        let mut thread = proc.thread();
        let fd = thread.open(ctx, "/hello.dat", true).unwrap();

        let mut buf = vec![0u8; 4096];
        thread.pread(ctx, fd, &mut buf, 0).unwrap(); // warm caches
        let t0 = ctx.now();
        thread.pread(ctx, fd, &mut buf, 8192).unwrap();
        let direct = ctx.now() - t0;
        assert!(buf.iter().all(|&b| b == 0x42));

        // Writes to existing blocks also go straight to the device.
        thread.pwrite(ctx, fd, &vec![7u8; 4096], 4096).unwrap();
        thread.pread(ctx, fd, &mut buf, 4096).unwrap();
        assert!(buf.iter().all(|&b| b == 7));

        // --- The same read through the kernel, for comparison ---
        let pid = sys.kernel().spawn_process(1000, 1000);
        let kfd = sys
            .kernel()
            .sys_open(ctx, pid, "/hello.dat", OpenFlags::rdonly_direct(), 0)
            .unwrap();
        let t1 = ctx.now();
        sys.kernel()
            .sys_pread(ctx, pid, kfd, &mut buf, 8192)
            .unwrap();
        let through_kernel = ctx.now() - t1;

        println!("4KB read via BypassD interface : {direct}");
        println!("4KB read via kernel interface  : {through_kernel}");
        println!(
            "speedup: {:.0}% lower latency (paper: 42% for 4KB reads)",
            (1.0 - direct.as_nanos() as f64 / through_kernel.as_nanos() as f64) * 100.0
        );

        let (direct_ops, fallback_ops) = proc.op_counts();
        println!("direct I/Os: {direct_ops}, kernel fallbacks: {fallback_ops}");

        thread.fsync(ctx, fd).unwrap();
        thread.close(ctx, fd).unwrap();
    });
    sim.run();
    println!("done in {} of virtual time", sim.now());
}
