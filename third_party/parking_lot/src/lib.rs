//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API surface it actually uses — `Mutex`, `RwLock` and
//! `Condvar` with non-poisoning guards — implemented over `std::sync`.
//! Semantics match parking_lot where the workspace relies on them:
//! `lock()` never returns a poison error (a poisoned std lock is
//! recovered transparently), and guards implement `Deref`/`DerefMut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable operating on [`MutexGuard`]s.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// As [`Condvar::wait`] with a timeout; returns true on timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard already taken");
        let start = Instant::now();
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        };
        let _ = start;
        guard.0 = Some(inner);
        res
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_all();
            drop(done);
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }
}
