//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the minimal API the workspace's microbenches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], the builder knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`) and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! calibrated wall-clock loop printing mean ns/iter — enough to compare
//! hot paths, without criterion's statistics machinery.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` under the measurement loop and prints mean ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up & calibration: find an iteration count that fills one
        // sample's share of the measurement budget.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            f(&mut b);
            if b.elapsed < Duration::from_micros(100) {
                b.iters = (b.iters * 2).min(1 << 24);
            }
        }
        let per_sample = self.measurement_time / self.sample_size as u32;
        if b.elapsed > Duration::ZERO {
            let per_iter = b.elapsed.as_nanos().max(1) as u64 / b.iters.max(1);
            b.iters = (per_sample.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1 << 24);
        }
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }
        let mean = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("{name:<32} {mean:12.1} ns/iter ({total_iters} iters)");
        self
    }
}

/// Runs the timed closure; handed to `bench_function` callbacks.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }
}
