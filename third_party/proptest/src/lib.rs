//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the small slice of proptest the workspace's property tests
//! use: the `proptest!` macro (with both `pat in strategy` and
//! `name: Type` argument forms), integer-range and `any::<T>()`
//! strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Each property runs a fixed number of deterministic cases driven by a
//! seeded xorshift generator, so failures are reproducible. There is no
//! shrinking: a failing case reports its inputs via the assertion message.

/// Default number of cases each property is executed with.
pub const CASES: u32 = 64;

/// Cases per property: `PROPTEST_CASES` env override (matching real
/// proptest's knob), else [`CASES`]. Slow interpreters (Miri) set a small
/// value so property suites finish inside the CI budget.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(CASES)
}

/// Deterministic case-generation RNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG for case index `case` of property `name`.
    pub fn new(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Rejection-free multiply-shift reduction is fine for testing.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The stand-in samples directly instead of building
/// shrinkable value trees.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span + 1)) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for "any value of T" (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: vectors of `element` samples.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len.clone(), rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// What the `prelude` glob import provides.
pub mod prelude {
    /// `prop::collection::vec(..)` paths resolve through this alias.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy, TestRng};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Binds one property argument list entry. Two forms, as in proptest:
/// `pat in strategy` draws from an explicit strategy; `name: Type` is
/// shorthand for `name in any::<Type>()`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strategy:expr) => {
        let $pat = $crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Declares `#[test]` functions that run their body over [`cases()`]
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::cases() {
                let mut __rng = $crate::TestRng::new(stringify!($name), case);
                $crate::__proptest_bind!(__rng; $($args)*);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..2, n in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 2);
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        #[allow(clippy::overly_complex_bool_expr)]
        fn shorthand_and_vec(flag: bool, v in prop::collection::vec(0u64..10, 1..4)) {
            prop_assert!(flag || !flag);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 10), "out of range: {:?}", v);
        }

        #[test]
        fn tuples_sample_componentwise(ops in prop::collection::vec((0u64..64, 1usize..8), 1..10)) {
            for (a, b) in ops {
                prop_assert!(a < 64);
                prop_assert_eq!(b.clamp(1, 7), b);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new("x", 0);
        let mut b = TestRng::new("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::new("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
