//! Offline stand-in for the `loom` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the loom API surface the workspace's model tests use —
//! `loom::model`, `loom::thread::{spawn, yield_now}`, `loom::sync::Arc`,
//! `loom::sync::Mutex` and `loom::sync::atomic` — as a **seeded
//! schedule-perturbation stress harness** rather than an exhaustive
//! model checker:
//!
//! * [`model`] runs the test body many times (`LOOM_MAX_ITER`, default
//!   32), each iteration under a different deterministic schedule seed.
//! * Every wrapped primitive operation (lock, atomic access, spawn)
//!   consults a per-thread xorshift stream derived from that seed and
//!   sometimes yields or spins, steering the OS scheduler toward
//!   different interleavings on every iteration.
//!
//! This explores far fewer interleavings than real loom, but it is
//! dependency-free, deterministic in its *decision stream* (reruns
//! perturb at the same points), and has caught the same class of bug the
//! tests target: lost updates and index-desync races under concurrent
//! touch/invalidate. When the real `loom` is available, the tests compile
//! against it unchanged (they only use the shared API subset).
//!
//! Randomness here is an internal xorshift on a fixed seed — not
//! `thread_rng` — so R1 (virtual-time determinism) stays intact; the
//! yields/spins perturb only the *host* schedule of the test harness,
//! never simulated time.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Global schedule seed for the current model iteration.
static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(1);
/// Monotonic id handed to each spawned thread for stream separation.
static THREAD_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread perturbation stream state.
    static STREAM: Cell<u64> = const { Cell::new(0) };
}

fn perturb() {
    let state = STREAM.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // First op on this thread: derive the stream from the seed
            // and a fresh thread id.
            x = SCHEDULE_SEED.load(StdOrdering::Relaxed)
                ^ THREAD_IDS
                    .fetch_add(1, StdOrdering::Relaxed)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x
    });
    match state % 8 {
        0 | 1 => std::thread::yield_now(),
        2 => {
            for _ in 0..(state >> 8) % 256 {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// Iterations per [`model`] call (`LOOM_MAX_ITER` env override).
fn iterations() -> u64 {
    std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// Runs `f` repeatedly under varied deterministic schedule seeds. Panics
/// (test failure) propagate from any iteration, with the seed printed so
/// the failing schedule can be replayed.
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
    for iter in 0..iterations() {
        let seed = 0x5d58_8b65_6c07_8965u64.wrapping_mul(iter + 1) | 1;
        SCHEDULE_SEED.store(seed, StdOrdering::Relaxed);
        STREAM.with(|s| s.set(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = result {
            eprintln!("loom (stand-in): failure under schedule seed {seed:#x} (iteration {iter})");
            std::panic::resume_unwind(payload);
        }
    }
}

pub mod thread {
    //! `loom::thread`: spawn/yield with schedule perturbation.

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Joins the thread, propagating panics like `std::thread`.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns a thread participating in the perturbed schedule.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::perturb();
        JoinHandle(std::thread::spawn(move || {
            super::perturb();
            f()
        }))
    }

    /// An explicit interleaving point.
    pub fn yield_now() {
        super::perturb();
        std::thread::yield_now();
    }
}

pub mod hint {
    //! `loom::hint`: spin-loop hint that is also an interleaving point.
    pub fn spin_loop() {
        super::perturb();
        std::hint::spin_loop();
    }
}

pub mod sync {
    //! `loom::sync`: Arc, Mutex and atomics with interleaving points.

    pub use std::sync::Arc;
    use std::sync::{LockResult, MutexGuard};

    /// `std::sync::Mutex` with a perturbation point before each lock.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::perturb();
            self.0.lock()
        }

        pub fn try_lock(&self) -> std::sync::TryLockResult<MutexGuard<'_, T>> {
            super::perturb();
            self.0.try_lock()
        }
    }

    pub mod atomic {
        //! Atomics with a perturbation point before every access.
        pub use std::sync::atomic::Ordering;

        macro_rules! wrap_atomic {
            ($($name:ident($std:ty, $val:ty)),* $(,)?) => {$(
                /// Std atomic with schedule perturbation on each access.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    pub fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $val {
                        crate::perturb();
                        self.0.load(order)
                    }

                    pub fn store(&self, v: $val, order: Ordering) {
                        crate::perturb();
                        self.0.store(v, order);
                    }

                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        crate::perturb();
                        self.0.swap(v, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::perturb();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            )*};
        }

        wrap_atomic!(
            AtomicBool(std::sync::atomic::AtomicBool, bool),
            AtomicU32(std::sync::atomic::AtomicU32, u32),
            AtomicU64(std::sync::atomic::AtomicU64, u64),
            AtomicUsize(std::sync::atomic::AtomicUsize, usize),
        );

        macro_rules! wrap_fetch_add {
            ($($name:ident($val:ty)),* $(,)?) => {$(
                impl $name {
                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        crate::perturb();
                        self.0.fetch_add(v, order)
                    }
                }
            )*};
        }

        wrap_fetch_add!(AtomicU32(u32), AtomicU64(u64), AtomicUsize(usize));
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_joins_threads() {
        std::env::set_var("LOOM_MAX_ITER", "4");
        super::model(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        for _ in 0..10 {
                            c.fetch_add(1, Ordering::SeqCst);
                            super::thread::yield_now();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 30);
        });
    }

    #[test]
    fn mutex_mirrors_std_result_api() {
        let m = Mutex::new(5u32);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
    }

    #[test]
    #[should_panic(expected = "planted")]
    fn failures_propagate_out_of_model() {
        std::env::set_var("LOOM_MAX_ITER", "2");
        super::model(|| panic!("planted"));
    }
}
