//! The fleet determinism matrix: the same seed must produce the
//! bit-identical virtual-time fingerprint no matter how many worker
//! threads execute the lanes — 1, 2, or 8; picked in code or through
//! `BYPASSD_FLEET_WORKERS` — and the sharded run must reach the same
//! logical outcome as the monolithic single-timeline baseline. Two
//! scenario flavors exercise the cross-shard ports from both sides
//! (fairness: QoS pressure dominates; revocation: shootdowns dominate),
//! and the crash-campaign fingerprint rides along to pin down that the
//! fault plane stayed deterministic under the fleet-era engine changes.

use bypassd::fleet::{FleetBuilder, FleetConfig, FleetReport};
use bypassd::{CrashLab, CrashWorkload};
use bypassd_faults::campaign::CampaignConfig;
use bypassd_sim::Nanos;

const MATRIX: [usize; 3] = [1, 2, 8];

/// Runs `cfg` across the worker matrix, asserts every fingerprint is
/// identical and the outcome matches the monolithic baseline, and
/// returns the (single) fingerprint.
fn matrix_fingerprint(cfg: FleetConfig) -> u64 {
    let fleet = FleetBuilder::new(cfg);
    let mono = fleet.run_monolithic();
    let reports: Vec<FleetReport> = MATRIX.iter().map(|&w| fleet.run(w)).collect();
    for (r, &w) in reports.iter().zip(&MATRIX) {
        r.assert_same_outcome(&mono);
        assert_eq!(
            r.fingerprint(),
            reports[0].fingerprint(),
            "fingerprint diverged at {w} workers"
        );
        assert_eq!(
            r.lanes, reports[0].lanes,
            "per-lane reports diverged at {w} workers"
        );
    }
    assert!(reports[0].total_ops() > 0, "scenario did no work");
    reports[0].fingerprint()
}

/// Fairness flavor: QoS on with weighted tenants, pressure epochs on
/// the control lane, enough remote traffic that completion ports carry
/// real load.
#[test]
fn fairness_fleet_matrix_is_worker_count_invariant() {
    let fp = matrix_fingerprint(FleetConfig::smoke());
    // The smoke seed is fixed, so the fingerprint is a constant of the
    // tree; a change means the virtual-time schedule itself moved.
    assert_ne!(fp, 0);
}

/// Revocation flavor: a shootdown per tenant arrives mid-run, forcing
/// fallback I/O on every lane while reads and remote traffic continue.
#[test]
fn revocation_fleet_matrix_is_worker_count_invariant() {
    let cfg = FleetConfig {
        processes: 48,
        rounds: 4,
        revokes: 4,
        revoke_start: Nanos(100_000),
        revoke_gap: Nanos(60_000),
        remote_per_mille: 200,
        seed: 0xF1EE_7_4E0,
        ..FleetConfig::smoke()
    };
    let fleet = FleetBuilder::new(cfg.clone());
    let reference = fleet.run(1);
    assert_eq!(reference.revokes_issued, 4);
    let revoked: u64 = reference.lanes.iter().map(|l| l.revoked_pids).sum();
    assert!(revoked > 0, "revocations never landed on a live process");
    assert_eq!(matrix_fingerprint(cfg), reference.fingerprint());
}

/// `BYPASSD_FLEET_WORKERS` selects the worker count without perturbing
/// results: every value of the env var yields the same fingerprint as
/// the in-code matrix. Runs in one test (not per-value tests) because
/// the env var is process-global.
#[test]
fn env_worker_override_does_not_change_results() {
    let fleet = FleetBuilder::new(FleetConfig::smoke());
    let reference = fleet.run(1).fingerprint();
    for workers in ["1", "2", "8", "not-a-number"] {
        std::env::set_var("BYPASSD_FLEET_WORKERS", workers);
        let report = fleet.run_env(2);
        assert_eq!(
            report.fingerprint(),
            reference,
            "BYPASSD_FLEET_WORKERS={workers} changed the fingerprint"
        );
    }
    std::env::remove_var("BYPASSD_FLEET_WORKERS");
    assert_eq!(fleet.run_env(2).fingerprint(), reference);
}

/// Crash campaigns stayed deterministic under the fleet-era engine
/// changes (`Simulation` handle cloning, mid-run `spawn_at`): the same
/// campaign seed enumerates the same points and reports the same
/// fingerprint on every run.
#[test]
fn crash_campaign_fingerprint_is_stable_across_reruns() {
    let cfg = CampaignConfig {
        seed: 0xB17_FA17,
        max_points: 40,
        ..CampaignConfig::default()
    };
    let run = || {
        CrashLab::new(CrashWorkload::Append {
            steps: 6,
            blocks_per_step: 2,
        })
        .campaign(&cfg)
    };
    let (a, b) = (run(), run());
    assert!(a.passed(), "{}", a.summary());
    assert_eq!(a.fingerprint, b.fingerprint, "campaign fingerprint drifted");
    assert_eq!(a.points_enumerated, b.points_enumerated);
    assert_eq!(a.clean_points, b.clean_points);
    assert_eq!(a.torn_points, b.torn_points);
}
