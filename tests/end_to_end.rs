//! Full-stack scenarios: every layer exercised together — UserLib over
//! NVMe queues, IOMMU translation through real page tables, ext4
//! metadata, the kernel fallback path, and multi-process interleavings.

use std::sync::Arc;

use bypassd::{System, UserProcess};
use bypassd_backends::{make_factory, BackendKind};
use bypassd_os::OpenFlags;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use parking_lot::Mutex;

fn system() -> System {
    System::builder().capacity(4 << 30).build()
}

#[test]
fn mixed_interface_workload_stays_coherent() {
    // One process uses BypassD, another the kernel sync path, writing to
    // *different* files; a third validates both files afterwards.
    let sys = system();
    sys.fs().populate("/m1", 16 << 20, 0).unwrap();
    sys.fs().populate("/m2", 16 << 20, 0).unwrap();

    let sim = Simulation::new();
    let s1 = sys.clone();
    sim.spawn("bypassd-writer", move |ctx| {
        let proc = UserProcess::start(&s1, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/m1", true).unwrap();
        for i in 0..32u64 {
            t.pwrite(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                .unwrap();
        }
        t.close(ctx, fd).unwrap();
    });
    let s2 = sys.clone();
    sim.spawn("kernel-writer", move |ctx| {
        let pid = s2.kernel().spawn_process(0, 0);
        let fd = s2
            .kernel()
            .sys_open(ctx, pid, "/m2", OpenFlags::rdwr_direct(), 0)
            .unwrap();
        for i in 0..32u64 {
            s2.kernel()
                .sys_pwrite(ctx, pid, fd, &vec![(100 + i) as u8; 4096], i * 4096)
                .unwrap();
        }
        s2.kernel().sys_close(ctx, pid, fd).unwrap();
    });
    sim.run();

    let sim = Simulation::new();
    let s3 = sys.clone();
    sim.spawn("validator", move |ctx| {
        let proc = UserProcess::start(&s3, 0, 0);
        let mut t = proc.thread();
        let f1 = t.open(ctx, "/m1", false).unwrap();
        let f2 = t.open(ctx, "/m2", false).unwrap();
        let mut buf = vec![0u8; 4096];
        for i in 0..32u64 {
            t.pread(ctx, f1, &mut buf, i * 4096).unwrap();
            assert!(buf.iter().all(|&b| b == (i + 1) as u8), "m1 block {i}");
            t.pread(ctx, f2, &mut buf, i * 4096).unwrap();
            assert!(buf.iter().all(|&b| b == (100 + i) as u8), "m2 block {i}");
        }
    });
    sim.run();
}

#[test]
fn file_grows_while_other_process_reads_it() {
    // Appender extends the file via the kernel; the mapped reader sees
    // new blocks appear through the *shared* file-table fragments without
    // re-fmapping (§4.1).
    let sys = system();
    sys.fs().populate("/grow", 4096, 1).unwrap();

    let sim = Simulation::new();
    let s1 = sys.clone();
    sim.spawn("appender", move |ctx| {
        let proc = UserProcess::start(&s1, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/grow", true).unwrap();
        for i in 1..=16u64 {
            ctx.delay(Nanos::from_micros(50));
            t.pwrite(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                .unwrap();
        }
        t.close(ctx, fd).unwrap();
    });
    let s2 = sys.clone();
    sim.spawn_at(Nanos::from_micros(400), "tail-reader", move |ctx| {
        let proc = UserProcess::start(&s2, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/grow", false).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut seen_blocks = 0u64;
        for _ in 0..40 {
            ctx.delay(Nanos::from_micros(25));
            // Re-stat via the kernel to learn the current size.
            let size = s2.fs().size_of(s2.fs().lookup("/grow").unwrap()).unwrap();
            let blocks = size / 4096;
            while seen_blocks < blocks {
                let n = t.pread(ctx, fd, &mut buf, seen_blocks * 4096).unwrap();
                assert_eq!(n, 4096);
                assert!(
                    buf.iter().all(|&b| b == (seen_blocks + 1) as u8),
                    "stale data in appended block {seen_blocks}"
                );
                seen_blocks += 1;
            }
        }
        assert!(seen_blocks >= 8, "reader never observed growth");
        let (direct, _) = proc.op_counts();
        assert!(
            direct >= seen_blocks,
            "appended blocks must be readable directly"
        );
    });
    sim.run();
}

#[test]
fn every_backend_reads_the_same_bytes() {
    let sys = system();
    sys.fs().populate("/same", 8 << 20, 0x77).unwrap();
    for kind in BackendKind::all() {
        let sys2 = sys.clone();
        sys.reset_virtual_time();
        let factory = make_factory(kind, &sys2, 0, 0);
        let sim = Simulation::new();
        sim.spawn("t", move |ctx| {
            let mut b = factory.make_thread();
            let h = b.open(ctx, "/same", false).unwrap();
            let mut buf = vec![0u8; 16384];
            b.pread(ctx, h, &mut buf, 1 << 20).unwrap();
            assert!(buf.iter().all(|&x| x == 0x77), "{kind} returned wrong data");
            b.close(ctx, h).unwrap();
        });
        sim.run();
    }
}

#[test]
fn saturating_the_device_from_sixteen_threads() {
    // The full stack under load: 16 threads of one process, ~1.5M IOPS
    // ceiling, latency grows but nothing breaks and data stays right.
    let sys = system();
    sys.fs().populate("/sat", 64 << 20, 0x31).unwrap();
    let proc = UserProcess::start(&sys, 0, 0);
    let sim = Simulation::new();
    let done: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    for tid in 0..16 {
        let p = Arc::clone(&proc);
        let d = Arc::clone(&done);
        sim.spawn(&format!("w{tid}"), move |ctx| {
            let mut t = p.thread();
            let fd = if tid == 0 {
                t.open(ctx, "/sat", false).unwrap()
            } else {
                // fds are process-wide; wait (in virtual time!) until the
                // first thread's open has completed, then reuse fd 3.
                loop {
                    if let Ok(sz) = t.size(3) {
                        assert!(sz > 0);
                        break 3;
                    }
                    ctx.delay(bypassd_sim::Nanos::from_micros(1));
                }
            };
            let mut rng = bypassd_sim::rng::Rng::new(tid as u64);
            let mut buf = vec![0u8; 4096];
            for _ in 0..200 {
                let off = rng.gen_range(16_000) * 4096;
                t.pread(ctx, fd, &mut buf, off).unwrap();
                assert_eq!(buf[0], 0x31);
            }
            *d.lock() += 200;
        });
    }
    sim.run();
    assert_eq!(*done.lock(), 3200);
    let elapsed = sim.now();
    let iops = 3200.0 / elapsed.as_secs_f64();
    assert!(
        iops > 400_000.0,
        "16 threads should push serious IOPS, got {iops:.0}"
    );
}

#[test]
fn unlink_blocks_while_mapped_then_succeeds() {
    let sys = system();
    sys.fs().populate("/tmpfile", 4096, 1).unwrap();
    let sim = Simulation::new();
    let s = sys.clone();
    sim.spawn("life", move |ctx| {
        let proc = UserProcess::start(&s, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/tmpfile", true).unwrap();
        assert_eq!(
            s.fs().unlink("/tmpfile", 0, 0),
            Err(bypassd_ext4::Ext4Error::Busy),
            "unlink must fail while mapped"
        );
        t.close(ctx, fd).unwrap();
        s.fs().unlink("/tmpfile", 0, 0).unwrap();
        assert!(s.fs().lookup("/tmpfile").is_err());
    });
    sim.run();
}

#[test]
fn fmap_memory_overhead_is_small() {
    // §6.3: every 2MB of file costs one 4KB file-table frame (~0.2%).
    let sys = system();
    let before = sys.mem().allocated_frames();
    sys.fs().populate("/big", 256 << 20, 0).unwrap();
    let after_populate = sys.mem().allocated_frames();
    let sim = Simulation::new();
    let s = sys.clone();
    sim.spawn("m", move |ctx| {
        let proc = UserProcess::start(&s, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/big", false).unwrap();
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
    });
    sim.run();
    let frames_added = sys.mem().allocated_frames() - after_populate;
    // 256MB file = 128 fragments + process tables + queues/DMA (~300
    // frames for the 1MB DMA buffer etc). Overhead must stay ~small.
    assert!(
        frames_added < 512,
        "mapping 256MB cost {frames_added} frames (expected ~128 + fixed)"
    );
    let _ = before;
}

#[test]
fn pread_batch_matches_sequential_reads() {
    // Same offsets through pread_batch and pread must yield identical
    // bytes; a single unaligned request must route the whole batch down
    // the sequential path with identical semantics.
    use bypassd::ReadReq;
    let sys = system();
    let file = 4u64 << 20;
    sys.fs().populate("/b", file, 0).unwrap();

    let sim = Simulation::new();
    let s = sys.clone();
    sim.spawn("writer", move |ctx| {
        let proc = UserProcess::start(&s, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/b", true).unwrap();
        for i in 0..64u64 {
            t.pwrite(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                .unwrap();
        }
        t.close(ctx, fd).unwrap();
    });
    sim.run();

    let sim = Simulation::new();
    let s = sys.clone();
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&s, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/b", false).unwrap();
        let offsets: Vec<u64> = (0..64u64).rev().map(|i| i * 4096).collect();
        let mut batched = vec![0u8; 64 * 4096];
        {
            let mut reqs: Vec<ReadReq<'_>> = batched
                .chunks_mut(4096)
                .zip(offsets.iter())
                .map(|(buf, &offset)| ReadReq { offset, buf })
                .collect();
            let n = t.pread_batch(ctx, fd, &mut reqs).unwrap();
            assert_eq!(n, 64 * 4096);
        }
        let mut seq = vec![0u8; 4096];
        for (k, &off) in offsets.iter().enumerate() {
            t.pread(ctx, fd, &mut seq, off).unwrap();
            assert_eq!(
                &batched[k * 4096..(k + 1) * 4096],
                &seq[..],
                "batched read {k} (offset {off}) diverged from sequential"
            );
        }
        // Unaligned request: the whole batch takes the sequential path.
        let mut a = vec![0u8; 4096];
        let mut b = vec![0u8; 100];
        let mut reqs = [
            ReadReq {
                offset: 0,
                buf: &mut a,
            },
            ReadReq {
                offset: 123,
                buf: &mut b,
            },
        ];
        let n = t.pread_batch(ctx, fd, &mut reqs).unwrap();
        assert_eq!(n, 4096 + 100);
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 1, "offset 123 still inside page 0's 0x01 fill");
        let (_, fallback) = proc.op_counts();
        assert_eq!(fallback, 0, "all reads stayed on the direct path");
    });
    sim.run();
}

#[test]
fn batched_reads_multithreaded_under_qos_and_trace() {
    // Smoke test for the batched submit/reap path under adversarial
    // conditions: two reader threads on private queues, a non-blocking
    // writer filling the overlay, QoS arbitration emitting pressure
    // signals, and sampled tracing recording throughout.
    use bypassd::{QosConfig, ReadReq, TraceConfig};
    use bypassd_sim::rng::Rng;
    const FILE: u64 = 8 << 20;
    const WRITER_REGION: u64 = 1 << 20;
    let sys = System::builder()
        .capacity(4 << 30)
        .qos(QosConfig::enabled())
        .trace(TraceConfig::sampled(4))
        .build();
    sys.fs().populate("/shared", FILE, 0x5a).unwrap();

    let sim = Simulation::new();
    let proc = UserProcess::start(&sys, 0, 0);
    for (name, seed) in [("reader-1", 11u64), ("reader-2", 22u64)] {
        let p = Arc::clone(&proc);
        sim.spawn(name, move |ctx| {
            let mut t = p.thread();
            // Writable like the writer: mixed-permission fmaps of one
            // file share fragments and would thrash the write FTEs.
            let fd = t.open(ctx, "/shared", true).unwrap();
            let mut buf = vec![0u8; 16 * 4096];
            let mut rng = Rng::new(seed);
            for _ in 0..50 {
                let mut reqs: Vec<ReadReq<'_>> = buf
                    .chunks_mut(4096)
                    .map(|b| ReadReq {
                        // Stay clear of the writer's region so content
                        // is deterministic.
                        offset: WRITER_REGION + rng.gen_range((FILE - WRITER_REGION) / 4096) * 4096,
                        buf: b,
                    })
                    .collect();
                let n = t.pread_batch(ctx, fd, &mut reqs).unwrap();
                assert_eq!(n, 16 * 4096);
                assert!(buf.iter().all(|&x| x == 0x5a), "payload corrupted");
            }
            t.close(ctx, fd).unwrap();
        });
    }
    let p = Arc::clone(&proc);
    sim.spawn("async-writer", move |ctx| {
        let mut t = p.thread();
        let fd = t.open(ctx, "/shared", true).unwrap();
        let mut back = vec![0u8; 16 * 4096];
        for round in 0..10u64 {
            for i in 0..16u64 {
                t.pwrite_async(ctx, fd, &[0x77u8; 4096], i * 4096).unwrap();
            }
            // Batched read-back sees the overlay (or landed) data.
            let mut reqs: Vec<ReadReq<'_>> = back
                .chunks_mut(4096)
                .enumerate()
                .map(|(i, b)| ReadReq {
                    offset: i as u64 * 4096,
                    buf: b,
                })
                .collect();
            let n = t.pread_batch(ctx, fd, &mut reqs).unwrap();
            assert_eq!(n, 16 * 4096);
            assert!(
                back.iter().all(|&x| x == 0x77),
                "round {round}: read-after-write broke under batching"
            );
            t.flush_writes(ctx, fd).unwrap();
        }
        t.close(ctx, fd).unwrap();
    });
    sim.run();

    let (direct, fallback) = proc.op_counts();
    assert_eq!(fallback, 0, "no op fell back to the kernel");
    // 2 readers x 50 flights x 16 + writer 10 x (16 writes + 16 reads).
    assert_eq!(direct, 2 * 50 * 16 + 10 * 32);
    let counts = sys.recorder().counts();
    assert!(counts.ops > 0, "sampled tracing captured no op records");
    assert!(
        counts.sampled_out > 0,
        "sampling period 4 must skip some records"
    );
}
