//! Allocation contract for the steady-state data path (DESIGN.md §12):
//! after warmup, a cached-fd 4 KB direct read must touch the global
//! allocator **zero** times — every per-op buffer lives in a
//! preallocated slab, scratch, or ring.
//!
//! The binary installs a counting `#[global_allocator]` with a
//! *thread-local* allocation counter, so only allocations made by the
//! actor thread running the read loop are charged — the conductor
//! thread's bookkeeping is irrelevant to the contract. This file is its
//! own test target with a single `#[test]` so no parallel test can share
//! the process.

use std::alloc::{GlobalAlloc, Layout, System as SysAlloc};
use std::cell::Cell;
use std::sync::Arc;

use bypassd::{System, UserProcess};
use bypassd_sim::rng::Rng;
use bypassd_sim::Simulation;
use parking_lot::Mutex;

thread_local! {
    /// Allocations (alloc + realloc) made by this thread. Const-init and
    /// non-Drop, so reading it never itself allocates or registers a TLS
    /// destructor.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation verbatim to the system allocator;
// the counter update has no side effect on the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { SysAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SysAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { SysAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_cached_fd_reads_do_not_allocate() {
    const WARMUP: u64 = 2_000;
    const OPS: u64 = 10_000;
    const FILE: u64 = 8 << 20;
    let sys = System::builder().capacity(64 << 20).build();
    sys.fs().populate("/hot", FILE, 0x5a).unwrap();
    let sim = Simulation::new();
    let s2 = sys.clone();
    let delta = Arc::new(Mutex::new(u64::MAX));
    let d2 = Arc::clone(&delta);
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&s2, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/hot", false).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut rng = Rng::new(1);
        // Warmup: touch every page once so the IOTLB/PWC reach their
        // steady population (the working set fits the IOTLB, so the
        // timed loop only hits warm entries), then run a random pass to
        // arm the fd cache, grow device/IOMMU scratch to its high-water
        // mark, and settle the engine on the no-handoff fast path.
        let mut off = 0;
        while off < FILE {
            t.pread(ctx, fd, &mut buf, off).unwrap();
            off += 4096;
        }
        for _ in 0..WARMUP {
            let off = rng.gen_range(FILE / 4096) * 4096;
            t.pread(ctx, fd, &mut buf, off).unwrap();
        }
        let before = ALLOCS.with(Cell::get);
        for _ in 0..OPS {
            let off = rng.gen_range(FILE / 4096) * 4096;
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096);
        }
        let after = ALLOCS.with(Cell::get);
        *d2.lock() = after - before;
        let (direct, fallback) = proc.op_counts();
        assert_eq!(direct, FILE / 4096 + WARMUP + OPS);
        assert_eq!(fallback, 0);
    });
    sim.run();
    let allocs = *delta.lock();
    assert_eq!(
        allocs, 0,
        "steady-state cached-fd 4KB reads hit the global allocator {allocs} times \
         (contract: zero after warmup)"
    );
}
