//! Model-based testing: UserLib (the whole stack under it — queues,
//! IOMMU translation, ext4, device) must behave exactly like a flat byte
//! array under arbitrary interleavings of reads, writes (sync, async,
//! partial), appends, fsyncs and revocations.

use std::sync::Arc;

use bypassd::{System, UserProcess};
use bypassd_os::OpenFlags;
use bypassd_sim::rng::Rng;
use bypassd_sim::Simulation;
use parking_lot::Mutex;

/// One step of the generated workload.
#[derive(Debug, Clone)]
enum Op {
    Read { offset: u64, len: usize },
    Write { offset: u64, len: usize, byte: u8 },
    WriteAsync { offset: u64, len: usize, byte: u8 },
    PartialWrite { offset: u64, len: usize, byte: u8 },
    Append { len: usize, byte: u8 },
    Fsync,
    Revoke,
}

fn generate_ops(seed: u64, n: usize, max_size: u64) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match rng.gen_range(20) {
            0..=7 => Op::Read {
                offset: rng.gen_range(max_size),
                len: 1 + rng.gen_range(16_384) as usize,
            },
            8..=11 => Op::Write {
                offset: rng.gen_range(max_size / 4096 / 2) * 4096,
                len: 4096 * (1 + rng.gen_range(3) as usize),
                byte: rng.gen_range(255) as u8 + 1,
            },
            12..=14 => Op::WriteAsync {
                offset: rng.gen_range(max_size / 4096 / 2) * 4096,
                len: 4096,
                byte: rng.gen_range(255) as u8 + 1,
            },
            15..=16 => Op::PartialWrite {
                offset: rng.gen_range(max_size / 2),
                len: 1 + rng.gen_range(700) as usize,
                byte: rng.gen_range(255) as u8 + 1,
            },
            17..=18 => Op::Append {
                len: 512 * (1 + rng.gen_range(4) as usize),
                byte: rng.gen_range(255) as u8 + 1,
            },
            19 => {
                if rng.gen_bool(0.7) {
                    Op::Fsync
                } else {
                    Op::Revoke
                }
            }
            _ => unreachable!(),
        };
        ops.push(op);
    }
    ops
}

/// Seed budget under a slow interpreter: `BYPASSD_MODEL_CASES=n` (set by
/// `cargo xtask miri`) caps the seed sweep at `n` seeds and shrinks
/// per-case op counts 8x so the suite fits Miri's CI budget. Unset means
/// full scale.
fn model_budget() -> Option<usize> {
    std::env::var("BYPASSD_MODEL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

fn case_ops(full: usize) -> usize {
    if model_budget().is_some() {
        (full / 8).max(20)
    } else {
        full
    }
}

fn run_model_case(seed: u64, n_ops: usize) {
    const INITIAL: u64 = 256 * 1024;
    const MAX: u64 = 512 * 1024;
    let sys = System::builder().capacity(1 << 30).build();
    sys.fs().populate("/model", INITIAL, 0xA5).unwrap();
    let ops = generate_ops(seed, n_ops, MAX);

    let sim = Simulation::new();
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let f2 = Arc::clone(&failures);
    let sys2 = sys.clone();
    sim.spawn("model", move |ctx| {
        let proc = UserProcess::start(&sys2, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/model", true).unwrap();
        // The model: a plain in-memory byte vector.
        let mut model = vec![0xA5u8; INITIAL as usize];
        let mut revokes = 0;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Read { offset, len } => {
                    let mut buf = vec![0u8; *len];
                    let n = t.pread(ctx, fd, &mut buf, *offset).unwrap();
                    let expect_n = (model.len() as u64)
                        .saturating_sub(*offset)
                        .min(*len as u64);
                    if n as u64 != expect_n {
                        f2.lock()
                            .push(format!("op {i}: read len {n} != model {expect_n} ({op:?})"));
                        return;
                    }
                    if n > 0 {
                        let expect = &model[*offset as usize..*offset as usize + n];
                        if &buf[..n] != expect {
                            f2.lock()
                                .push(format!("op {i}: read data mismatch ({op:?})"));
                            return;
                        }
                    }
                }
                Op::Write { offset, len, byte }
                | Op::WriteAsync { offset, len, byte }
                | Op::PartialWrite { offset, len, byte } => {
                    let data = vec![*byte; *len];
                    let is_async = matches!(op, Op::WriteAsync { .. });
                    let n = if is_async {
                        t.pwrite_async(ctx, fd, &data, *offset).unwrap()
                    } else {
                        t.pwrite(ctx, fd, &data, *offset).unwrap()
                    };
                    assert_eq!(n, *len);
                    let end = *offset as usize + *len;
                    if end > model.len() {
                        model.resize(end, 0);
                    }
                    model[*offset as usize..end].fill(*byte);
                }
                Op::Append { len, byte } => {
                    let data = vec![*byte; *len];
                    let at = model.len() as u64;
                    let n = t.pwrite(ctx, fd, &data, at).unwrap();
                    assert_eq!(n, *len);
                    model.extend_from_slice(&data);
                }
                Op::Fsync => {
                    t.fsync(ctx, fd).unwrap();
                }
                Op::Revoke => {
                    // A kernel-interface open forces revocation; close it
                    // again so direct access can come back later.
                    revokes += 1;
                    let pid = sys2.kernel().spawn_process(0, 0);
                    let flags = OpenFlags {
                        read: true,
                        write: false,
                        direct: false,
                        create: false,
                        truncate: false,
                        bypassd_intent: false,
                    };
                    let kfd = sys2
                        .kernel()
                        .sys_open(ctx, pid, "/model", flags, 0)
                        .unwrap();
                    // One read through the kernel interface too.
                    let mut kb = vec![0u8; 512];
                    let kn = sys2.kernel().sys_pread(ctx, pid, kfd, &mut kb, 0).unwrap();
                    if kb[..kn] != model[..kn] {
                        f2.lock().push(format!("op {i}: kernel view diverged"));
                        return;
                    }
                    sys2.kernel().sys_close(ctx, pid, kfd).unwrap();
                }
            }
        }
        t.fsync(ctx, fd).unwrap();
        // Final sweep: whole file must equal the model.
        let mut buf = vec![0u8; model.len()];
        let n = t.pread(ctx, fd, &mut buf, 0).unwrap();
        if n != model.len() || buf != model {
            f2.lock().push("final sweep mismatch".to_string());
        }
        let _ = revokes;
        t.close(ctx, fd).unwrap();
    });
    sim.run();
    let fails = failures.lock();
    assert!(fails.is_empty(), "seed {seed}: {fails:?}");
}

#[test]
fn userlib_matches_flat_file_model_seed_a() {
    run_model_case(0xB17A55D, case_ops(300));
}

#[test]
fn userlib_matches_flat_file_model_seed_b() {
    run_model_case(0xCAFE, case_ops(300));
}

#[test]
fn userlib_matches_flat_file_model_seed_c() {
    run_model_case(7, case_ops(300));
}

#[test]
fn userlib_matches_flat_file_model_many_short_seeds() {
    let seeds = model_budget().unwrap_or(16).min(16) as u64;
    for seed in 100..100 + seeds {
        run_model_case(seed, case_ops(60));
    }
}

#[test]
fn two_threads_disjoint_regions_match_model() {
    // Concurrency: two threads of one process write disjoint halves;
    // the final file equals the deterministic union.
    let sys = System::builder().capacity(1 << 30).build();
    sys.fs().populate("/model2", 512 * 1024, 0).unwrap();
    let proc_holder: Arc<Mutex<Option<Arc<UserProcess>>>> = Arc::new(Mutex::new(None));
    {
        let sim = Simulation::new();
        let sys2 = sys.clone();
        let ph = Arc::clone(&proc_holder);
        sim.spawn("setup", move |ctx| {
            let proc = UserProcess::start(&sys2, 0, 0);
            let mut t = proc.thread();
            let fd = t.open(ctx, "/model2", true).unwrap();
            assert_eq!(fd, 3);
            *ph.lock() = Some(proc);
        });
        sim.run();
    }
    let proc = proc_holder.lock().take().unwrap();
    let sim = Simulation::new();
    for half in 0..2u64 {
        let p = Arc::clone(&proc);
        sim.spawn(&format!("h{half}"), move |ctx| {
            let mut t = p.thread();
            let base = half * 256 * 1024;
            let mut rng = Rng::new(half + 1);
            let iters = if model_budget().is_some() { 8 } else { 64 };
            for i in 0..iters {
                let off = base + (i % 64) * 4096;
                let byte = (rng.gen_range(255) + 1) as u8;
                if rng.gen_bool(0.5) {
                    t.pwrite(ctx, 3, &vec![byte; 4096], off).unwrap();
                } else {
                    t.pwrite_async(ctx, 3, &vec![byte; 4096], off).unwrap();
                }
                // Immediately verify our own region.
                let mut buf = vec![0u8; 4096];
                t.pread(ctx, 3, &mut buf, off).unwrap();
                assert!(
                    buf.iter().all(|&b| b == byte),
                    "thread {half} lost its write"
                );
            }
            t.flush_writes(ctx, 3).unwrap();
        });
    }
    sim.run();
}
