//! Crash-consistency through the full stack: metadata survives a crash
//! via journal replay (the paper's configuration journals metadata only —
//! "ext4 without data journaling", §4).

use bypassd::{System, UserProcess};
use bypassd_ext4::Ext4;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;

fn system() -> System {
    System::builder().capacity(2 << 30).build()
}

#[test]
fn metadata_survives_crash_after_direct_appends() {
    let sys = system();
    let sim = Simulation::new();
    let s = sys.clone();
    sim.spawn("app", move |ctx| {
        let proc = UserProcess::start(&s, 0, 0);
        let mut t = proc.thread();
        let fd = t.open_with(ctx, "/journal-me", true, true).unwrap();
        // Appends go through the kernel and are journaled.
        for i in 0..8u64 {
            t.pwrite(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                .unwrap();
        }
        t.fsync(ctx, fd).unwrap();
        // Crash *before* close: home metadata writes stop reaching the
        // device, but the journal has the committed transactions.
        s.fs().crash();
        // More activity after the crash point (these home writes vanish).
        let _ = t.pwrite(ctx, fd, &vec![0xFF; 4096], 8 * 4096);
    });
    sim.run();

    // Remount: journal replay must restore the file with all 8 blocks.
    let fs2 = Ext4::mount(sys.device(), sys.mem()).expect("remount failed");
    let ino = fs2.lookup("/journal-me").expect("file lost after crash");
    let size = fs2.size_of(ino).unwrap();
    assert!(size >= 8 * 4096, "size after recovery = {size}");
    let (segs, _) = fs2.resolve(ino, 0, 8 * 4096).unwrap();
    assert!(
        segs.iter().all(|(l, _)| l.is_some()),
        "holes after recovery"
    );
    // Data blocks were written in place (ordered mode): contents intact.
    let mut buf = vec![0u8; 4096];
    let mut pos = 0u64;
    for (lba, len) in &segs {
        let mut remaining = *len;
        let mut cur = lba.unwrap();
        while remaining > 0 {
            sys.device().read_raw(cur, &mut buf);
            let block_idx = pos / 4096;
            assert!(
                buf.iter().all(|&b| b == (block_idx + 1) as u8),
                "data of block {block_idx} corrupted"
            );
            cur = bypassd_hw::types::Lba(cur.0 + 8);
            pos += 4096;
            remaining -= 4096;
        }
    }
}

#[test]
fn directory_tree_survives_crash() {
    let sys = system();
    let fs = sys.fs();
    fs.mkdir("/a", 0o755, 0, 0).unwrap();
    fs.mkdir("/a/b", 0o755, 0, 0).unwrap();
    for i in 0..10 {
        fs.create(&format!("/a/b/f{i}"), 0o644, 0, 0).unwrap();
    }
    fs.crash();
    // Post-crash creations must be recoverable from the journal too.
    let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
    for i in 0..10 {
        assert!(
            fs2.lookup(&format!("/a/b/f{i}")).is_ok(),
            "lost /a/b/f{i} after crash"
        );
    }
    assert_eq!(fs2.readdir("/a/b").unwrap().len(), 10);
}

#[test]
fn allocations_not_double_used_after_recovery() {
    let sys = system();
    let fs = sys.fs();
    let a = fs.create("/alloc-a", 0o644, 0, 0).unwrap();
    fs.allocate(a, 0, 8 << 20).unwrap();
    fs.crash();
    let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
    let a2 = fs2.lookup("/alloc-a").unwrap();
    let b = fs2.create("/alloc-b", 0o644, 0, 0).unwrap();
    fs2.allocate(b, 0, 8 << 20).unwrap();
    let (sa, _) = fs2.resolve(a2, 0, 8 << 20).unwrap();
    let (sb, _) = fs2.resolve(b, 0, 8 << 20).unwrap();
    // No overlap between the two files' extents.
    for (la, lena) in sa.iter().map(|(l, n)| (l.unwrap().0, n / 512)) {
        for (lb, lenb) in sb.iter().map(|(l, n)| (l.unwrap().0, n / 512)) {
            assert!(
                la + lena <= lb || lb + lenb <= la,
                "extent overlap after recovery: [{la},{lena}] vs [{lb},{lenb}]"
            );
        }
    }
}

#[test]
fn unlinked_file_stays_gone_after_crash() {
    let sys = system();
    let fs = sys.fs();
    fs.create("/gone", 0o644, 0, 0).unwrap();
    fs.unlink("/gone", 0, 0).unwrap();
    fs.crash();
    let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
    assert!(fs2.lookup("/gone").is_err(), "unlink lost across crash");
}

#[test]
fn virtual_time_cut_mid_workload_recovers_consistently() {
    // The fault clock replaces the coarse `crash()`: power is cut at an
    // arbitrary virtual-time instant *while the workload runs*, not at a
    // hand-picked quiescent point. Whatever prefix of fsync'd steps made
    // it to media must be intact; the filesystem must be fsck-clean.
    for cut_ns in [150_000u64, 400_000, 900_000] {
        let sys = system();
        sys.fs().crash_at(Nanos(cut_ns));
        let sim = Simulation::new();
        let s = sys.clone();
        sim.spawn("writer", move |ctx| {
            let proc = UserProcess::start(&s, 0, 0);
            let mut t = proc.thread();
            let fd = t.open_with(ctx, "/timed", true, true).unwrap();
            for i in 0..16u64 {
                // Post-cut syscalls legitimately fail; keep issuing so the
                // clock advances past every candidate instant.
                if t.pwrite(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                    .is_err()
                {
                    break;
                }
                let _ = t.fsync(ctx, fd);
            }
        });
        sim.run();

        let fs2 = Ext4::mount(sys.device(), sys.mem())
            .unwrap_or_else(|e| panic!("remount after cut@{cut_ns}: {e:?}"));
        let report = bypassd_ext4::fsck(sys.device());
        assert!(
            report.clean(),
            "fsck after cut@{cut_ns}: {}",
            report.errors.join("; ")
        );
        // A time cut is clean (no tears): every block under the recovered
        // size holds exactly its step pattern.
        if let Ok(ino) = fs2.lookup("/timed") {
            let size = fs2.size_of(ino).unwrap();
            assert_eq!(size % 4096, 0, "torn size {size} from a clean cut");
            let mut buf = vec![0u8; 4096];
            let (segs, _) = fs2.resolve(ino, 0, size).unwrap();
            let mut pos = 0u64;
            for (lba, len) in &segs {
                let mut remaining = *len;
                let mut cur = lba.expect("hole under recovered size");
                while remaining > 0 {
                    sys.device().read_raw(cur, &mut buf);
                    let blk = pos / 4096;
                    assert!(
                        buf.iter().all(|&b| b == (blk + 1) as u8),
                        "block {blk} corrupted after cut@{cut_ns}"
                    );
                    cur = bypassd_hw::types::Lba(cur.0 + 8);
                    pos += 4096;
                    remaining -= 4096;
                }
            }
        }
    }
}

#[test]
fn repeated_crash_recovery_cycles() {
    let sys = system();
    {
        sys.fs().create("/cycle", 0o644, 0, 0).unwrap();
    }
    let mut current = None;
    for round in 0..5 {
        let fs: &Ext4 = match &current {
            None => sys.fs(),
            Some(f) => f,
        };
        let ino = fs.lookup("/cycle").unwrap();
        fs.allocate(ino, round * 4096, 4096).unwrap();
        fs.crash();
        let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
        let ino2 = fs2.lookup("/cycle").unwrap();
        assert_eq!(
            fs2.size_of(ino2).unwrap(),
            (round + 1) * 4096,
            "round {round} lost its allocation"
        );
        current = Some(fs2);
    }
}
