//! Crash-consistency through the full stack: metadata survives a crash
//! via journal replay (the paper's configuration journals metadata only —
//! "ext4 without data journaling", §4).

use bypassd::{System, UserProcess};
use bypassd_ext4::Ext4;
use bypassd_sim::Simulation;

fn system() -> System {
    System::builder().capacity(2 << 30).build()
}

#[test]
fn metadata_survives_crash_after_direct_appends() {
    let sys = system();
    let sim = Simulation::new();
    let s = sys.clone();
    sim.spawn("app", move |ctx| {
        let proc = UserProcess::start(&s, 0, 0);
        let mut t = proc.thread();
        let fd = t.open_with(ctx, "/journal-me", true, true).unwrap();
        // Appends go through the kernel and are journaled.
        for i in 0..8u64 {
            t.pwrite(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                .unwrap();
        }
        t.fsync(ctx, fd).unwrap();
        // Crash *before* close: home metadata writes stop reaching the
        // device, but the journal has the committed transactions.
        s.fs().crash();
        // More activity after the crash point (these home writes vanish).
        let _ = t.pwrite(ctx, fd, &vec![0xFF; 4096], 8 * 4096);
    });
    sim.run();

    // Remount: journal replay must restore the file with all 8 blocks.
    let fs2 = Ext4::mount(sys.device(), sys.mem()).expect("remount failed");
    let ino = fs2.lookup("/journal-me").expect("file lost after crash");
    let size = fs2.size_of(ino).unwrap();
    assert!(size >= 8 * 4096, "size after recovery = {size}");
    let (segs, _) = fs2.resolve(ino, 0, 8 * 4096).unwrap();
    assert!(
        segs.iter().all(|(l, _)| l.is_some()),
        "holes after recovery"
    );
    // Data blocks were written in place (ordered mode): contents intact.
    let mut buf = vec![0u8; 4096];
    let mut pos = 0u64;
    for (lba, len) in &segs {
        let mut remaining = *len;
        let mut cur = lba.unwrap();
        while remaining > 0 {
            sys.device().read_raw(cur, &mut buf);
            let block_idx = pos / 4096;
            assert!(
                buf.iter().all(|&b| b == (block_idx + 1) as u8),
                "data of block {block_idx} corrupted"
            );
            cur = bypassd_hw::types::Lba(cur.0 + 8);
            pos += 4096;
            remaining -= 4096;
        }
    }
}

#[test]
fn directory_tree_survives_crash() {
    let sys = system();
    let fs = sys.fs();
    fs.mkdir("/a", 0o755, 0, 0).unwrap();
    fs.mkdir("/a/b", 0o755, 0, 0).unwrap();
    for i in 0..10 {
        fs.create(&format!("/a/b/f{i}"), 0o644, 0, 0).unwrap();
    }
    fs.crash();
    // Post-crash creations must be recoverable from the journal too.
    let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
    for i in 0..10 {
        assert!(
            fs2.lookup(&format!("/a/b/f{i}")).is_ok(),
            "lost /a/b/f{i} after crash"
        );
    }
    assert_eq!(fs2.readdir("/a/b").unwrap().len(), 10);
}

#[test]
fn allocations_not_double_used_after_recovery() {
    let sys = system();
    let fs = sys.fs();
    let a = fs.create("/alloc-a", 0o644, 0, 0).unwrap();
    fs.allocate(a, 0, 8 << 20).unwrap();
    fs.crash();
    let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
    let a2 = fs2.lookup("/alloc-a").unwrap();
    let b = fs2.create("/alloc-b", 0o644, 0, 0).unwrap();
    fs2.allocate(b, 0, 8 << 20).unwrap();
    let (sa, _) = fs2.resolve(a2, 0, 8 << 20).unwrap();
    let (sb, _) = fs2.resolve(b, 0, 8 << 20).unwrap();
    // No overlap between the two files' extents.
    for (la, lena) in sa.iter().map(|(l, n)| (l.unwrap().0, n / 512)) {
        for (lb, lenb) in sb.iter().map(|(l, n)| (l.unwrap().0, n / 512)) {
            assert!(
                la + lena <= lb || lb + lenb <= la,
                "extent overlap after recovery: [{la},{lena}] vs [{lb},{lenb}]"
            );
        }
    }
}

#[test]
fn unlinked_file_stays_gone_after_crash() {
    let sys = system();
    let fs = sys.fs();
    fs.create("/gone", 0o644, 0, 0).unwrap();
    fs.unlink("/gone", 0, 0).unwrap();
    fs.crash();
    let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
    assert!(fs2.lookup("/gone").is_err(), "unlink lost across crash");
}

#[test]
fn repeated_crash_recovery_cycles() {
    let sys = system();
    {
        sys.fs().create("/cycle", 0o644, 0, 0).unwrap();
    }
    let mut current = None;
    for round in 0..5 {
        let fs: &Ext4 = match &current {
            None => sys.fs(),
            Some(f) => f,
        };
        let ino = fs.lookup("/cycle").unwrap();
        fs.allocate(ino, round * 4096, 4096).unwrap();
        fs.crash();
        let fs2 = Ext4::mount(sys.device(), sys.mem()).unwrap();
        let ino2 = fs2.lookup("/cycle").unwrap();
        assert_eq!(
            fs2.size_of(ino2).unwrap(),
            (round + 1) * 4096,
            "round {round} lost its allocation"
        );
        current = Some(fs2);
    }
}
