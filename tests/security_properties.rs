//! The paper's qualitative security evaluation (§5.3), made quantitative:
//! a malicious process (including a malicious UserLib) can only read and
//! write files it has permission for. The kernel + hardware are the TCB.

use std::sync::Arc;

use bypassd::{System, UserProcess};
use bypassd_ext4::Ext4;
use bypassd_hw::iommu::AccessKind;
use bypassd_hw::types::{DevId, Lba, Pasid, Vba, PAGE_SIZE};
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use bypassd_ssd::device::{BlockAddr, Command};
use bypassd_ssd::dma::DmaBuffer;
use bypassd_ssd::queue::NvmeStatus;

fn system_with_secret() -> (System, Lba) {
    let sys = System::builder().capacity(2 << 30).build();
    let fs = sys.fs();
    fs.create("/victim", 0o600, 1, 1).unwrap();
    let ino = fs.lookup("/victim").unwrap();
    fs.allocate(ino, 0, 8192).unwrap();
    let (segs, _) = fs.resolve(ino, 0, 4096).unwrap();
    let lba = segs[0].0.unwrap();
    sys.device().write_raw(lba, &[0x5E; 4096]);
    (sys, lba)
}

#[test]
fn raw_lba_access_rejected_on_user_queues() {
    // A malicious UserLib crafts an LBA command against the stolen
    // address. The device refuses: user queues only accept VBAs.
    let (sys, secret_lba) = system_with_secret();
    let sim = Simulation::new();
    sim.spawn("attacker", move |ctx| {
        let proc = UserProcess::start(&sys, 666, 666);
        let pasid = sys.kernel().pasid_of(proc.pid());
        let q = sys.device().create_queue(Some(pasid), 8);
        let dma = DmaBuffer::alloc(sys.mem(), 4096);
        for cmd in [
            Command::read(BlockAddr::Lba(secret_lba), 8, &dma),
            Command::write(BlockAddr::Lba(secret_lba), 8, &dma),
            Command::write_zeroes(BlockAddr::Lba(secret_lba), 8),
        ] {
            let (st, _) = sys.device().execute(q, cmd, ctx.now());
            assert_eq!(st, NvmeStatus::InvalidField, "raw LBA got through");
        }
        // The secret is untouched.
        let mut buf = [0u8; 4096];
        sys.device().read_raw(secret_lba, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x5E));
    });
    sim.run();
}

#[test]
fn forged_vba_fails_translation() {
    // VBAs not backed by FTEs in *this* process's page table fault.
    let (sys, _) = system_with_secret();
    let sim = Simulation::new();
    sim.spawn("attacker", move |ctx| {
        let proc = UserProcess::start(&sys, 666, 666);
        let pasid = sys.kernel().pasid_of(proc.pid());
        let q = sys.device().create_queue(Some(pasid), 8);
        let dma = DmaBuffer::alloc(sys.mem(), 4096);
        for guess in [0x1000u64, 0x4000_0000, 0x10_0000_0000, 0x7FFF_FFFF_F000] {
            let (st, _) = sys.device().execute(
                q,
                Command::read(BlockAddr::Vba(Vba(guess)), 8, &dma),
                ctx.now(),
            );
            assert!(
                matches!(st, NvmeStatus::TranslationFault(_)),
                "guessed VBA {guess:#x} translated!"
            );
        }
        assert_eq!(sys.device().stats().reads, 0, "media was touched");
    });
    sim.run();
}

#[test]
fn anothers_mapping_is_unreachable_via_own_pasid() {
    // The victim maps its file; the attacker replays the *same* VBA on
    // its own queue. The IOMMU walks the attacker's page table → fault.
    let (sys, _) = system_with_secret();
    let victim_vba: Arc<parking_lot::Mutex<Vba>> = Arc::new(parking_lot::Mutex::new(Vba::NULL));
    let sim = Simulation::new();
    let s1 = sys.clone();
    let v1 = Arc::clone(&victim_vba);
    sim.spawn("victim", move |ctx| {
        let proc = UserProcess::start(&s1, 1, 1);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/victim", false).unwrap();
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5E));
        // Leak the VBA (simulating an info leak).
        let pid = proc.pid();
        let ino = s1.fs().lookup("/victim").unwrap();
        assert!(s1.fs().is_mapped(ino, pid));
        // Recover the VBA from the kernel's own syscall for the test.
        *v1.lock() = Vba(0x10_0000_0000); // region base used by fmap
        ctx.delay(Nanos::from_millis(1)); // stay alive while attacker runs
    });
    let s2 = sys.clone();
    let v2 = Arc::clone(&victim_vba);
    sim.spawn_at(Nanos::from_micros(100), "attacker", move |ctx| {
        let proc = UserProcess::start(&s2, 666, 666);
        let pasid = s2.kernel().pasid_of(proc.pid());
        let q = s2.device().create_queue(Some(pasid), 8);
        let dma = DmaBuffer::alloc(s2.mem(), 4096);
        let vba = *v2.lock();
        assert!(!vba.is_null());
        let (st, _) =
            s2.device()
                .execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), ctx.now());
        assert!(
            matches!(st, NvmeStatus::TranslationFault(_)),
            "stolen VBA translated through the attacker's PASID!"
        );
    });
    sim.run();
}

#[test]
fn readonly_open_cannot_write_even_via_device() {
    let sys = System::builder().capacity(2 << 30).build();
    sys.fs().populate("/ro-file", 8192, 0x11).unwrap();
    let sim = Simulation::new();
    sim.spawn("sneaky", move |ctx| {
        let proc = UserProcess::start(&sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/ro-file", false).unwrap(); // read-only
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        // Bypass UserLib's own checks: raw write command on the mapped
        // VBA. The IOMMU's permission bit must refuse it.
        let pasid = sys.kernel().pasid_of(proc.pid());
        let q = sys.device().create_queue(Some(pasid), 8);
        let dma = DmaBuffer::alloc(sys.mem(), 4096);
        dma.write(0, &[0xEE; 4096]);
        let vba = Vba(0x10_0000_0000); // fmap region base
                                       // Confirm reads DO work at this VBA (it is the real mapping)…
        let tr = sys
            .iommu()
            .lock()
            .translate(pasid, vba, PAGE_SIZE, AccessKind::Read, DevId(1))
            .map(|t| t.extents.len());
        assert!(tr.is_ok(), "test setup: vba should be the mapping base");
        // …but writes fault.
        let (st, _) =
            sys.device()
                .execute(q, Command::write(BlockAddr::Vba(vba), 8, &dma), ctx.now());
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
        // File content unchanged.
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11));
    });
    sim.run();
}

#[test]
fn closed_file_vbas_stop_translating() {
    let sys = System::builder().capacity(2 << 30).build();
    sys.fs().populate("/closeme", 8192, 0x22).unwrap();
    let sim = Simulation::new();
    sim.spawn("p", move |ctx| {
        let proc = UserProcess::start(&sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/closeme", false).unwrap();
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        let pasid = sys.kernel().pasid_of(proc.pid());
        let vba = Vba(0x10_0000_0000);
        assert!(sys
            .iommu()
            .lock()
            .translate(pasid, vba, PAGE_SIZE, AccessKind::Read, DevId(1))
            .is_ok());
        t.close(ctx, fd).unwrap();
        // After close the kernel detached the FTEs: the old VBA is dead.
        assert!(sys
            .iommu()
            .lock()
            .translate(pasid, vba, PAGE_SIZE, AccessKind::Read, DevId(1))
            .is_err());
    });
    sim.run();
}

#[test]
fn reallocated_blocks_never_leak_old_data() {
    // Confidentiality across users (§5.3): delete victim's file, let the
    // attacker allocate the same blocks, read them directly — zeroes.
    let sys = System::builder().capacity(1 << 28).build();
    let fs = sys.fs();
    let v = fs.populate("/victim2", 1 << 20, 0xAB).unwrap();
    let (segs, _) = fs.resolve(v, 0, 1 << 20).unwrap();
    let old_lba = segs[0].0.unwrap();
    // Consume the rest of the device so the next allocation can only be
    // satisfied from the victim's freed blocks.
    let slack = 128u64; // blocks left free besides the victim's
    let filler_blocks = fs.free_blocks() - slack;
    fs.populate("/filler", filler_blocks * 4096, 0).unwrap();
    fs.unlink("/victim2", 0, 0).unwrap();
    fs.sync_point(); // blocks become reusable only at the sync point

    let a = fs.create("/attacker-file", 0o644, 666, 666).unwrap();
    fs.allocate(a, 0, 1 << 20).unwrap();
    let (segs2, _) = fs.resolve(a, 0, 1 << 20).unwrap();
    // The allocator reused the space…
    assert!(
        segs2.iter().any(|(l, n)| {
            let l = l.unwrap().0;
            l < old_lba.0 + (1 << 20) / 512 && old_lba.0 < l + n / 512
        }),
        "test setup: blocks were not reused"
    );
    // …and direct reads see only zeroes.
    let sim = Simulation::new();
    sim.spawn("attacker", move |ctx| {
        let proc = UserProcess::start(&sys, 666, 666);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/attacker-file", false).unwrap();
        let mut buf = vec![0u8; 4096];
        for i in 0..256u64 {
            t.pread(ctx, fd, &mut buf, i * 4096).unwrap();
            assert!(
                buf.iter().all(|&b| b == 0),
                "old data leaked in reallocated block {i}"
            );
        }
    });
    sim.run();
}

#[test]
fn wrong_device_id_rejected() {
    // An FTE pins the device: a request from another device id fails.
    let (sys, _) = system_with_secret();
    let sim = Simulation::new();
    sim.spawn("p", move |ctx| {
        let proc = UserProcess::start(&sys, 1, 1);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/victim", false).unwrap();
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        let pasid = sys.kernel().pasid_of(proc.pid());
        let err = sys
            .iommu()
            .lock()
            .translate(
                pasid,
                Vba(0x10_0000_0000),
                PAGE_SIZE,
                AccessKind::Read,
                DevId(9),
            )
            .unwrap_err();
        assert_eq!(err.0, bypassd_hw::iommu::TranslateError::WrongDevice);
        let _ = Pasid(0);
    });
    sim.run();
}

#[test]
fn revocation_under_load_with_qos_throttling() {
    // Multi-tenant isolation under pressure (§3.6 + QoS): a rate-capped
    // flooder has its direct mappings revoked mid-burst while an
    // innocent tenant keeps reading. The flooder must transparently
    // fall back to the kernel with no data corruption, the victim must
    // never see a failure or a latency cliff, and the arbiter's
    // per-tenant books must still balance.
    let cap = {
        let mut c = bypassd::RateLimit::iops(50_000);
        c.burst_ops = 8;
        c
    };
    let sys = System::builder()
        .capacity(2 << 30)
        .qos(
            bypassd::QosConfig::enabled()
                .uid_share(2000, bypassd::TenantShare::weight(1).with_limit(cap)),
        )
        .build();
    sys.fs().populate("/flood", 1 << 20, 0x5A).unwrap();
    sys.fs().populate("/work", 1 << 20, 0x7B).unwrap();

    let sim = Simulation::new();
    let flood_pasid = Arc::new(parking_lot::Mutex::new(None));

    let s = sys.clone();
    let fp = Arc::clone(&flood_pasid);
    sim.spawn("flooder", move |ctx| {
        let proc = UserProcess::start(&s, 2000, 2000);
        *fp.lock() = Some(s.kernel().pasid_of(proc.pid()));
        let mut t = proc.thread();
        let fd = t.open(ctx, "/flood", false).unwrap();
        let mut buf = vec![0u8; 4096];
        for i in 0..150u64 {
            let off = (i % 256) * 4096;
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096);
            // Reads stay correct across the revocation: the kernel
            // fallback serves the same bytes.
            assert!(buf.iter().all(|&b| b == 0x5A), "corrupt read at op {i}");
        }
        t.close(ctx, fd).unwrap();
    });

    let s = sys.clone();
    let victim_lat = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let vl = Arc::clone(&victim_lat);
    sim.spawn("victim", move |ctx| {
        let proc = UserProcess::start(&s, 1000, 1000);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/work", false).unwrap();
        let mut buf = vec![0u8; 4096];
        for i in 0..600u64 {
            let off = (i % 256) * 4096;
            let start = ctx.now();
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096);
            assert!(buf.iter().all(|&b| b == 0x7B));
            vl.lock().push(ctx.now() - start);
        }
        t.close(ctx, fd).unwrap();
    });

    // Mid-burst, the administrator pulls the flooder's direct mappings.
    let s = sys.clone();
    sim.spawn_at(Nanos(1_000_000), "revoker", move |_ctx| {
        let revoked = s.kernel().revoke_path("/flood").unwrap();
        assert!(!revoked.is_empty(), "revocation found no direct openers");
    });

    sim.run();

    // The rate cap was live while the revocation happened.
    assert!(
        sys.device().stats().qos_throttled > 0,
        "flooder was never throttled; the test did not run under QoS pressure"
    );
    // The victim saw steady, uncontended-class latency throughout (the
    // flooder is capped well below its fair share).
    let lats = victim_lat.lock();
    assert_eq!(lats.len(), 600);
    let worst = lats.iter().copied().max().unwrap();
    assert!(
        worst < Nanos(12_000),
        "victim latency spiked to {worst} during revocation"
    );
    // Per-tenant accounting still balances for everyone, and the
    // flooder's direct-path fault from the revocation was recorded.
    let pasid = flood_pasid.lock().expect("flooder never registered");
    let mut saw_flooder = false;
    for (tenant, st) in sys.device().qos_snapshot() {
        assert!(st.accounted(), "{tenant:?} books don't balance");
        if tenant == bypassd::Tenant::User(pasid) {
            saw_flooder = true;
            assert!(st.failed >= 1, "revocation fault never hit the device");
            assert!(st.throttled > 0, "flooder was never rate-limited");
        }
    }
    assert!(saw_flooder, "flooder tenant missing from the snapshot");
}

#[test]
fn crash_recovery_never_leaks_blocks_through_stale_ftes() {
    // Composition of the fault plane with revocation + QoS (§3.6 + §5.3):
    // power is cut at several virtual-time instants while one tenant is
    // being revoked mid-burst and another holds live direct mappings.
    // After every cut, recovery must (a) leave the filesystem fsck-clean,
    // (b) tear down every pre-crash FTE — a stale mapping must not
    // translate into blocks recovery may hand to someone else — and
    // (c) never let the other tenant's bytes surface in this tenant's
    // file.
    let revoke_at = Nanos(150_000);
    for cut_ns in [400_000u64, 900_000, 1_600_000] {
        let sys = System::builder()
            .capacity(1 << 28)
            .qos(bypassd::QosConfig::enabled())
            .build();
        let fs = sys.fs();
        // The victim's secret: owner-only, filled with a marker byte.
        fs.create("/secret", 0o600, 1, 1).unwrap();
        let sec = fs.lookup("/secret").unwrap();
        fs.allocate(sec, 0, 16 * 4096).unwrap();
        let (secret_segs, _) = fs.resolve(sec, 0, 16 * 4096).unwrap();
        for (lba, len) in &secret_segs {
            let mut cur = lba.unwrap();
            let mut left = *len;
            while left > 0 {
                sys.device().write_raw(cur, &[0x5E; 4096]);
                cur = Lba(cur.0 + 8);
                left -= 4096;
            }
        }
        fs.populate("/mine", 64 * 4096, 0xAB).unwrap();
        fs.populate("/work", 64 * 4096, 0x7B).unwrap();
        sys.fs().crash_at(Nanos(cut_ns));

        let sim = Simulation::new();
        // The bystander's process outlives the simulation so its PASID
        // stays registered — exactly the stale-FTE hazard at remount.
        let holder: Arc<parking_lot::Mutex<Option<Arc<UserProcess>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let bystander_pasid = Arc::new(parking_lot::Mutex::new(None));

        let s = sys.clone();
        sim.spawn("attacker", move |ctx| {
            let proc = UserProcess::start(&s, 666, 666);
            let mut t = proc.thread();
            let fd = t.open(ctx, "/mine", true).unwrap();
            let mut buf = vec![0u8; 4096];
            for i in 0..300u64 {
                let off = (i % 64) * 4096;
                // Post-cut syscalls may fail; keep the clock moving.
                match t.pread(ctx, fd, &mut buf, off) {
                    Ok(n) => {
                        assert_eq!(n, 4096);
                        assert!(
                            buf.iter().all(|&b| b == 0xAB),
                            "foreign bytes in /mine at op {i}"
                        );
                    }
                    Err(_) => break,
                }
                if i % 8 == 0 && t.pwrite(ctx, fd, &[0xAB; 4096], off).is_err() {
                    break;
                }
            }
        });

        let s = sys.clone();
        let h = Arc::clone(&holder);
        let bp = Arc::clone(&bystander_pasid);
        sim.spawn("bystander", move |ctx| {
            let proc = UserProcess::start(&s, 1000, 1000);
            *bp.lock() = Some(s.kernel().pasid_of(proc.pid()));
            let mut t = proc.thread();
            let fd = t.open(ctx, "/work", false).unwrap();
            let mut buf = vec![0u8; 4096];
            for i in 0..200u64 {
                if t.pread(ctx, fd, &mut buf, (i % 64) * 4096).is_err() {
                    break;
                }
            }
            drop(t);
            *h.lock() = Some(proc);
        });

        // Mid-burst revocation of the attacker's direct mappings, well
        // before every candidate cut instant.
        let s = sys.clone();
        sim.spawn_at(revoke_at, "revoker", move |_ctx| {
            let revoked = s.kernel().revoke_path("/mine").unwrap();
            assert!(!revoked.is_empty(), "revocation found no direct openers");
        });
        sim.run();

        // Vacuity check: the bystander's mapping is still live after the
        // crash — this is the window a stale FTE would exploit.
        let pasid = bystander_pasid.lock().expect("bystander never started");
        let vba = Vba(0x10_0000_0000); // fmap region base
        assert!(
            sys.iommu()
                .lock()
                .translate(pasid, vba, PAGE_SIZE, AccessKind::Read, DevId(1))
                .is_ok(),
            "cut@{cut_ns}: pre-remount FTE already gone — test is vacuous"
        );

        // Recovery: journal replay + full fsck, then the FTE must be dead.
        let fs2 = Ext4::mount(sys.device(), sys.mem())
            .unwrap_or_else(|e| panic!("remount after cut@{cut_ns}: {e:?}"));
        let report = bypassd_ext4::fsck(sys.device());
        assert!(
            report.clean(),
            "fsck after cut@{cut_ns}: {}",
            report.errors.join("; ")
        );
        assert!(
            sys.iommu()
                .lock()
                .translate(pasid, vba, PAGE_SIZE, AccessKind::Read, DevId(1))
                .is_err(),
            "cut@{cut_ns}: stale FTE still translates after recovery"
        );

        // The attacker's file never absorbed the victim's marker bytes —
        // at any crash point, every recovered block is its own pattern
        // (or zero for a never-persisted write), never 0x5E.
        let mine = fs2.lookup("/mine").unwrap();
        let size = fs2.size_of(mine).unwrap();
        let (segs, _) = fs2.resolve(mine, 0, size).unwrap();
        let mut buf = vec![0u8; 4096];
        for (lba, len) in &segs {
            let Some(mut cur) = *lba else { continue };
            let mut left = *len;
            while left > 0 {
                sys.device().read_raw(cur, &mut buf);
                assert!(
                    buf.iter().all(|&b| b == 0xAB || b == 0),
                    "cut@{cut_ns}: foreign bytes in /mine after recovery"
                );
                cur = Lba(cur.0 + 8);
                left -= 4096;
            }
        }
        drop(holder.lock().take());
    }
}

#[test]
fn revocation_is_fully_visible_in_the_trace() {
    // Observability of the security mechanism (§3.6 + bypassd-trace):
    // when the kernel revokes a file's direct mappings, the flight
    // recorder must show (a) the in-flight command dying with a
    // translation fault at the device, (b) the victim op re-routing
    // through the kernel (path = revoked, kernel time > 0), and (c) no
    // direct-path stamps from that process leaking after the
    // revocation — every later op is kernel-path only.
    let sys = System::builder()
        .capacity(2 << 30)
        .trace(bypassd::TraceConfig::on())
        .build();
    sys.fs().populate("/secret", 1 << 20, 0x3C).unwrap();
    let revoke_at = Nanos(400_000);

    let sim = Simulation::new();
    let pid_cell = Arc::new(parking_lot::Mutex::new(0u64));
    let s = sys.clone();
    let pc = Arc::clone(&pid_cell);
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&s, 1000, 1000);
        *pc.lock() = proc.pid();
        let mut t = proc.thread();
        let fd = t.open(ctx, "/secret", false).unwrap();
        let mut buf = vec![0u8; 4096];
        for i in 0..200u64 {
            let off = (i % 256) * 4096;
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096);
            // Data stays correct across the transparent fallback.
            assert!(buf.iter().all(|&b| b == 0x3C), "corrupt read at op {i}");
        }
        assert!(t.is_fallback(fd), "revocation never reached the reader");
        t.close(ctx, fd).unwrap();
    });
    let s = sys.clone();
    sim.spawn_at(revoke_at, "revoker", move |_ctx| {
        let revoked = s.kernel().revoke_path("/secret").unwrap();
        assert!(!revoked.is_empty(), "revocation found no direct openers");
    });
    sim.run();

    use bypassd_trace::{IoPath, WalkLevel};
    let pid = *pid_cell.lock();
    let tenant = u64::from(sys.kernel().pasid_of(pid).0) + 1;
    let device = sys.recorder().take_device();
    let ops = sys.recorder().take_ops();

    // (a) The revoked mapping's in-flight command faulted at the device.
    let faults: Vec<_> = device
        .iter()
        .filter(|r| r.tenant == tenant && r.walk == Some(WalkLevel::Fault))
        .collect();
    assert!(!faults.is_empty(), "revocation fault never traced");
    assert!(
        faults.iter().all(|r| !r.ok),
        "a faulted command must not complete ok"
    );
    let fault_at = faults.iter().map(|r| r.submit).min().unwrap();
    assert!(
        fault_at >= revoke_at,
        "fault traced before the revocation: {fault_at} < {revoke_at}"
    );

    // (b) Exactly one op caught the revocation mid-flight and shows the
    // kernel completing it.
    let revoked_ops: Vec<_> = ops
        .iter()
        .filter(|r| r.pid == pid && r.path == IoPath::Revoked)
        .collect();
    assert_eq!(revoked_ops.len(), 1, "expected exactly one revoked op");
    let caught = revoked_ops[0];
    assert!(caught.faults >= 1, "revoked op lost its fault count");
    assert!(
        caught.kernel > Nanos::ZERO,
        "revoked op shows no kernel-fallback time"
    );

    // (c) Direct-path traffic existed before the revocation and none
    // leaked after it: no later direct op records from this process, no
    // later user-tenant commands on its queue.
    assert!(
        ops.iter()
            .any(|r| r.pid == pid && r.path == IoPath::Direct && r.start < revoke_at),
        "no direct traffic before the revocation — test is vacuous"
    );
    for op in ops
        .iter()
        .filter(|r| r.pid == pid && r.start > caught.start)
    {
        assert_ne!(
            op.path,
            IoPath::Direct,
            "direct-path op record leaked after revocation at {}",
            op.start
        );
    }
    assert!(
        !device
            .iter()
            .any(|r| r.tenant == tenant && r.submit > fault_at),
        "user-queue command traced after the revocation fault"
    );
}
