//! Deterministic fault-injection campaigns through the full stack:
//! arbitrary crash points swept over real workloads, every point checked
//! by remount + fsck + replay-twice idempotence + data integrity against
//! the durable-mark horizon — plus the media-error and completion-loss
//! injection paths end to end.
//!
//! `BYPASSD_CAMPAIGN_POINTS=<n>` bounds each sweep (CI smoke budget);
//! unset, the sweeps cover the full acceptance budget (≥ 200 combined
//! crash points).

use std::sync::Arc;

use bypassd::{CrashLab, CrashWorkload, System, UserProcess};
use bypassd_faults::campaign::CampaignConfig;
use bypassd_faults::plane::FaultPlane;
use bypassd_os::Errno;
use bypassd_sim::Simulation;

/// Per-campaign point budget: the env override, else `full`.
fn budget(full: usize) -> usize {
    std::env::var("BYPASSD_CAMPAIGN_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(full)
}

fn cfg(max_points: usize) -> CampaignConfig {
    CampaignConfig {
        max_points,
        ..CampaignConfig::default()
    }
}

#[test]
fn append_campaign_sweeps_crash_points() {
    let lab = CrashLab::new(CrashWorkload::Append {
        steps: 10,
        blocks_per_step: 3,
    });
    let report = lab.campaign(&cfg(budget(120)));
    println!("{}", report.summary());
    assert!(report.passed(), "{}", report.summary());
    assert_eq!(report.points_run, budget(120).min(report.points_enumerated));
    assert!(report.clean_points > 0, "no clean cuts ran");
    assert!(report.torn_points > 0, "no mid-write tears ran");
    assert!(report.reorder_points > 0, "no reorder cuts ran");
}

#[test]
fn overwrite_campaign_sweeps_crash_points() {
    let lab = CrashLab::new(CrashWorkload::Overwrite {
        steps: 8,
        region_blocks: 12,
    });
    let report = lab.campaign(&cfg(budget(100)));
    println!("{}", report.summary());
    assert!(report.passed(), "{}", report.summary());
    assert_eq!(report.points_run, budget(100).min(report.points_enumerated));
    assert!(report.clean_points > 0 && report.torn_points > 0);
}

#[test]
fn combined_sweep_meets_acceptance_budget() {
    // ≥ 200 distinct crash points across the two workloads (the ISSUE
    // acceptance floor). Skipped under a CI smoke budget.
    if std::env::var("BYPASSD_CAMPAIGN_POINTS").is_ok() {
        return;
    }
    let append = CrashLab::new(CrashWorkload::Append {
        steps: 10,
        blocks_per_step: 3,
    })
    .campaign(&cfg(120));
    let overwrite = CrashLab::new(CrashWorkload::Overwrite {
        steps: 8,
        region_blocks: 12,
    })
    .campaign(&cfg(100));
    assert!(append.passed(), "{}", append.summary());
    assert!(overwrite.passed(), "{}", overwrite.summary());
    assert!(
        append.points_run + overwrite.points_run >= 200,
        "only {} + {} crash points swept",
        append.points_run,
        overwrite.points_run
    );
}

#[test]
fn campaign_is_bit_reproducible_end_to_end() {
    let c = cfg(24);
    let run = || {
        CrashLab::new(CrashWorkload::Append {
            steps: 4,
            blocks_per_step: 2,
        })
        .campaign(&c)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.fingerprint, b.fingerprint, "campaign is not reproducible");
    assert_eq!(a.summary(), b.summary());
    // A different seed explores a different point set.
    let other = CrashLab::new(CrashWorkload::Append {
        steps: 4,
        blocks_per_step: 2,
    })
    .campaign(&CampaignConfig {
        seed: 0xD15EA5E,
        ..c
    });
    assert_ne!(a.fingerprint, other.fingerprint);
}

#[test]
fn broken_recovery_trusting_torn_commits_is_caught() {
    // Mutation test: recovery with journal-checksum validation disabled
    // applies transactions whose journaled blocks were lost by a
    // reorder/at-barrier cut (the async-commit scenario the checksum
    // exists for). The campaign must catch that broken recovery.
    let mut lab = CrashLab::new(CrashWorkload::Append {
        steps: 10,
        blocks_per_step: 3,
    });
    lab.set_validate_journal_checksums(false);
    let report = lab.campaign(&cfg(budget(120)));
    println!("{}", report.summary());
    assert!(
        !report.passed(),
        "checksum-free recovery survived the sweep — the campaign has no teeth"
    );
    // Shrinking still produces actionable reproducers (or the point is
    // already minimal).
    assert!(report
        .failures
        .iter()
        .all(|f| f.shrunk.is_some() || !f.error.is_empty()));
}

#[test]
fn transient_media_errors_are_retried_transparently() {
    let plane = Arc::new(FaultPlane::new());
    let sys = System::builder()
        .capacity(1 << 30)
        .fault_plane(Arc::clone(&plane))
        .build();
    sys.fs().populate("/media", 64 * 4096, 0x5C).unwrap();
    // First timed read and first timed write each fail once.
    plane.fail_reads(vec![0]);
    plane.fail_writes(vec![0]);
    let p = Arc::clone(&plane);
    let sim = Simulation::new();
    sim.spawn("app", move |ctx| {
        let proc = UserProcess::start(&sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/media", true).unwrap();
        let mut buf = vec![0u8; 4096];
        // The transient read error is retried in place: success.
        assert_eq!(t.pread(ctx, fd, &mut buf, 0).unwrap(), 4096);
        assert!(buf.iter().all(|&b| b == 0x5C));
        // Same for the direct overwrite.
        assert_eq!(t.pwrite(ctx, fd, &[0x77; 4096], 0).unwrap(), 4096);
        assert_eq!(t.pread(ctx, fd, &mut buf, 0).unwrap(), 4096);
        assert!(buf.iter().all(|&b| b == 0x77));
        let stats = p.stats();
        assert_eq!(stats.read_errors, 1, "injected read error never fired");
        assert_eq!(stats.write_errors, 1, "injected write error never fired");
    });
    sim.run();
}

#[test]
fn persistent_media_errors_surface_as_eio() {
    let plane = Arc::new(FaultPlane::new());
    let sys = System::builder()
        .capacity(1 << 30)
        .fault_plane(Arc::clone(&plane))
        .build();
    sys.fs().populate("/dying", 16 * 4096, 0x42).unwrap();
    // Every read attempt fails: retries exhaust and EIO surfaces.
    plane.fail_reads((0..64).collect());
    let sim = Simulation::new();
    sim.spawn("app", move |ctx| {
        let proc = UserProcess::start(&sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/dying", false).unwrap();
        let mut buf = vec![0u8; 4096];
        assert_eq!(t.pread(ctx, fd, &mut buf, 0), Err(Errno::Io));
    });
    sim.run();
}

#[test]
fn dropped_completion_is_recovered_by_resubmission() {
    let plane = Arc::new(FaultPlane::new());
    let sys = System::builder()
        .capacity(1 << 30)
        .fault_plane(Arc::clone(&plane))
        .build();
    sys.fs().populate("/lossy", 64 * 4096, 0).unwrap();
    for b in 0..8u64 {
        let (segs, _) = sys
            .fs()
            .resolve(sys.fs().lookup("/lossy").unwrap(), b * 4096, 4096)
            .unwrap();
        sys.device()
            .write_raw(segs[0].0.unwrap(), &[b as u8 + 1; 4096]);
    }
    // Swallow the first queue completion after arming.
    plane.drop_completions(vec![0]);
    let p = Arc::clone(&plane);
    let sim = Simulation::new();
    sim.spawn("app", move |ctx| {
        let proc = UserProcess::start(&sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/lossy", false).unwrap();
        // Batched flight: one CQ entry is lost mid-flight; the flight
        // must re-issue that request and still return correct data.
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; 4096]; 8];
        let mut reqs: Vec<bypassd::ReadReq> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| bypassd::ReadReq {
                offset: i as u64 * 4096,
                buf: b.as_mut_slice(),
            })
            .collect();
        let n = t.pread_batch(ctx, fd, &mut reqs).unwrap();
        assert_eq!(n, 8 * 4096);
        drop(reqs);
        for (i, b) in bufs.iter().enumerate() {
            assert!(
                b.iter().all(|&x| x == i as u8 + 1),
                "lost-completion read {i} returned wrong data"
            );
        }
        assert_eq!(p.stats().completions_dropped, 1, "drop never fired");
    });
    sim.run();
}
