//! Tests for the §5 enhancement features: non-blocking writes (§5.1)
//! and container mount namespaces (§5.2).

use std::sync::Arc;

use bypassd::{System, UserProcess};
use bypassd_os::Errno;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use parking_lot::Mutex;

fn system() -> System {
    System::builder().capacity(2 << 30).build()
}

fn run<T: Send + 'static>(
    sys: &System,
    f: impl FnOnce(&mut bypassd_sim::ActorCtx, &System) -> T + Send + 'static,
) -> T {
    let sim = Simulation::new();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let s2 = sys.clone();
    sim.spawn("t", move |ctx| {
        *o2.lock() = Some(f(ctx, &s2));
    });
    sim.run();
    let mut g = out.lock();
    g.take().unwrap()
}

// ---- non-blocking writes (§5.1) ----

#[test]
fn async_write_returns_before_device_completion() {
    let sys = system();
    sys.fs().populate("/nb", 1 << 20, 0).unwrap();
    let (sync_t, async_t) = run(&sys, |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/nb", true).unwrap();
        let data = vec![1u8; 4096];
        let t0 = ctx.now();
        t.pwrite(ctx, fd, &data, 0).unwrap();
        let sync_t = ctx.now() - t0;
        let t1 = ctx.now();
        t.pwrite_async(ctx, fd, &data, 4096).unwrap();
        let async_t = ctx.now() - t1;
        assert_eq!(t.pending_write_count(fd), 1);
        t.flush_writes(ctx, fd).unwrap();
        assert_eq!(t.pending_write_count(fd), 0);
        (sync_t, async_t)
    });
    // Sync pays the ~4.4µs device write; async returns after submit+copy.
    assert!(
        async_t < sync_t / 3,
        "async write ({async_t}) should not wait for the device (sync {sync_t})"
    );
    assert!(async_t < Nanos(2_000), "async write took {async_t}");
}

#[test]
fn read_after_async_write_sees_new_data() {
    let sys = system();
    sys.fs().populate("/raw", 64 * 1024, 0x11).unwrap();
    run(&sys, |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/raw", true).unwrap();
        t.pwrite_async(ctx, fd, &vec![0xEEu8; 4096], 8192).unwrap();
        // Immediately read back — before the device confirmed the write.
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 8192).unwrap();
        assert!(
            buf.iter().all(|&b| b == 0xEE),
            "read-after-write must see unconfirmed data (§5.1)"
        );
        // Partial overlap too.
        let mut buf2 = vec![0u8; 8192];
        t.pread(ctx, fd, &mut buf2, 4096).unwrap();
        assert!(buf2[..4096].iter().all(|&b| b == 0x11));
        assert!(buf2[4096..].iter().all(|&b| b == 0xEE));
    });
}

#[test]
fn async_writes_durable_after_fsync() {
    let sys = system();
    sys.fs().populate("/dur", 256 * 1024, 0).unwrap();
    run(&sys, |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/dur", true).unwrap();
        for i in 0..16u64 {
            t.pwrite_async(ctx, fd, &vec![(i + 1) as u8; 4096], i * 4096)
                .unwrap();
        }
        t.fsync(ctx, fd).unwrap();
        assert_eq!(t.pending_write_count(fd), 0);
        // Verify on the raw device (durability, not just the overlay).
        let ino = sys.fs().lookup("/dur").unwrap();
        let (segs, _) = sys.fs().resolve(ino, 0, 16 * 4096).unwrap();
        let mut pos = 0u64;
        let mut buf = vec![0u8; 4096];
        for (lba, len) in segs {
            let mut cur = lba.unwrap();
            let mut left = len;
            while left > 0 {
                sys.device().read_raw(cur, &mut buf);
                let want = (pos / 4096 + 1) as u8;
                assert!(
                    buf.iter().all(|&b| b == want),
                    "block {} not durable",
                    pos / 4096
                );
                cur = bypassd_hw::types::Lba(cur.0 + 8);
                pos += 4096;
                left -= 4096;
            }
        }
    });
}

#[test]
fn overlapping_async_writes_serialise() {
    let sys = system();
    sys.fs().populate("/ser", 64 * 1024, 0).unwrap();
    run(&sys, |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/ser", true).unwrap();
        // Two overlapping async writes: the second must wait for (flush)
        // the first, so the final content is the second write's.
        t.pwrite_async(ctx, fd, &vec![0xAAu8; 8192], 0).unwrap();
        t.pwrite_async(ctx, fd, &vec![0xBBu8; 4096], 4096).unwrap();
        t.flush_writes(ctx, fd).unwrap();
        let mut buf = vec![0u8; 8192];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        assert!(buf[..4096].iter().all(|&b| b == 0xAA));
        assert!(buf[4096..].iter().all(|&b| b == 0xBB));
    });
}

#[test]
fn async_write_throughput_beats_sync() {
    let sys = system();
    sys.fs().populate("/tp", 4 << 20, 0).unwrap();
    let (sync_total, async_total) = run(&sys, |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/tp", true).unwrap();
        let data = vec![3u8; 4096];
        let t0 = ctx.now();
        for i in 0..64u64 {
            t.pwrite(ctx, fd, &data, i * 4096).unwrap();
        }
        let sync_total = ctx.now() - t0;
        let t1 = ctx.now();
        for i in 64..128u64 {
            t.pwrite_async(ctx, fd, &data, i * 4096).unwrap();
        }
        t.flush_writes(ctx, fd).unwrap();
        let async_total = ctx.now() - t1;
        (sync_total, async_total)
    });
    assert!(
        async_total < sync_total * 2 / 3,
        "async batch ({async_total}) should overlap device time (sync {sync_total})"
    );
}

#[test]
fn async_write_falls_back_for_appends_and_unaligned() {
    let sys = system();
    sys.fs().populate("/fb", 8192, 0).unwrap();
    run(&sys, |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/fb", true).unwrap();
        // Append: falls back to the kernel path but still succeeds.
        assert_eq!(
            t.pwrite_async(ctx, fd, &vec![5u8; 4096], 8192).unwrap(),
            4096
        );
        assert_eq!(t.size(fd).unwrap(), 12288);
        // Unaligned: routed through the serialised RMW path.
        assert_eq!(t.pwrite_async(ctx, fd, &[9u8; 100], 50).unwrap(), 100);
        let mut buf = vec![0u8; 512];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        assert!(buf[50..150].iter().all(|&b| b == 9));
        assert_eq!(t.pending_write_count(fd), 0, "fallbacks must not pend");
    });
}

// ---- containers (§5.2) ----

#[test]
fn containers_get_isolated_namespaces() {
    let sys = system();
    let fs = sys.fs();
    fs.mkdir("/ctr-a", 0o777, 0, 0).unwrap();
    fs.mkdir("/ctr-b", 0o777, 0, 0).unwrap();
    fs.populate("/host-secret.dat", 4096, 0x51).unwrap();
    run(&sys, |ctx, sys| {
        let a = UserProcess::start_in(sys, 1000, 1000, "/ctr-a").unwrap();
        let b = UserProcess::start_in(sys, 1000, 1000, "/ctr-b").unwrap();
        let mut ta = a.thread();
        let mut tb = b.thread();
        // Same path, different namespaces → different files.
        let fa = ta.open_with(ctx, "/data.db", true, true).unwrap();
        let fb = tb.open_with(ctx, "/data.db", true, true).unwrap();
        ta.pwrite(ctx, fa, &vec![0xAA; 4096], 0).unwrap();
        tb.pwrite(ctx, fb, &vec![0xBB; 4096], 0).unwrap();
        let mut buf = vec![0u8; 4096];
        ta.pread(ctx, fa, &mut buf, 0).unwrap();
        assert!(buf.iter().all(|&x| x == 0xAA), "container A sees B's data");
        tb.pread(ctx, fb, &mut buf, 0).unwrap();
        assert!(buf.iter().all(|&x| x == 0xBB), "container B sees A's data");
        // The host sees them at their real paths.
        assert!(sys.fs().lookup("/ctr-a/data.db").is_ok());
        assert!(sys.fs().lookup("/ctr-b/data.db").is_ok());
        // A container cannot name host files…
        assert_eq!(
            ta.open(ctx, "/host-secret.dat", false).unwrap_err(),
            Errno::NoEnt
        );
        // …and cannot escape with dot-dot (rejected as invalid).
        assert_eq!(
            ta.open(ctx, "/../host-secret.dat", false).unwrap_err(),
            Errno::Inval
        );
    });
}

#[test]
fn bypassd_direct_path_works_inside_container() {
    // §5.2: "BypassD works readily with containers" — direct I/O, not
    // fallback, from a namespaced process.
    let sys = system();
    sys.fs().mkdir("/ctr", 0o777, 0, 0).unwrap();
    sys.fs().populate("/ctr/file", 1 << 20, 0x42).unwrap();
    run(&sys, |ctx, sys| {
        let proc = UserProcess::start_in(sys, 1000, 1000, "/ctr").unwrap();
        let mut t = proc.thread();
        let fd = t.open(ctx, "/file", false).unwrap();
        let mut buf = vec![0u8; 4096];
        t.pread(ctx, fd, &mut buf, 0).unwrap();
        assert!(buf.iter().all(|&b| b == 0x42));
        let (direct, fallback) = proc.op_counts();
        assert_eq!((direct, fallback), (1, 0), "container I/O must be direct");
    });
}

#[test]
fn two_containers_share_the_device_fairly() {
    let sys = system();
    sys.fs().mkdir("/c1", 0o777, 0, 0).unwrap();
    sys.fs().mkdir("/c2", 0o777, 0, 0).unwrap();
    sys.fs().populate("/c1/f", 16 << 20, 1).unwrap();
    sys.fs().populate("/c2/f", 16 << 20, 2).unwrap();
    let counts: Arc<Mutex<Vec<(String, Nanos)>>> = Arc::new(Mutex::new(Vec::new()));
    let sim = Simulation::new();
    for root in ["/c1", "/c2"] {
        let sys2 = sys.clone();
        let c2 = Arc::clone(&counts);
        sim.spawn(root, move |ctx| {
            let proc = UserProcess::start_in(&sys2, 1000, 1000, root).unwrap();
            let mut t = proc.thread();
            let fd = t.open(ctx, "/f", false).unwrap();
            let mut buf = vec![0u8; 4096];
            let t0 = ctx.now();
            let mut rng = bypassd_sim::rng::Rng::new(root.len() as u64);
            for _ in 0..200 {
                let off = rng.gen_range(4000) * 4096;
                t.pread(ctx, fd, &mut buf, off).unwrap();
            }
            c2.lock().push((root.to_string(), ctx.now() - t0));
        });
    }
    sim.run();
    let counts = counts.lock();
    let a = counts[0].1.as_nanos() as f64;
    let b = counts[1].1.as_nanos() as f64;
    assert!(
        (a / b - 1.0).abs() < 0.2,
        "containers should share fairly: {a} vs {b}"
    );
}

#[test]
fn container_root_must_be_a_directory() {
    let sys = system();
    sys.fs().populate("/notadir", 4096, 0).unwrap();
    assert!(UserProcess::start_in(&sys, 0, 0, "/missing").is_err());
    assert_eq!(
        UserProcess::start_in(&sys, 0, 0, "/notadir").unwrap_err(),
        Errno::NotDir
    );
}
