//! Property-based tests of the core data structures' invariants.

use proptest::prelude::*;

use bypassd_ext4::alloc::BlockAllocator;
use bypassd_ext4::extent::ExtentTree;
use bypassd_ext4::layout::{DiskInode, Extent, Superblock, BLOCK_SIZE, SB_MAGIC};
use bypassd_hw::pte::Pte;
use bypassd_hw::types::{DevId, Lba, SECTORS_PER_PAGE};
use bypassd_sim::rng::{Rng, Zipfian};
use bypassd_sim::time::Nanos;
use bypassd_ssd::store::SectorStore;
use bypassd_trace::Histogram;

proptest! {
    /// FTE encode/decode roundtrips for every LBA/DevID/permission combo.
    #[test]
    fn fte_roundtrip(block in 0u64..(1 << 36), dev in 0u16..1024, writable: bool) {
        let lba = Lba(block * SECTORS_PER_PAGE);
        let e = Pte::fte(lba, DevId(dev), writable);
        prop_assert!(e.present());
        prop_assert!(e.is_fte());
        prop_assert_eq!(e.lba(), lba);
        prop_assert_eq!(e.dev_id(), DevId(dev));
        prop_assert_eq!(e.writable(), writable);
    }

    /// The sector store behaves like a flat byte array.
    #[test]
    fn sector_store_matches_model(
        ops in prop::collection::vec(
            (0u64..64, 1usize..8, 0u8..255),
            1..40
        )
    ) {
        let mut store = SectorStore::new(1024);
        let mut model = vec![0u8; 1024 * 512];
        for (sector, nsec, val) in ops {
            let n = nsec.min((1024 - sector as usize).max(1));
            let data = vec![val; n * 512];
            store.write(Lba(sector), &data);
            let s = sector as usize * 512;
            model[s..s + n * 512].copy_from_slice(&data);
            // Random verification read.
            let mut buf = vec![0u8; n * 512];
            store.read(Lba(sector), &mut buf);
            prop_assert_eq!(&buf, &model[s..s + n * 512]);
        }
    }

    /// The allocator never double-allocates and conserves free counts.
    #[test]
    fn allocator_conserves_blocks(
        ops in prop::collection::vec((1u64..128, any::<bool>()), 1..60)
    ) {
        let mut a = BlockAllocator::new(4096, 64);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let total_free = a.free_blocks();
        for (want, free_one) in ops {
            if free_one && !live.is_empty() {
                let (s, l) = live.swap_remove(0);
                a.free_run(s, l);
            } else if let Some(run) = a.alloc(want) {
                // No overlap with any live run.
                for (s, l) in &live {
                    prop_assert!(
                        run.start + run.len <= *s || s + l <= run.start,
                        "overlap: [{}, {}) vs [{}, {})", run.start, run.len, s, l
                    );
                }
                live.push((run.start, run.len));
            }
            let live_total: u64 = live.iter().map(|(_, l)| l).sum();
            prop_assert_eq!(a.free_blocks() + live_total, total_free);
        }
    }

    /// Extent trees resolve exactly like a naive block map.
    #[test]
    fn extent_tree_matches_block_map(
        runs in prop::collection::vec((0u64..64u64, 1u32..8), 1..12)
    ) {
        let mut tree = ExtentTree::new();
        let mut map = std::collections::HashMap::new();
        let mut next_pb = 1000u64;
        for (fb, len) in runs {
            // Skip overlapping inserts (the FS never produces them).
            if (fb..fb + len as u64).any(|b| map.contains_key(&b)) {
                continue;
            }
            tree.insert(Extent { file_block: fb, start_block: next_pb, len });
            for i in 0..len as u64 {
                map.insert(fb + i, next_pb + i);
            }
            next_pb += len as u64 + 3; // gap: avoid accidental merging
        }
        for fb in 0..80u64 {
            let expect = map.get(&fb).map(|pb| Lba::from_block(*pb));
            prop_assert_eq!(tree.lba_of(fb), expect, "file block {}", fb);
        }
    }

    /// Truncate frees exactly the blocks past the cut.
    #[test]
    fn extent_truncate_frees_the_tail(cut in 0u64..100) {
        let mut tree = ExtentTree::new();
        tree.insert(Extent { file_block: 0, start_block: 500, len: 50 });
        tree.insert(Extent { file_block: 60, start_block: 900, len: 40 });
        let before: u64 = tree.iter().map(|e| e.len as u64).sum();
        let freed: u64 = tree.truncate(cut).iter().map(|(_, l)| l).sum();
        let after: u64 = tree.iter().map(|e| e.len as u64).sum();
        prop_assert_eq!(before, after + freed);
        prop_assert!(tree.end_block() <= cut || after == 0 || tree.end_block() <= cut);
        for fb in cut..110 {
            prop_assert_eq!(tree.lba_of(fb), None);
        }
    }

    /// Histogram percentiles are monotone and bounded by min/max.
    #[test]
    fn histogram_percentiles_monotone(
        values in prop::collection::vec(1u64..10_000_000, 1..200)
    ) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(Nanos(*v));
        }
        let quantiles = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        let mut last = Nanos::ZERO;
        for q in quantiles {
            let p = h.percentile(q);
            prop_assert!(p >= last, "percentile not monotone at {}", q);
            prop_assert!(p >= h.min() && p <= h.max());
            last = p;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Zipfian samples stay in range for arbitrary sizes and seeds.
    #[test]
    fn zipfian_in_range(n in 1u64..5_000_000, seed: u64) {
        let z = Zipfian::new(n, 0.99);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.next(&mut rng) < n);
        }
    }

    /// On-disk inode serialisation roundtrips.
    #[test]
    fn inode_roundtrip(
        mode in any::<u16>(),
        uid in any::<u32>(),
        size in any::<u64>(),
        n_ext in 0usize..8
    ) {
        let mut ino = DiskInode::new(mode, uid, uid ^ 7);
        ino.size = size;
        for i in 0..n_ext {
            ino.inline.push(Extent {
                file_block: i as u64 * 100,
                start_block: 5000 + i as u64,
                len: 10,
            });
        }
        let enc = ino.encode();
        prop_assert_eq!(DiskInode::decode(&enc), ino);
    }

    /// Superblock roundtrips for arbitrary geometry.
    #[test]
    fn superblock_roundtrip(blocks in 1u64..1 << 40, max_ino in 0u64..1 << 30) {
        let sb = Superblock {
            magic: SB_MAGIC,
            blocks,
            journal_start: 1,
            journal_blocks: 1024,
            bitmap_start: 1025,
            bitmap_blocks: blocks.div_ceil(8 * BLOCK_SIZE),
            itable_start: 2000,
            itable_blocks: 1024,
            data_start: 3024,
            max_ino,
        };
        prop_assert_eq!(Superblock::decode(&sb.encode()), Some(sb));
    }

    /// The deterministic RNG's range reduction is uniform-ish and in
    /// bounds for any bound.
    #[test]
    fn rng_gen_range_in_bounds(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = Rng::new(seed);
        for _ in 0..20 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }
}
