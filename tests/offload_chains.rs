//! End-to-end contracts for the offload engine (§offload): one
//! submission per chain, identical results across engines, and
//! bit-identical virtual time across runs.

use std::sync::Arc;

use parking_lot::Mutex;

use bypassd::{System, TraceConfig, UserProcess};
use bypassd_backends::{make_factory, BackendKind};
use bypassd_kv::{BpfKv, BpfKvConfig};
use bypassd_sim::{Nanos, Simulation};

fn run<T: Send + 'static>(
    sys: &System,
    f: impl FnOnce(&mut bypassd_sim::ActorCtx, &System) -> T + Send + 'static,
) -> T {
    let sim = Simulation::new();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    let s2 = sys.clone();
    sim.spawn("t", move |ctx| {
        *o2.lock() = Some(f(ctx, &s2));
    });
    sim.run();
    let mut g = out.lock();
    g.take().unwrap()
}

fn store(sys: &System, file: &str) -> Arc<BpfKv> {
    let kv = BpfKv::build(sys, BpfKvConfig::new(file, 4096)).unwrap();
    assert_eq!(kv.ios_per_lookup(), 7, "6-level index + data");
    Arc::new(kv)
}

/// The headline contract: a 6-level BPF-KV point lookup through
/// BypassD+offload is **one** UserLib submission (one op record) whose
/// chain the device walks itself (seven per-hop device records), while
/// plain BypassD issues seven top-level submissions for the same key.
#[test]
fn offload_lookup_is_one_submission_vs_seven() {
    let sys = System::builder().trace(TraceConfig::on()).build();
    let kv = store(&sys, "/bpfkv");

    for (kind, want_ops) in [(BackendKind::BypassdOffload, 1), (BackendKind::Bypassd, 7)] {
        let factory = make_factory(kind, &sys, 0, 0);
        let kv2 = Arc::clone(&kv);
        let value = run(&sys, move |ctx, sys| {
            let mut b = factory.make_thread();
            let h = b.open(ctx, kv2.file(), false).unwrap();
            let prog = b.prog_load(ctx, &kv2.lookup_ops()).unwrap();
            sys.recorder().take_ops(); // drain open/load records
            sys.recorder().take_device();
            let v = kv2.get_offload(ctx, &mut *b, h, &prog, 1234).unwrap();
            let ops = sys.recorder().take_ops();
            let device = sys.recorder().take_device();
            assert_eq!(
                ops.len(),
                want_ops,
                "{kind}: a 7-hop lookup must be {want_ops} UserLib submission(s)"
            );
            assert_eq!(
                device.len(),
                7,
                "{kind}: the device still performs all seven dependent reads"
            );
            assert!(ops.iter().all(|op| op.faults == 0));
            v
        });
        // The store fills value byte i with (key + i).
        assert!(value
            .iter()
            .enumerate()
            .all(|(i, &b)| b == (1234 + i) as u8));
    }
}

/// The same IR program produces identical values on every engine: the
/// device (BypassD+offload), the kernel hook (XRP), and host-side
/// interpretation (plain BypassD and io_uring).
#[test]
fn offload_value_identical_across_engines() {
    let sys = System::builder().build();
    let kv = store(&sys, "/bpfkv");
    let keys = [0u64, 1, 7, 8, 63, 64, 511, 512, 4095];

    let mut per_kind = Vec::new();
    for kind in [
        BackendKind::BypassdOffload,
        BackendKind::Xrp,
        BackendKind::Bypassd,
        BackendKind::IoUring,
    ] {
        let factory = make_factory(kind, &sys, 0, 0);
        let kv2 = Arc::clone(&kv);
        let values = run(&sys, move |ctx, _| {
            let mut b = factory.make_thread();
            let h = b.open(ctx, kv2.file(), false).unwrap();
            let prog = b.prog_load(ctx, &kv2.lookup_ops()).unwrap();
            keys.map(|k| kv2.get_offload(ctx, &mut *b, h, &prog, k).unwrap())
        });
        for (k, v) in keys.iter().zip(values.iter()) {
            assert!(
                v.iter()
                    .enumerate()
                    .all(|(i, &b)| b == (*k as usize + i) as u8),
                "{kind}: wrong object for key {k}"
            );
        }
        per_kind.push((kind, values));
    }
    let (_, reference) = &per_kind[0];
    for (kind, values) in &per_kind[1..] {
        assert_eq!(values, reference, "{kind} diverged from the device engine");
    }
}

/// Charged in virtual time only (no wall clock anywhere in the
/// interpreter), the offloaded path is bit-identical across runs.
#[test]
fn offload_virtual_time_is_deterministic() {
    let one_run = || {
        let sys = System::builder().build();
        let kv = store(&sys, "/bpfkv");
        let factory = make_factory(BackendKind::BypassdOffload, &sys, 0, 0);
        run(&sys, move |ctx, _| {
            let mut b = factory.make_thread();
            let h = b.open(ctx, kv.file(), false).unwrap();
            let prog = b.prog_load(ctx, &kv.lookup_ops()).unwrap();
            let mut sum = 0u64;
            for k in (0..4096u64).step_by(17) {
                let v = kv.get_offload(ctx, &mut *b, h, &prog, k).unwrap();
                sum = sum.wrapping_add(u64::from_le_bytes(v[..8].try_into().unwrap()));
            }
            (ctx.now(), sum)
        })
    };
    let (t1, s1): (Nanos, u64) = one_run();
    let (t2, s2) = one_run();
    assert_eq!(s1, s2, "lookup results must be identical");
    assert_eq!(t1, t2, "virtual time must be bit-identical across runs");
}

/// Batched chains: many lookups in flight per thread through
/// `pread_chain_batch`, overlapping chains across the device's channels
/// — results identical to one-at-a-time chains.
#[test]
fn batched_chains_match_sequential_chains() {
    use bypassd::ChainReq;
    let sys = System::builder().build();
    let kv = store(&sys, "/bpfkv");
    let kv2 = Arc::clone(&kv);
    run(&sys, move |ctx, sys| {
        let proc = UserProcess::start(sys, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, kv2.file(), false).unwrap();
        let kernel = sys.kernel();
        let handle = kernel
            .sys_prog_load(ctx, proc.pid(), kv2.lookup_ops())
            .unwrap();
        let keys: Vec<u64> = (0..64u64).map(|i| i * 61 % 4096).collect();
        let mut bufs: Vec<Vec<u8>> = (0..keys.len()).map(|_| vec![0u8; 512]).collect();
        {
            let mut reqs: Vec<ChainReq<'_>> = bufs
                .iter_mut()
                .zip(keys.iter())
                .map(|(buf, &k)| {
                    let mut regs = [0u64; bypassd_offload::NUM_REGS];
                    regs[0] = k;
                    regs[1] = 6;
                    ChainReq {
                        start: 0,
                        regs,
                        buf,
                    }
                })
                .collect();
            let n = t.pread_chain_batch(ctx, fd, handle, &mut reqs).unwrap();
            assert_eq!(n, keys.len() * 512);
        }
        let mut seq = vec![0u8; 512];
        for (i, &k) in keys.iter().enumerate() {
            let mut regs = [0u64; bypassd_offload::NUM_REGS];
            regs[0] = k;
            regs[1] = 6;
            t.pread_chain(ctx, fd, handle, regs, 0, &mut seq).unwrap();
            assert_eq!(&bufs[i], &seq, "batched chain {i} (key {k}) diverged");
            assert_eq!(u64::from_le_bytes(seq[..8].try_into().unwrap()), k);
        }
        let (_, fallback) = proc.op_counts();
        assert_eq!(fallback, 0, "all chains ran on the device engine");
        t.close(ctx, fd).unwrap();
    });
}
