//! Regression tests for the arbiter-determinism fix found by the R5
//! taint pass: `QosArbiter` iterated its tenant table as a `HashMap`,
//! and `active_weight` / `snapshot` / `totals` results flow into
//! admission arrivals, `Nanos` delays and (through the fleet report)
//! FNV fingerprints. The table is a `BTreeMap` now; these tests pin the
//! observable contract so the container type cannot silently regress.

use bypassd_hw::types::Pasid;
use bypassd_qos::{QosArbiter, QosConfig, Tenant, TenantShare};
use bypassd_sim::rng::Fnv64;
use bypassd_sim::time::Nanos;

fn tenants() -> Vec<(Tenant, TenantShare)> {
    vec![
        (Tenant::Kernel, TenantShare::weight(2)),
        (Tenant::User(Pasid(7)), TenantShare::weight(1)),
        (Tenant::User(Pasid(3)), TenantShare::weight(4)),
        (Tenant::User(Pasid(21)), TenantShare::weight(1)),
    ]
}

/// Drives a fixed workload and folds every admission decision and the
/// final snapshot into one FNV-64 digest.
fn run_fingerprint(registration_order: &[usize]) -> u64 {
    let mut arb = QosArbiter::new(QosConfig::enabled(), 4);
    let ts = tenants();
    for &i in registration_order {
        let (t, s) = ts[i];
        arb.register(t, s);
    }
    let mut h = Fnv64::new();
    for round in 0u64..32 {
        for (t, _) in &ts {
            let a = arb.admit(*t, Nanos(round * 1_000), Nanos(2_500), 4096);
            h.write_u64(a.arrival.0);
            h.write_u64(u64::from(a.throttled) << 1 | u64::from(a.deferred));
        }
    }
    for (t, stats) in arb.snapshot() {
        h.write(t.to_string().as_bytes());
        h.write_u64(stats.submitted);
        h.write_u64(stats.throttled);
        h.write_u64(stats.deferred);
    }
    let (throttled, deferred) = arb.totals();
    h.write_u64(throttled);
    h.write_u64(deferred);
    h.write_u64(arb.horizon().0);
    h.finish()
}

/// Registration order must not leak into any arbiter-derived value.
/// Under the old `HashMap` table this held only by accident of the
/// hasher; the ordered table makes it a structural guarantee.
#[test]
fn fingerprint_is_invariant_under_registration_order() {
    let a = run_fingerprint(&[0, 1, 2, 3]);
    let b = run_fingerprint(&[3, 2, 1, 0]);
    let c = run_fingerprint(&[2, 0, 3, 1]);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

/// The exact digest, pinned. If this changes, either the admission
/// math changed on purpose (update the constant and say why in the
/// commit) or tenant-table iteration became order-dependent again.
#[test]
fn admission_fingerprint_is_pinned() {
    assert_eq!(run_fingerprint(&[0, 1, 2, 3]), 0x12FA_4B04_1752_5C29);
}

/// `snapshot()` reports tenants in `Tenant` order — the property the
/// fleet report's per-tenant sections rely on for bit-identical output.
#[test]
fn snapshot_order_is_sorted_by_tenant() {
    let mut arb = QosArbiter::new(QosConfig::enabled(), 2);
    for &i in &[2usize, 0, 3, 1] {
        let (t, s) = tenants()[i];
        arb.register(t, s);
        arb.admit(t, Nanos::ZERO, Nanos(1_000), 512);
    }
    let order: Vec<Tenant> = arb.snapshot().into_iter().map(|(t, _)| t).collect();
    assert_eq!(
        order,
        vec![
            Tenant::Kernel,
            Tenant::User(Pasid(3)),
            Tenant::User(Pasid(7)),
            Tenant::User(Pasid(21)),
        ]
    );
}
