//! Property tests for the DRR reference scheduler: no backlogged queue
//! is ever starved, and long-run byte shares converge to the configured
//! weights within 5%.

use bypassd_qos::DrrScheduler;
use proptest::prelude::*;

const QUANTUM: u64 = 65_536;
const MIN_REQ: u64 = 4_096;
const MAX_REQ: u64 = 65_536;

/// Runs `steps` dispatches with every tenant kept continuously
/// backlogged, returning (service order, bytes served per tenant).
fn run_backlogged(weights: &[u32], sizes: &[u64], steps: usize) -> (Vec<usize>, Vec<u64>) {
    let mut s: DrrScheduler<usize> = DrrScheduler::new(QUANTUM);
    for (t, &w) in weights.iter().enumerate() {
        s.register(t, w);
    }
    let mut next_size = {
        let mut i = 0usize;
        move || {
            let v = sizes[i % sizes.len()];
            i += 1;
            v
        }
    };
    // Seed two requests per tenant, refill after every dispatch so the
    // backlog never drains.
    for t in 0..weights.len() {
        for _ in 0..2 {
            s.enqueue(t, next_size(), ());
        }
    }
    let mut order = Vec::with_capacity(steps);
    let mut bytes = vec![0u64; weights.len()];
    for _ in 0..steps {
        let (t, b, ()) = s.dispatch().expect("queues are kept backlogged");
        order.push(t);
        bytes[t] += b;
        s.enqueue(t, next_size(), ());
    }
    (order, bytes)
}

proptest! {
    #[test]
    fn never_starves_a_backlogged_queue(
        weights in prop::collection::vec(1u32..=8, 2..6),
        sizes in prop::collection::vec(MIN_REQ..=MAX_REQ, 32..64),
    ) {
        let steps = 3_000;
        let (order, _) = run_backlogged(&weights, &sizes, steps);
        // Between consecutive services of tenant i, each other tenant j
        // can dispatch at most (quantum·w_j + max_req)/min_req requests
        // per visit, and i is visited once per rotation (quantum ≥
        // max_req, so every visit serves). That bounds the gap.
        for i in 0..weights.len() {
            let bound: u64 = 1 + weights
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &w)| (QUANTUM * u64::from(w) + MAX_REQ).div_ceil(MIN_REQ))
                .sum::<u64>();
            let mut last = 0usize;
            let mut max_gap = 0usize;
            let mut seen = false;
            for (pos, &t) in order.iter().enumerate() {
                if t == i {
                    max_gap = max_gap.max(pos - last);
                    last = pos;
                    seen = true;
                }
            }
            prop_assert!(seen, "tenant {i} (weights {weights:?}) never served");
            prop_assert!(
                (max_gap as u64) <= bound,
                "tenant {i} starved: gap {max_gap} > bound {bound} (weights {weights:?})"
            );
        }
    }

    #[test]
    fn byte_shares_converge_to_weights_within_5_percent(
        weights in prop::collection::vec(1u32..=8, 2..6),
        sizes in prop::collection::vec(MIN_REQ..=MAX_REQ, 32..64),
    ) {
        let steps = 20_000;
        let (_, bytes) = run_backlogged(&weights, &sizes, steps);
        let total: u64 = bytes.iter().sum();
        let weight_sum: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        for (i, &b) in bytes.iter().enumerate() {
            let measured = b as f64 / total as f64;
            let expected = u64::from(weights[i]) as f64 / weight_sum as f64;
            let err = (measured / expected - 1.0).abs();
            prop_assert!(
                err <= 0.05,
                "tenant {i}: share {measured:.4} vs expected {expected:.4} \
                 (err {err:.3}, weights {weights:?})"
            );
        }
    }
}
