//! Token buckets in virtual time.
//!
//! Unlike a wall-clock bucket there is no background refill: tokens
//! accrue lazily from the virtual-time delta since the last reservation.
//! `reserve()` never rejects — it returns the earliest virtual time at
//! which the request conforms, letting the device delay the command's
//! effective arrival instead of bouncing it (NVMe has no "try again
//! later" completion status worth modeling).

use bypassd_sim::time::Nanos;

use crate::config::RateLimit;

/// A single token bucket over virtual time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens per nanosecond.
    rate: f64,
    /// Capacity.
    burst: f64,
    /// Current level; may be negative while a reservation is being paid
    /// off (the debt defines the eligible time already handed out).
    level: f64,
    /// Virtual time of the last reservation.
    last: Nanos,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` tokens/s holding at most
    /// `burst` tokens, starting full.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        TokenBucket {
            rate: rate_per_sec as f64 / 1e9,
            burst: (burst.max(1)) as f64,
            level: (burst.max(1)) as f64,
            last: Nanos::ZERO,
        }
    }

    /// Reserves `cost` tokens at virtual time `now`, returning the
    /// earliest time the reservation conforms (`now` when tokens are
    /// available). Out-of-order arrivals across actors are clamped to
    /// the bucket's own clock so time never runs backwards.
    pub fn reserve(&mut self, now: Nanos, cost: u64) -> Nanos {
        let now = now.max(self.last);
        let elapsed = (now - self.last).as_nanos() as f64;
        self.level = (self.level + elapsed * self.rate).min(self.burst);
        self.last = now;
        self.level -= cost as f64;
        if self.level >= 0.0 {
            now
        } else {
            // The deficit is repaid at `rate`; the command conforms once
            // the level would return to zero.
            let wait = (-self.level / self.rate).ceil() as u64;
            now + Nanos(wait)
        }
    }

    /// Forgets absolute time (bucket refills to burst, clock to zero).
    /// Used when the device's virtual clock is reset between runs.
    pub fn reset(&mut self) {
        self.level = self.burst;
        self.last = Nanos::ZERO;
    }
}

/// Combined IOPS + bandwidth limiter for one tenant.
#[derive(Debug, Clone, Default)]
pub struct RateLimiter {
    ops: Option<TokenBucket>,
    bytes: Option<TokenBucket>,
}

impl RateLimiter {
    /// Builds the limiter a [`RateLimit`] describes; `None` if the limit
    /// constrains nothing.
    pub fn from_limit(limit: &RateLimit) -> Option<Self> {
        let ops = limit
            .iops
            .map(|r| TokenBucket::new(r, limit.burst_ops.max(1)));
        let bytes = limit
            .bytes_per_sec
            .map(|r| TokenBucket::new(r, limit.burst_bytes.max(4096)));
        if ops.is_none() && bytes.is_none() {
            return None;
        }
        Some(RateLimiter { ops, bytes })
    }

    /// Reserves one op of `len` bytes; returns the earliest conforming
    /// virtual time.
    pub fn reserve(&mut self, now: Nanos, len: u64) -> Nanos {
        let mut eligible = now;
        if let Some(b) = &mut self.ops {
            eligible = eligible.max(b.reserve(now, 1));
        }
        if let Some(b) = &mut self.bytes {
            eligible = eligible.max(b.reserve(now, len));
        }
        eligible
    }

    /// Resets both buckets' clocks.
    pub fn reset(&mut self) {
        if let Some(b) = &mut self.ops {
            b.reset();
        }
        if let Some(b) = &mut self.bytes {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_then_throttles() {
        // 1000 ops/s, burst 2: two free ops, then 1ms spacing.
        let mut b = TokenBucket::new(1000, 2);
        assert_eq!(b.reserve(Nanos::ZERO, 1), Nanos::ZERO);
        assert_eq!(b.reserve(Nanos::ZERO, 1), Nanos::ZERO);
        let third = b.reserve(Nanos::ZERO, 1);
        assert_eq!(third, Nanos::from_millis(1));
        let fourth = b.reserve(Nanos::ZERO, 1);
        assert_eq!(fourth, Nanos::from_millis(2));
    }

    #[test]
    fn tokens_accrue_with_virtual_time() {
        let mut b = TokenBucket::new(1000, 1);
        assert_eq!(b.reserve(Nanos::ZERO, 1), Nanos::ZERO);
        // 5ms later, 5 tokens accrued but capped at burst=1.
        assert_eq!(b.reserve(Nanos::from_millis(5), 1), Nanos::from_millis(5));
        let t = b.reserve(Nanos::from_millis(5), 1);
        assert_eq!(t, Nanos::from_millis(6));
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut b = TokenBucket::new(1000, 1);
        b.reserve(Nanos::from_millis(10), 1);
        // An out-of-order arrival is clamped to the bucket clock.
        let t = b.reserve(Nanos::from_millis(3), 1);
        assert!(t >= Nanos::from_millis(10));
    }

    #[test]
    fn byte_rate_spaces_by_size() {
        // 4 MB/s, burst 4 KB: one free 4 KB op, then ~1ms per 4 KB.
        let mut l = RateLimiter::from_limit(&RateLimit::bytes_per_sec(4 << 20)).unwrap();
        // Drain the burst.
        let burst = (4u64 << 20) / 10; // constructor default
        assert_eq!(l.reserve(Nanos::ZERO, burst), Nanos::ZERO);
        let t = l.reserve(Nanos::ZERO, 4096);
        let expect_ns = 4096.0 / (4.0 * 1024.0 * 1024.0) * 1e9;
        assert!((t.as_nanos() as f64 - expect_ns).abs() < 2.0, "t = {t}");
    }

    #[test]
    fn unlimited_limit_builds_nothing() {
        let none = RateLimit {
            iops: None,
            bytes_per_sec: None,
            burst_ops: 0,
            burst_bytes: 0,
        };
        assert!(RateLimiter::from_limit(&none).is_none());
    }

    #[test]
    fn reset_refills_and_rewinds() {
        let mut b = TokenBucket::new(1000, 1);
        b.reserve(Nanos::from_millis(50), 1);
        b.reserve(Nanos::from_millis(50), 1);
        b.reset();
        assert_eq!(b.reserve(Nanos::ZERO, 1), Nanos::ZERO);
    }
}
