//! Deficit round robin (Shreedhar & Varghese, SIGCOMM '95): the
//! reference weighted-fair scheduler for the QoS subsystem.
//!
//! Each backlogged tenant holds a deficit counter. Visiting a tenant
//! grants it `quantum × weight` bytes of credit; it then dispatches
//! head-of-line requests while the credit covers them, carrying any
//! remainder to its next visit (and forfeiting it when its queue
//! drains). One rotation of the active list serves every backlogged
//! tenant, which is the no-starvation guarantee, and long-run byte
//! throughput converges to the weight ratio — both verified by property
//! tests in `tests/drr_properties.rs`.
//!
//! The device arbiter (see [`crate::arbiter`]) enforces the same shares
//! under the simulator's eager completion model; this queue-based form
//! is the ground truth the share math is checked against, and is usable
//! directly by any host-side component that owns a real request queue.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

#[derive(Debug)]
struct TenantQueue<R> {
    weight: u32,
    deficit: u64,
    queue: VecDeque<(u64, R)>,
}

/// A deficit-round-robin scheduler over request cost in bytes, carrying
/// an opaque request payload `R`.
#[derive(Debug)]
pub struct DrrScheduler<T: Eq + Hash + Clone, R = ()> {
    quantum: u64,
    tenants: HashMap<T, TenantQueue<R>>,
    /// Backlogged tenants in service order; front is being served.
    active: VecDeque<T>,
    /// Whether the front tenant received its quantum for this visit.
    front_credited: bool,
}

impl<T: Eq + Hash + Clone, R> DrrScheduler<T, R> {
    /// A scheduler granting `quantum` bytes of credit per unit weight
    /// per round. For O(rounds) dispatch the quantum should be at least
    /// the largest request size.
    pub fn new(quantum: u64) -> Self {
        DrrScheduler {
            quantum: quantum.max(1),
            tenants: HashMap::new(),
            active: VecDeque::new(),
            front_credited: false,
        }
    }

    /// Registers (or re-weights) a tenant. Weights clamp to ≥ 1.
    pub fn register(&mut self, tenant: T, weight: u32) {
        let weight = weight.max(1);
        self.tenants
            .entry(tenant)
            .and_modify(|q| q.weight = weight)
            .or_insert(TenantQueue {
                weight,
                deficit: 0,
                queue: VecDeque::new(),
            });
    }

    /// Enqueues a request of `bytes` for `tenant` (auto-registers with
    /// weight 1).
    pub fn enqueue(&mut self, tenant: T, bytes: u64, payload: R) {
        if !self.tenants.contains_key(&tenant) {
            self.register(tenant.clone(), 1);
        }
        let q = self.tenants.get_mut(&tenant).expect("registered above");
        if q.queue.is_empty() {
            self.active.push_back(tenant);
        }
        q.queue.push_back((bytes, payload));
    }

    /// Dispatches the next request per DRR order, or `None` when every
    /// queue is empty.
    pub fn dispatch(&mut self) -> Option<(T, u64, R)> {
        loop {
            let tenant = self.active.front()?.clone();
            let q = self.tenants.get_mut(&tenant).expect("active ⊆ tenants");
            if !self.front_credited {
                q.deficit = q.deficit.saturating_add(self.quantum * u64::from(q.weight));
                self.front_credited = true;
            }
            let head = q.queue.front().expect("active queues are non-empty").0;
            if head <= q.deficit {
                q.deficit -= head;
                let (bytes, payload) = q.queue.pop_front().expect("checked above");
                if q.queue.is_empty() {
                    // Draining forfeits leftover credit (classic DRR):
                    // an idle tenant must not bank service.
                    q.deficit = 0;
                    self.active.pop_front();
                    self.front_credited = false;
                }
                return Some((tenant, bytes, payload));
            }
            // Insufficient credit: carry the deficit, move on.
            self.active.rotate_left(1);
            self.front_credited = false;
        }
    }

    /// Queued requests for `tenant`.
    pub fn backlog(&self, tenant: &T) -> usize {
        self.tenants.get(tenant).map_or(0, |q| q.queue.len())
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo() {
        let mut s: DrrScheduler<&str, u32> = DrrScheduler::new(4096);
        s.enqueue("a", 4096, 1);
        s.enqueue("a", 4096, 2);
        s.enqueue("a", 4096, 3);
        let order: Vec<u32> = std::iter::from_fn(|| s.dispatch().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_weights_interleave() {
        let mut s: DrrScheduler<&str> = DrrScheduler::new(4096);
        for _ in 0..3 {
            s.enqueue("a", 4096, ());
            s.enqueue("b", 4096, ());
        }
        let order: Vec<&str> = std::iter::from_fn(|| s.dispatch().map(|(t, _, _)| t)).collect();
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_skew_service() {
        let mut s: DrrScheduler<&str> = DrrScheduler::new(4096);
        s.register("heavy", 3);
        s.register("light", 1);
        for _ in 0..12 {
            s.enqueue("heavy", 4096, ());
            s.enqueue("light", 4096, ());
        }
        let first8: Vec<&str> = (0..8)
            .filter_map(|_| s.dispatch().map(|(t, _, _)| t))
            .collect();
        let heavy = first8.iter().filter(|t| **t == "heavy").count();
        assert_eq!(heavy, 6, "3:1 weights must yield 3:1 service: {first8:?}");
    }

    #[test]
    fn big_request_waits_for_accumulated_deficit() {
        // quantum 1000 < request 2500: served on the third visit.
        let mut s: DrrScheduler<&str> = DrrScheduler::new(1000);
        s.enqueue("big", 2500, ());
        s.enqueue("small", 500, ());
        s.enqueue("small", 500, ());
        s.enqueue("small", 500, ());
        let order: Vec<&str> = std::iter::from_fn(|| s.dispatch().map(|(t, _, _)| t)).collect();
        assert_eq!(order.len(), 4);
        // "big" is not starved even though every visit but the third
        // skips it.
        assert!(order.contains(&"big"));
    }

    #[test]
    fn drained_queue_forfeits_deficit() {
        let mut s: DrrScheduler<&str> = DrrScheduler::new(10_000);
        s.enqueue("a", 100, ());
        s.dispatch().unwrap();
        // "a" went idle holding 9900 credit; it must not bank it.
        s.enqueue("a", 100, ());
        s.enqueue("b", 100, ());
        for _ in 0..2 {
            s.dispatch().unwrap();
        }
        assert!(s.is_empty());
        assert_eq!(s.backlog(&"a"), 0);
    }
}
