//! QoS policy configuration.

use bypassd_sim::time::Nanos;

/// Per-tenant rate limit, enforced by token buckets at submission.
///
/// `None` fields are unlimited. Burst sizes bound how far a briefly-idle
/// tenant may run ahead of its steady-state rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Operations per second, if limited.
    pub iops: Option<u64>,
    /// Bytes per second, if limited.
    pub bytes_per_sec: Option<u64>,
    /// Burst allowance in operations.
    pub burst_ops: u64,
    /// Burst allowance in bytes.
    pub burst_bytes: u64,
}

impl RateLimit {
    /// An IOPS-only limit with a small default burst.
    pub fn iops(limit: u64) -> Self {
        RateLimit {
            iops: Some(limit),
            bytes_per_sec: None,
            burst_ops: (limit / 10).max(8),
            burst_bytes: 0,
        }
    }

    /// A bandwidth-only limit with a small default burst.
    pub fn bytes_per_sec(limit: u64) -> Self {
        RateLimit {
            iops: None,
            bytes_per_sec: Some(limit),
            burst_ops: 0,
            burst_bytes: (limit / 10).max(64 * 1024),
        }
    }

    /// Adds an IOPS cap to an existing limit.
    pub fn with_iops(mut self, limit: u64) -> Self {
        self.iops = Some(limit);
        self.burst_ops = (limit / 10).max(8);
        self
    }
}

/// A tenant's share of the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantShare {
    /// Fair-scheduling weight (relative; clamped to ≥ 1).
    pub weight: u32,
    /// Optional hard rate limit on top of the fair share.
    pub limit: Option<RateLimit>,
}

impl TenantShare {
    /// A weight-only share.
    pub fn weight(weight: u32) -> Self {
        TenantShare {
            weight: weight.max(1),
            limit: None,
        }
    }

    /// Attaches a rate limit.
    pub fn with_limit(mut self, limit: RateLimit) -> Self {
        self.limit = Some(limit);
        self
    }
}

impl Default for TenantShare {
    fn default() -> Self {
        TenantShare::weight(1)
    }
}

/// QoS subsystem configuration, passed to `SystemBuilder::qos(..)`.
///
/// With `enabled = false` (the default) the device skips admission
/// entirely — the data path is bit-identical to a build without the QoS
/// subsystem — while per-tenant accounting stays on (it never moves
/// virtual time).
#[derive(Debug, Clone, PartialEq)]
pub struct QosConfig {
    /// Master switch for pacing, rate limits and backpressure signaling.
    pub enabled: bool,
    /// Share applied to tenants without an explicit registration.
    pub default_share: TenantShare,
    /// DRR quantum in bytes (credit granted per round per unit weight in
    /// the reference scheduler; also the arbiter's accounting grain).
    pub quantum_bytes: u64,
    /// How long after its last scheduled media activity a tenant still
    /// counts as active for share scaling. Covers the host-side gap
    /// between a completion and the tenant's next submission, so a
    /// closed-loop QD1 tenant keeps its reservation between ops.
    pub active_grace: Nanos,
    /// Shares keyed by uid, registered with the kernel's policy table at
    /// build time (the kernel applies them when a process binds a queue
    /// pair).
    pub uid_shares: Vec<(u32, TenantShare)>,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            enabled: false,
            default_share: TenantShare::default(),
            quantum_bytes: 64 * 1024,
            active_grace: Nanos(20_000),
            uid_shares: Vec::new(),
        }
    }
}

impl QosConfig {
    /// An enabled config with default shares.
    pub fn enabled() -> Self {
        QosConfig {
            enabled: true,
            ..QosConfig::default()
        }
    }

    /// Sets the share for a uid (applied at queue-pair bind time).
    pub fn uid_share(mut self, uid: u32, share: TenantShare) -> Self {
        self.uid_shares.retain(|(u, _)| *u != uid);
        self.uid_shares.push((uid, share));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_neutral() {
        let c = QosConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.default_share.weight, 1);
        assert!(c.default_share.limit.is_none());
        assert!(c.uid_shares.is_empty());
    }

    #[test]
    fn weight_clamps_to_one() {
        assert_eq!(TenantShare::weight(0).weight, 1);
    }

    #[test]
    fn uid_share_replaces_previous() {
        let c = QosConfig::enabled()
            .uid_share(7, TenantShare::weight(2))
            .uid_share(7, TenantShare::weight(5));
        assert_eq!(c.uid_shares, vec![(7, TenantShare::weight(5))]);
    }

    #[test]
    fn rate_limit_constructors_set_bursts() {
        let r = RateLimit::iops(1000);
        assert_eq!(r.burst_ops, 100);
        let r = RateLimit::bytes_per_sec(1 << 20);
        assert!(r.burst_bytes >= 64 * 1024);
        let r = RateLimit::bytes_per_sec(1 << 30).with_iops(50);
        assert_eq!(r.iops, Some(50));
        assert!(r.bytes_per_sec.is_some());
    }
}
