//! Multi-tenant I/O QoS for the shared SSD.
//!
//! BypassD's premise is a *shared* device (§3.1, Fig. 11), but once the
//! kernel is off the data path nothing stops one tenant with a deep
//! queue from starving a latency-sensitive neighbor. This crate is the
//! missing policy layer:
//!
//! * [`drr`] — a classic deficit-round-robin weighted fair scheduler.
//!   It is the reference model for the share math: property tests prove
//!   it never starves a backlogged queue and that long-run byte shares
//!   converge to the configured weights.
//! * [`bucket`] — token buckets in virtual time, for per-tenant IOPS
//!   and bytes/s rate limits enforced at submission.
//! * [`arbiter`] — the device-facing [`arbiter::QosArbiter`]: it
//!   realises the DRR shares under the simulator's eager completion
//!   model by capping each tenant's share-scaled media parallelism and
//!   pacing arrivals, and keeps per-tenant counters and latency
//!   histograms (always on; pacing only when enabled).
//! * [`config`] — [`config::QosConfig`] wired through
//!   `SystemBuilder::qos(..)`. The default (`enabled = false`) skips
//!   the admission logic entirely, so all paper figures stay
//!   bit-identical.
//!
//! Policy lives in the kernel (shares are registered at queue-pair bind
//! time, matching the paper's division of labor); the device only
//! enforces.

pub mod arbiter;
pub mod bucket;
pub mod config;
pub mod drr;
pub mod ports;
pub mod stats;

pub use arbiter::{Admission, QosArbiter, Tenant};
pub use bucket::{RateLimiter, TokenBucket};
pub use bypassd_trace::Histogram;
pub use config::{QosConfig, RateLimit, TenantShare};
pub use drr::DrrScheduler;
pub use stats::TenantStats;
