//! Per-tenant observability counters and latency histograms.

use bypassd_sim::time::Nanos;
use bypassd_trace::Histogram;

/// One tenant's I/O accounting. Recording never moves virtual time, so
/// these stay on even with QoS pacing disabled.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Commands accepted into a queue pair (including ones that later
    /// fail translation or range checks).
    pub submitted: u64,
    /// Commands completed successfully.
    pub completed: u64,
    /// Commands completed with an error status (translation faults,
    /// range/field errors).
    pub failed: u64,
    /// Submissions bounced at the doorbell with a full queue.
    pub rejected: u64,
    /// Commands delayed by the tenant's token-bucket rate limit.
    pub throttled: u64,
    /// Commands delayed by the fair scheduler (another tenant's share).
    pub deferred: u64,
    /// Device-side offload hops executed on this tenant's behalf: media
    /// reads issued by `Resubmit` inside a chain, beyond the first read
    /// the host submitted. The kernel's per-uid QoS accounting charges
    /// these like submitted I/Os — a tenant cannot launder device work
    /// through a chain.
    pub offload_hops: u64,
    /// Bytes read from media.
    pub read_bytes: u64,
    /// Bytes written to media.
    pub written_bytes: u64,
    /// Device-side command latency (submission → completion visible).
    pub latency: Histogram,
}

impl TenantStats {
    /// Every submitted command must be accounted exactly once.
    pub fn accounted(&self) -> bool {
        self.submitted == self.completed + self.failed
    }

    /// Mean device latency over completed commands.
    pub fn mean_latency(&self) -> Nanos {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_invariant() {
        let mut s = TenantStats::default();
        assert!(s.accounted());
        s.submitted = 3;
        s.completed = 2;
        assert!(!s.accounted());
        s.failed = 1;
        assert!(s.accounted());
    }
}
