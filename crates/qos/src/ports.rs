//! Cross-shard port annotation for QoS pressure signals.
//!
//! The pressure bit (§ QoS backpressure: completions carry a
//! "queue is hot" flag that drives AIMD window shrinking in UserLib)
//! normally rides inside completions and never crosses a lane boundary
//! by itself. In fleet runs, device lanes additionally publish
//! *aggregated* pressure/fairness summaries to a control-plane lane on
//! this port so a fleet-wide report can be assembled; the summaries are
//! timer-driven (per pressure epoch), never input-triggered, so the
//! edge declares no reaction bound in the topology.

use bypassd_hw::ports::PCIE_RTT;
use bypassd_sim::{Nanos, Port};

/// Device lane publishes a pressure/fairness summary to a control lane.
pub const PRESSURE: Port = Port::new("qos.pressure", PCIE_RTT);

/// Floor for the pressure-summary epoch in fleet runs. Matches the
/// arbiter's `active_grace` default: sampling tenant activity faster
/// than the activity window itself just reports the same state twice.
pub const PRESSURE_EPOCH_FLOOR: Nanos = Nanos(20_000);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QosConfig;

    #[test]
    fn epoch_floor_matches_active_grace_default() {
        assert_eq!(PRESSURE_EPOCH_FLOOR, QosConfig::default().active_grace);
        assert!(PRESSURE.lookahead.0 >= 1);
    }
}
