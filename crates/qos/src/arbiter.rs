//! The device-facing QoS arbiter.
//!
//! The simulated device computes every command's completion time at
//! submission (the eager ledger in `bypassd-ssd::timing`), so a
//! queue-based scheduler cannot reorder dispatch after the fact. The
//! arbiter therefore enforces the DRR shares *at admission*, in two
//! composable steps:
//!
//! 1. **Token buckets** ([`crate::bucket`]) push the command's
//!    effective arrival to the earliest conforming virtual time
//!    (`throttled`).
//! 2. **Share-scaled media parallelism**: of the device's `channels`
//!    media channels, a tenant competing with other *active* tenants
//!    may only keep `channels × weight / Σ active weights` (≥ 1) booked
//!    ahead of time. Each tenant owns a private ledger of virtual
//!    "lanes"; a command is admitted on the earliest free lane of the
//!    tenant's current allocation, which delays its effective arrival
//!    while the allocation is saturated (`deferred`).
//!
//! This is exactly the allocation the reference [`crate::drr`]
//! scheduler converges to when every tenant is backlogged (service
//! ∝ weight), but expressed as arrival pacing: a deep-queue tenant's
//! backlog parks on its own future lanes instead of the shared channel
//! ledger, so a QD1 neighbor's commands find a free channel at `now`.
//! The active-set test (any media activity within `active_grace`) keeps
//! the scheme work-conserving at coarse grain: a tenant alone on the
//! device gets every lane, hence full throughput.

use std::collections::BTreeMap;

use bypassd_hw::types::Pasid;
use bypassd_sim::time::Nanos;

use crate::bucket::RateLimiter;
use crate::config::{QosConfig, TenantShare};
use crate::stats::TenantStats;

/// Who a command is accounted to: the queue pair's PASID binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tenant {
    /// Kernel-owned queues (no PASID): the kernel block layer, SPDK.
    Kernel,
    /// A PASID-bound user queue (BypassD direct I/O).
    User(Pasid),
}

impl std::fmt::Display for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tenant::Kernel => f.write_str("kernel"),
            Tenant::User(p) => write!(f, "pasid:{}", p.0),
        }
    }
}

/// Outcome of admitting one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Effective arrival time to hand to the media scheduler (≥ the
    /// submission time; equal to it when the command was not delayed).
    pub arrival: Nanos,
    /// Delayed by the tenant's token-bucket rate limit.
    pub throttled: bool,
    /// Delayed by the fair scheduler (tenant's lane allocation busy).
    pub deferred: bool,
}

#[derive(Debug)]
struct TenantState {
    share: TenantShare,
    limiter: Option<RateLimiter>,
    /// Virtual per-tenant channel ledger (`free-at` times); only the
    /// first `k` lanes of the current allocation are bookable.
    lanes: Vec<Nanos>,
    /// Latest scheduled media activity; drives the active-set test.
    busy_until: Nanos,
    stats: TenantStats,
}

impl TenantState {
    fn new(share: TenantShare, channels: usize) -> Self {
        TenantState {
            limiter: share.limit.as_ref().and_then(RateLimiter::from_limit),
            share,
            lanes: vec![Nanos::ZERO; channels],
            busy_until: Nanos::ZERO,
            stats: TenantStats::default(),
        }
    }
}

/// Per-device QoS enforcement state. The owning device serialises calls
/// under its own lock; the arbiter itself is plain mutable state.
#[derive(Debug)]
pub struct QosArbiter {
    config: QosConfig,
    channels: usize,
    /// Ordered map: `active_weight`/`horizon`/`totals` iterate it, and
    /// their results flow into admission arrivals and `Nanos` delays —
    /// iteration order must not vary run to run.
    tenants: BTreeMap<Tenant, TenantState>,
}

impl QosArbiter {
    /// An arbiter for a device with `channels` media channels.
    pub fn new(config: QosConfig, channels: usize) -> Self {
        QosArbiter {
            config,
            channels: channels.max(1),
            tenants: BTreeMap::new(),
        }
    }

    /// Whether pacing/throttling/backpressure are in force. When false,
    /// the device must not call [`QosArbiter::admit`]; accounting stays
    /// available either way.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration in force.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    /// The share applied to unregistered tenants.
    pub fn default_share(&self) -> TenantShare {
        self.config.default_share
    }

    /// Registers (or updates) `tenant`'s share. Called by the kernel at
    /// queue-pair bind time; accounting history is preserved.
    pub fn register(&mut self, tenant: Tenant, share: TenantShare) {
        let channels = self.channels;
        let st = self
            .tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(share, channels));
        st.share = share;
        st.limiter = share.limit.as_ref().and_then(RateLimiter::from_limit);
    }

    fn ensure(&mut self, tenant: Tenant) -> &mut TenantState {
        let share = self.config.default_share;
        let channels = self.channels;
        self.tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(share, channels))
    }

    /// Sum of weights over tenants active at `now` (always counts
    /// `tenant` itself).
    fn active_weight(&self, tenant: Tenant, now: Nanos) -> u64 {
        let grace = self.config.active_grace;
        self.tenants
            .iter()
            .filter(|(t, st)| **t == tenant || st.busy_until + grace > now)
            .map(|(_, st)| u64::from(st.share.weight))
            .sum::<u64>()
            .max(1)
    }

    /// Admits one command submitted at `now` whose media service is
    /// estimated at `service_est`, returning its effective arrival.
    /// Only called when [`QosArbiter::enabled`].
    pub fn admit(
        &mut self,
        tenant: Tenant,
        now: Nanos,
        service_est: Nanos,
        bytes: u64,
    ) -> Admission {
        self.ensure(tenant);
        let active_weight = self.active_weight(tenant, now);
        let channels = self.channels as u64;
        let st = self.tenants.get_mut(&tenant).expect("ensured above");

        let mut eligible = now;
        let mut throttled = false;
        if let Some(limiter) = &mut st.limiter {
            let conforming = limiter.reserve(now, bytes);
            if conforming > eligible {
                eligible = conforming;
                throttled = true;
            }
        }

        // Lane allocation: this tenant's share of the device's internal
        // parallelism given who else is currently active.
        let weight = u64::from(st.share.weight);
        let k = (channels * weight / active_weight).clamp(1, channels) as usize;
        let (idx, &free) = st.lanes[..k]
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .expect("k >= 1");
        let arrival = eligible.max(free);
        let deferred = arrival > eligible;
        st.lanes[idx] = arrival + service_est;
        st.busy_until = st.busy_until.max(st.lanes[idx]);

        if throttled {
            st.stats.throttled += 1;
        }
        if deferred {
            st.stats.deferred += 1;
        }
        Admission {
            arrival,
            throttled,
            deferred,
        }
    }

    /// Latest media activity booked on any tenant's lanes. The device's
    /// flush barrier drains to this horizon when QoS pacing (which
    /// bypasses the shared channel ledger) is in force.
    pub fn horizon(&self) -> Nanos {
        self.tenants
            .values()
            .map(|st| st.busy_until)
            .fold(Nanos::ZERO, Nanos::max)
    }

    /// Accounts a command accepted into a queue pair.
    pub fn record_submit(&mut self, tenant: Tenant) {
        self.ensure(tenant).stats.submitted += 1;
    }

    /// Accounts a submission bounced with a full queue.
    pub fn record_rejected(&mut self, tenant: Tenant) {
        self.ensure(tenant).stats.rejected += 1;
    }

    /// Accounts device-side offload hops (chain `Resubmit` reads beyond
    /// the host-submitted first read) so per-tenant reporting sees the
    /// media work a chain performed on the tenant's behalf.
    pub fn record_offload_hops(&mut self, tenant: Tenant, hops: u64) {
        self.ensure(tenant).stats.offload_hops += hops;
    }

    /// Accounts a command's completion: `ok` selects completed/failed;
    /// successful data movement adds `read_bytes`/`written_bytes`.
    pub fn record_completion(
        &mut self,
        tenant: Tenant,
        latency: Nanos,
        ok: bool,
        read_bytes: u64,
        written_bytes: u64,
    ) {
        let st = self.ensure(tenant);
        if ok {
            st.stats.completed += 1;
            st.stats.read_bytes += read_bytes;
            st.stats.written_bytes += written_bytes;
            st.stats.latency.record(latency);
        } else {
            st.stats.failed += 1;
        }
    }

    /// Aggregate (throttled, deferred) across tenants.
    pub fn totals(&self) -> (u64, u64) {
        self.tenants.values().fold((0, 0), |(t, d), st| {
            (t + st.stats.throttled, d + st.stats.deferred)
        })
    }

    /// One tenant's accounting.
    pub fn tenant_stats(&self, tenant: Tenant) -> Option<TenantStats> {
        self.tenants.get(&tenant).map(|st| st.stats.clone())
    }

    /// All tenants' accounting, ordered by tenant for determinism.
    pub fn snapshot(&self) -> Vec<(Tenant, TenantStats)> {
        self.tenants
            .iter()
            .map(|(t, st)| (*t, st.stats.clone()))
            .collect()
    }

    /// Forgets absolute time (lane ledgers, activity marks, bucket
    /// clocks) so a fresh simulation starting at t=0 does not inherit
    /// backlog. Accounting is preserved, mirroring `DeviceStats` across
    /// `reset_timing`.
    pub fn reset_clock(&mut self) {
        for st in self.tenants.values_mut() {
            st.lanes.fill(Nanos::ZERO);
            st.busy_until = Nanos::ZERO;
            if let Some(l) = &mut st.limiter {
                l.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RateLimit;

    const SERVICE: Nanos = Nanos(4_000);

    fn arbiter() -> QosArbiter {
        QosArbiter::new(QosConfig::enabled(), 6)
    }

    fn t(p: u32) -> Tenant {
        Tenant::User(Pasid(p))
    }

    #[test]
    fn solo_tenant_is_never_delayed_at_low_depth() {
        let mut a = arbiter();
        let mut now = Nanos::ZERO;
        for _ in 0..32 {
            let adm = a.admit(t(1), now, SERVICE, 4096);
            assert_eq!(adm.arrival, now, "QD1 tenant must admit immediately");
            assert!(!adm.throttled && !adm.deferred);
            now = now + SERVICE + Nanos(500);
        }
    }

    #[test]
    fn solo_tenant_gets_all_lanes() {
        // A lone flooder books all 6 lanes before deferring: the scheme
        // is work-conserving when nobody competes.
        let mut a = arbiter();
        let mut deferred_at = None;
        for i in 0..8 {
            let adm = a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
            if adm.deferred && deferred_at.is_none() {
                deferred_at = Some(i);
            }
        }
        assert_eq!(deferred_at, Some(6));
    }

    #[test]
    fn contended_equal_weights_halve_the_lanes() {
        let mut a = arbiter();
        // Make tenant 2 active.
        a.admit(t(2), Nanos::ZERO, SERVICE, 4096);
        // Tenant 1 now only gets 3 of 6 lanes.
        let mut deferred_at = None;
        for i in 0..6 {
            let adm = a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
            if adm.deferred && deferred_at.is_none() {
                deferred_at = Some(i);
            }
        }
        assert_eq!(deferred_at, Some(3));
    }

    #[test]
    fn flooder_does_not_consume_a_light_tenants_lanes() {
        let mut a = arbiter();
        // Antagonist floods 16 deep at t=0.
        for _ in 0..16 {
            a.admit(t(2), Nanos::ZERO, SERVICE, 4096);
        }
        // The QD1 foreground still admits at now: its own lanes are free.
        let adm = a.admit(t(1), Nanos(100), SERVICE, 4096);
        assert_eq!(adm.arrival, Nanos(100));
        assert!(!adm.deferred);
    }

    #[test]
    fn weights_skew_lane_allocation() {
        let mut a = QosArbiter::new(QosConfig::enabled(), 6);
        a.register(t(1), TenantShare::weight(2));
        a.register(t(2), TenantShare::weight(1));
        a.admit(t(2), Nanos::ZERO, SERVICE, 4096);
        // weight 2 of total 3 → 4 of 6 lanes.
        let mut deferred_at = None;
        for i in 0..6 {
            let adm = a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
            if adm.deferred && deferred_at.is_none() {
                deferred_at = Some(i);
            }
        }
        assert_eq!(deferred_at, Some(4));
    }

    #[test]
    fn idle_tenant_leaves_the_active_set() {
        let mut a = arbiter();
        a.admit(t(2), Nanos::ZERO, SERVICE, 4096);
        // Far beyond busy_until + grace, tenant 2 no longer halves
        // tenant 1's allocation.
        let later = Nanos::from_millis(10);
        let mut deferred_at = None;
        for i in 0..8 {
            let adm = a.admit(t(1), later, SERVICE, 4096);
            if adm.deferred && deferred_at.is_none() {
                deferred_at = Some(i);
            }
        }
        assert_eq!(deferred_at, Some(6));
    }

    #[test]
    fn iops_limit_throttles_and_spaces() {
        let mut a = QosArbiter::new(QosConfig::enabled(), 6);
        a.register(
            t(1),
            TenantShare::weight(1).with_limit(RateLimit {
                iops: Some(1000),
                bytes_per_sec: None,
                burst_ops: 1,
                burst_bytes: 0,
            }),
        );
        let first = a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
        assert!(!first.throttled);
        let second = a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
        assert!(second.throttled);
        assert_eq!(second.arrival, Nanos::from_millis(1));
        assert_eq!(a.tenant_stats(t(1)).unwrap().throttled, 1);
    }

    #[test]
    fn accounting_tracks_every_op() {
        let mut a = arbiter();
        a.record_submit(t(1));
        a.record_submit(t(1));
        a.record_submit(t(1));
        a.record_completion(t(1), Nanos(4000), true, 4096, 0);
        a.record_completion(t(1), Nanos(4000), true, 0, 4096);
        a.record_completion(t(1), Nanos(100), false, 0, 0);
        let s = a.tenant_stats(t(1)).unwrap();
        assert!(s.accounted());
        assert_eq!((s.completed, s.failed), (2, 1));
        assert_eq!((s.read_bytes, s.written_bytes), (4096, 4096));
        assert_eq!(s.latency.count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut a = arbiter();
        a.record_submit(t(9));
        a.record_submit(Tenant::Kernel);
        a.record_submit(t(3));
        let snap = a.snapshot();
        let order: Vec<Tenant> = snap.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![Tenant::Kernel, t(3), t(9)]);
    }

    #[test]
    fn reset_clock_clears_backlog_but_keeps_stats() {
        let mut a = arbiter();
        for _ in 0..12 {
            a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
        }
        a.record_submit(t(1));
        a.reset_clock();
        let adm = a.admit(t(1), Nanos::ZERO, SERVICE, 4096);
        assert!(!adm.deferred, "reset must clear the lane ledger");
        assert_eq!(a.tenant_stats(t(1)).unwrap().submitted, 1);
    }
}
