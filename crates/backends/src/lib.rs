//! # bypassd-backends
//!
//! A uniform [`StorageBackend`] interface over the six I/O paths the
//! paper's evaluation compares (§6.3):
//!
//! | backend | path |
//! |---|---|
//! | [`SyncFactory`] | baseline Linux synchronous syscalls |
//! | [`LibaioFactory`] | Linux native AIO (`io_submit`/`io_getevents`) |
//! | [`UringFactory`] | io_uring with SQPOLL and fixed buffers |
//! | [`SpdkFactory`] | userspace driver, no file system, **no sharing** |
//! | [`XrpFactory`] | eBPF resubmission from the NVMe driver |
//! | [`BypassdFactory`] | BypassD UserLib (this paper) |
//!
//! A factory holds per-process state and mints per-thread backends (each
//! simulated workload thread owns one). The trait also exposes
//! `chained_read` (used by the B-tree/BPF-KV engines): baselines loop
//! over `pread`, XRP resubmits in the driver, and async `submit`/`poll`
//! (used by KVell) which only libaio genuinely overlaps.

pub mod aio_backend;
pub mod bypassd_backend;
pub mod spdk;
pub mod sync_backend;
pub mod traits;
pub mod uring_backend;
pub mod xrp_backend;

pub use aio_backend::LibaioFactory;
pub use bypassd_backend::BypassdFactory;
pub use spdk::{SpdkEnv, SpdkFactory};
pub use sync_backend::SyncFactory;
pub use traits::{BackendFactory, BackendKind, OffloadProg, StorageBackend};
pub use uring_backend::UringFactory;
pub use xrp_backend::XrpFactory;

use bypassd::System;
use std::sync::Arc;

/// Builds a factory for `kind` over `system`, as user `uid`/`gid`.
/// Each factory models one *process*; call it once per simulated process.
pub fn make_factory(
    kind: BackendKind,
    system: &System,
    uid: u32,
    gid: u32,
) -> Arc<dyn BackendFactory> {
    match kind {
        BackendKind::Sync => Arc::new(SyncFactory::new(system, uid, gid)),
        BackendKind::Libaio => Arc::new(LibaioFactory::new(system, uid, gid, 1)),
        BackendKind::IoUring => Arc::new(UringFactory::new(system, uid, gid)),
        BackendKind::Spdk => Arc::new(SpdkFactory::new(system)),
        BackendKind::Xrp => Arc::new(XrpFactory::new(system, uid, gid)),
        BackendKind::Bypassd => Arc::new(BypassdFactory::new(system, uid, gid)),
        BackendKind::BypassdOffload => Arc::new(BypassdFactory::new_offload(system, uid, gid)),
    }
}
