//! io_uring with SQPOLL and fixed buffers (the paper's configuration).

use std::sync::Arc;

use bypassd::System;
use bypassd_os::uring::Uring;
use bypassd_os::{Kernel, OpenFlags, Pid, SysResult};
use bypassd_sim::engine::ActorCtx;

use crate::traits::{BackendFactory, BackendKind, Handle, StorageBackend};

/// One simulated process using io_uring; each thread gets its own ring
/// (and thus its own SQPOLL kernel thread — the Fig. 9 core cost).
pub struct UringFactory {
    kernel: Arc<Kernel>,
    pid: Pid,
}

impl UringFactory {
    /// Spawns the process.
    pub fn new(system: &System, uid: u32, gid: u32) -> Self {
        let kernel = Arc::clone(system.kernel());
        let pid = kernel.spawn_process(uid, gid);
        UringFactory { kernel, pid }
    }
}

impl BackendFactory for UringFactory {
    fn kind(&self) -> BackendKind {
        BackendKind::IoUring
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(UringBackend {
            kernel: Arc::clone(&self.kernel),
            pid: self.pid,
            ring: None,
            completions: Vec::new(),
        })
    }
}

struct UringBackend {
    kernel: Arc<Kernel>,
    pid: Pid,
    ring: Option<Uring>,
    completions: Vec<(u64, Vec<u8>)>,
}

impl UringBackend {
    fn ensure_ring(&mut self, ctx: &mut ActorCtx) {
        if self.ring.is_none() {
            self.ring = Some(self.kernel.uring_setup(ctx, 64));
        }
    }
}

impl StorageBackend for UringBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::IoUring
    }

    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle> {
        let flags = if writable {
            OpenFlags::rdwr_direct()
        } else {
            OpenFlags::rdonly_direct()
        };
        self.kernel.sys_open(ctx, self.pid, path, flags, 0o644)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.ensure_ring(ctx);
        let ring = self.ring.as_ref().unwrap();
        self.kernel.uring_read(ctx, self.pid, ring, h, buf, offset)
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.ensure_ring(ctx);
        let ring = self.ring.as_ref().unwrap();
        self.kernel
            .uring_write(ctx, self.pid, ring, h, data, offset)
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_fsync(ctx, self.pid, h)
    }

    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_close(ctx, self.pid, h)
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}
