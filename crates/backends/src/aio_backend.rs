//! libaio: Linux native AIO. At QD 1 it behaves like the sync path with
//! a little extra bookkeeping (Fig. 6); with deep queues it trades
//! latency for throughput (KVell_64, Fig. 16).

use std::sync::Arc;

use bypassd::System;
use bypassd_os::aio::{AioCtx, AioData, AioOp};
use bypassd_os::{Kernel, OpenFlags, Pid, SysResult};
use bypassd_sim::engine::ActorCtx;

use crate::traits::{BackendFactory, BackendKind, Handle, StorageBackend};

/// One simulated process using libaio with a fixed queue depth.
pub struct LibaioFactory {
    kernel: Arc<Kernel>,
    pid: Pid,
    depth: usize,
}

impl LibaioFactory {
    /// Spawns the process; `depth` is the per-thread AIO context depth.
    pub fn new(system: &System, uid: u32, gid: u32, depth: usize) -> Self {
        let kernel = Arc::clone(system.kernel());
        let pid = kernel.spawn_process(uid, gid);
        LibaioFactory {
            kernel,
            pid,
            depth: depth.max(1),
        }
    }
}

impl BackendFactory for LibaioFactory {
    fn kind(&self) -> BackendKind {
        BackendKind::Libaio
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(LibaioBackend {
            kernel: Arc::clone(&self.kernel),
            pid: self.pid,
            depth: self.depth,
            aio: None,
            completions: Vec::new(),
        })
    }
}

struct LibaioBackend {
    kernel: Arc<Kernel>,
    pid: Pid,
    depth: usize,
    aio: Option<AioCtx>,
    completions: Vec<(u64, Vec<u8>)>,
}

impl LibaioBackend {
    fn ensure_ctx(&mut self, ctx: &mut ActorCtx) {
        if self.aio.is_none() {
            self.aio = Some(self.kernel.io_setup(ctx, self.depth));
        }
    }
}

impl StorageBackend for LibaioBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Libaio
    }

    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle> {
        let flags = if writable {
            OpenFlags::rdwr_direct()
        } else {
            OpenFlags::rdonly_direct()
        };
        self.kernel.sys_open(ctx, self.pid, path, flags, 0o644)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.ensure_ctx(ctx);
        let aio = self.aio.as_ref().unwrap();
        self.kernel.io_submit(
            ctx,
            self.pid,
            aio,
            vec![AioOp {
                fd: h,
                offset,
                user_data: 0,
                data: AioData::Read(buf.len()),
            }],
        )?;
        let events = self.kernel.io_getevents(ctx, aio, 1, 1);
        let ev = events.into_iter().next().expect("aio completion lost");
        buf.copy_from_slice(&ev.data);
        Ok(ev.len)
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.ensure_ctx(ctx);
        let aio = self.aio.as_ref().unwrap();
        self.kernel.io_submit(
            ctx,
            self.pid,
            aio,
            vec![AioOp {
                fd: h,
                offset,
                user_data: 0,
                data: AioData::Write(data.to_vec()),
            }],
        )?;
        let ev = self.kernel.io_getevents(ctx, aio, 1, 1);
        Ok(ev.first().map_or(0, |e| e.len))
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_fsync(ctx, self.pid, h)
    }

    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_close(ctx, self.pid, h)
    }

    fn submit(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        write: bool,
        offset: u64,
        len_or_data: Result<usize, Vec<u8>>,
        token: u64,
    ) -> SysResult<()> {
        self.ensure_ctx(ctx);
        let aio = self.aio.as_ref().unwrap();
        let data = match len_or_data {
            Ok(len) => AioData::Read(len),
            Err(d) => AioData::Write(d),
        };
        debug_assert_eq!(matches!(data, AioData::Write(_)), write);
        self.kernel.io_submit(
            ctx,
            self.pid,
            aio,
            vec![AioOp {
                fd: h,
                offset,
                user_data: token,
                data,
            }],
        )?;
        Ok(())
    }

    fn poll(&mut self, ctx: &mut ActorCtx, min: usize) -> SysResult<Vec<(u64, Vec<u8>)>> {
        self.ensure_ctx(ctx);
        let aio = self.aio.as_ref().unwrap();
        let events = self.kernel.io_getevents(ctx, aio, min, self.depth);
        Ok(events.into_iter().map(|e| (e.user_data, e.data)).collect())
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}
