//! Baseline: synchronous kernel syscalls with O_DIRECT (Table 1's path).

use std::sync::Arc;

use bypassd::System;
use bypassd_os::{Kernel, OpenFlags, Pid, SysResult};
use bypassd_sim::engine::ActorCtx;

use crate::traits::{BackendFactory, BackendKind, Handle, StorageBackend};

/// One simulated process using plain synchronous syscalls.
pub struct SyncFactory {
    kernel: Arc<Kernel>,
    pid: Pid,
}

impl SyncFactory {
    /// Spawns the process.
    pub fn new(system: &System, uid: u32, gid: u32) -> Self {
        let kernel = Arc::clone(system.kernel());
        let pid = kernel.spawn_process(uid, gid);
        SyncFactory { kernel, pid }
    }

    /// The backing process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

impl BackendFactory for SyncFactory {
    fn kind(&self) -> BackendKind {
        BackendKind::Sync
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(SyncBackend {
            kernel: Arc::clone(&self.kernel),
            pid: self.pid,
            completions: Vec::new(),
        })
    }
}

pub(crate) struct SyncBackend {
    pub(crate) kernel: Arc<Kernel>,
    pub(crate) pid: Pid,
    pub(crate) completions: Vec<(u64, Vec<u8>)>,
}

impl StorageBackend for SyncBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sync
    }

    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle> {
        let flags = if writable {
            OpenFlags::rdwr_direct()
        } else {
            OpenFlags::rdonly_direct()
        };
        self.kernel.sys_open(ctx, self.pid, path, flags, 0o644)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.kernel.sys_pread(ctx, self.pid, h, buf, offset)
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.kernel.sys_pwrite(ctx, self.pid, h, data, offset)
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_fsync(ctx, self.pid, h)
    }

    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_close(ctx, self.pid, h)
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}
