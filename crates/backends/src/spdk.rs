//! SPDK-style userspace driver: the latency ceiling, and the sharing
//! cautionary tale.
//!
//! SPDK maps the device into one process: no kernel, no file system, no
//! translation — and **no protection**: the process addresses raw LBAs,
//! so it can read or corrupt every block on the device (§2, "userspace
//! access is challenging"). The paper's SPDK+fio setup resolves file
//! layouts ahead of time (their TopFS-style map); we model that by
//! snapshotting the file's extent list at `open` into a userspace map.
//! The [`SpdkBackend::read_lba`] escape hatch demonstrates the security
//! hole BypassD closes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bypassd::System;
use bypassd_hw::types::{Lba, SECTOR_SIZE};
use bypassd_os::{Errno, SysResult};
use bypassd_sim::engine::ActorCtx;
use bypassd_ssd::device::{BlockAddr, Command, NvmeDevice};
use bypassd_ssd::dma::DmaBuffer;
use bypassd_ssd::queue::QueueId;

use crate::traits::{BackendFactory, BackendKind, Handle, StorageBackend};

/// The process-wide SPDK environment: exclusive claim over the device.
pub struct SpdkEnv {
    system: System,
    claimed: AtomicBool,
}

impl SpdkEnv {
    /// Claims the device. Only one claim per environment; a second
    /// process cannot attach (SPDK does not support device sharing).
    pub fn new(system: &System) -> Arc<SpdkEnv> {
        Arc::new(SpdkEnv {
            system: system.clone(),
            claimed: AtomicBool::new(false),
        })
    }

    /// Attempts the exclusive claim; `None` if already claimed.
    pub fn try_claim(self: &Arc<Self>) -> Option<Arc<Self>> {
        if self.claimed.swap(true, Ordering::SeqCst) {
            None
        } else {
            Some(Arc::clone(self))
        }
    }
}

/// Factory for SPDK thread contexts.
pub struct SpdkFactory {
    env: Arc<SpdkEnv>,
}

impl SpdkFactory {
    /// Creates (and claims) the SPDK environment.
    pub fn new(system: &System) -> Self {
        let env = SpdkEnv::new(system);
        env.claimed.store(true, Ordering::SeqCst);
        SpdkFactory { env }
    }
}

impl SpdkFactory {
    /// Creates a concretely-typed thread backend (exposes
    /// [`SpdkBackend::read_lba`] for the protection demonstration).
    pub fn make_typed_thread(&self) -> SpdkBackend {
        let dev = Arc::clone(self.env.system.device());
        let qid = dev.create_queue(None, 64);
        let dma = DmaBuffer::alloc(self.env.system.mem(), 1 << 20);
        SpdkBackend {
            system: self.env.system.clone(),
            dev,
            qid,
            dma,
            files: HashMap::new(),
            next_handle: 3,
            completions: Vec::new(),
        }
    }
}

impl BackendFactory for SpdkFactory {
    fn kind(&self) -> BackendKind {
        BackendKind::Spdk
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(self.make_typed_thread())
    }
}

struct SpdkFile {
    /// Userspace extent map: (file byte offset, device LBA, byte length).
    extents: Vec<(u64, Lba, u64)>,
    size: u64,
}

impl SpdkFile {
    fn segments(&self, offset: u64, len: u64) -> Option<Vec<(Lba, u64)>> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let e = self
                .extents
                .iter()
                .find(|(fo, _, el)| *fo <= cur && cur < fo + el)?;
            let within = cur - e.0;
            let n = (e.2 - within).min(end - cur);
            out.push((Lba(e.1 .0 + within / SECTOR_SIZE), n));
            cur += n;
        }
        Some(out)
    }
}

/// One SPDK thread: private queue, DMA buffer, userspace file map.
pub struct SpdkBackend {
    system: System,
    dev: Arc<NvmeDevice>,
    qid: QueueId,
    dma: DmaBuffer,
    files: HashMap<Handle, SpdkFile>,
    next_handle: Handle,
    completions: Vec<(u64, Vec<u8>)>,
}

impl SpdkBackend {
    fn overhead(&self) -> bypassd_sim::Nanos {
        self.system.kernel().cost().spdk_overhead
    }

    /// The security hole: read any sector on the device, no checks.
    ///
    /// # Errors
    /// `Inval` if out of range.
    pub fn read_lba(
        &mut self,
        ctx: &mut ActorCtx,
        lba: Lba,
        sectors: u32,
        out: &mut [u8],
    ) -> SysResult<()> {
        let (st, ready) = self.dev.execute(
            self.qid,
            Command::read(BlockAddr::Lba(lba), sectors, &self.dma),
            ctx.now(),
        );
        if !st.is_ok() {
            return Err(Errno::Inval);
        }
        ctx.wait_until(ready);
        self.dma.read(0, out);
        Ok(())
    }

    fn io(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        offset: u64,
        len: u64,
        write: bool,
    ) -> SysResult<Vec<(Lba, u64)>> {
        if !offset.is_multiple_of(SECTOR_SIZE) || !len.is_multiple_of(SECTOR_SIZE) || len == 0 {
            return Err(Errno::Inval);
        }
        let f = self.files.get(&h).ok_or(Errno::BadF)?;
        if offset + len > f.size {
            return Err(Errno::Inval);
        }
        let segs = f.segments(offset, len).ok_or(Errno::Inval)?;
        ctx.delay(self.overhead());
        let mut latest = ctx.now();
        let mut dma_off = 0usize;
        for (lba, n) in &segs {
            let cmd = Command {
                opcode: if write {
                    bypassd_ssd::device::Opcode::Write
                } else {
                    bypassd_ssd::device::Opcode::Read
                },
                addr: BlockAddr::Lba(*lba),
                sectors: (*n / SECTOR_SIZE) as u32,
                dma: Some(&self.dma),
                dma_offset: dma_off,
                chain: None,
            };
            let (st, ready) = self.dev.execute(self.qid, cmd, ctx.now());
            if !st.is_ok() {
                return Err(Errno::Inval);
            }
            dma_off += *n as usize;
            latest = latest.max(ready);
        }
        ctx.wait_until(latest);
        Ok(segs)
    }
}

impl StorageBackend for SpdkBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Spdk
    }

    /// "Opens" a file by snapshotting its extent layout into the
    /// userspace map (no kernel involvement at I/O time, no permission
    /// checks possible).
    fn open(&mut self, _ctx: &mut ActorCtx, path: &str, _writable: bool) -> SysResult<Handle> {
        let fs = self.system.fs();
        let ino = fs.lookup(path)?;
        let size = fs.size_of(ino)?;
        let aligned = size.div_ceil(SECTOR_SIZE) * SECTOR_SIZE;
        let (segs, _) = fs.resolve(ino, 0, aligned.max(SECTOR_SIZE))?;
        let mut extents = Vec::new();
        let mut off = 0u64;
        for (lba, len) in segs {
            if let Some(lba) = lba {
                extents.push((off, lba, len));
            }
            off += len;
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.files.insert(
            h,
            SpdkFile {
                extents,
                size: aligned,
            },
        );
        Ok(h)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        let len = buf.len() as u64;
        self.io(ctx, h, offset, len, false)?;
        ctx.delay(self.system.kernel().cost().user_copy(len));
        self.dma.read(0, buf);
        Ok(buf.len())
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        ctx.delay(self.system.kernel().cost().user_copy(data.len() as u64));
        self.dma.write(0, data);
        self.io(ctx, h, offset, data.len() as u64, true)?;
        Ok(data.len())
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, _h: Handle) -> SysResult<()> {
        let (st, ready) = self.dev.execute(self.qid, Command::flush(), ctx.now());
        debug_assert!(st.is_ok());
        ctx.wait_until(ready);
        Ok(())
    }

    fn close(&mut self, _ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.files.remove(&h).map(|_| ()).ok_or(Errno::BadF)
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}
