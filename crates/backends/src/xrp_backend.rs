//! XRP: sync syscalls for plain I/O, in-driver resubmission for chains.

use std::sync::Arc;

use bypassd::System;
use bypassd_offload::Op;
use bypassd_os::{Kernel, OpenFlags, Pid, SysResult};
use bypassd_sim::engine::ActorCtx;

use crate::traits::{BackendFactory, BackendKind, Handle, OffloadProg, StorageBackend};

/// One simulated process using XRP.
pub struct XrpFactory {
    kernel: Arc<Kernel>,
    pid: Pid,
}

impl XrpFactory {
    /// Spawns the process.
    pub fn new(system: &System, uid: u32, gid: u32) -> Self {
        let kernel = Arc::clone(system.kernel());
        let pid = kernel.spawn_process(uid, gid);
        XrpFactory { kernel, pid }
    }
}

impl BackendFactory for XrpFactory {
    fn kind(&self) -> BackendKind {
        BackendKind::Xrp
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(XrpBackend {
            kernel: Arc::clone(&self.kernel),
            pid: self.pid,
            completions: Vec::new(),
        })
    }
}

struct XrpBackend {
    kernel: Arc<Kernel>,
    pid: Pid,
    completions: Vec<(u64, Vec<u8>)>,
}

impl StorageBackend for XrpBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Xrp
    }

    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle> {
        let flags = if writable {
            OpenFlags::rdwr_direct()
        } else {
            OpenFlags::rdonly_direct()
        };
        self.kernel.sys_open(ctx, self.pid, path, flags, 0o644)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.kernel.sys_pread(ctx, self.pid, h, buf, offset)
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.kernel.sys_pwrite(ctx, self.pid, h, data, offset)
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_fsync(ctx, self.pid, h)
    }

    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.kernel.sys_close(ctx, self.pid, h)
    }

    fn chained_read(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        offset: u64,
        len: u64,
        next: &mut dyn FnMut(&[u8]) -> Option<u64>,
    ) -> SysResult<Vec<u8>> {
        self.kernel
            .xrp_chained_read(ctx, self.pid, h, offset, len, next)
    }

    fn prog_load(&mut self, ctx: &mut ActorCtx, ops: &[Op]) -> SysResult<OffloadProg> {
        // XRP loads the same verified IR into the kernel's program
        // table (the eBPF-load analogue); chains execute it at the
        // driver's completion hook.
        self.kernel
            .sys_prog_load(ctx, self.pid, ops.to_vec())
            .map(OffloadProg::Engine)
    }

    fn chained_read_prog(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        start: u64,
        prog: &OffloadProg,
        regs: [u64; bypassd_offload::NUM_REGS],
    ) -> SysResult<Vec<u8>> {
        match prog {
            OffloadProg::Engine(handle) => self
                .kernel
                .xrp_chained_read_offload(ctx, self.pid, h, start, *handle, regs),
            OffloadProg::Host(_) => Err(bypassd_os::Errno::Inval),
        }
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}
