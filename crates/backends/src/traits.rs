//! The backend abstraction the workload generators drive.

use std::sync::Arc;

use bypassd_offload::{run_hop, ChainState, Op, Outcome, ProgHandle, Program, BLOCK, STEP_NS};
use bypassd_os::{Errno, SysResult};
use bypassd_sim::engine::ActorCtx;
use bypassd_sim::time::Nanos;

/// Selects one of the compared I/O paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Baseline Linux synchronous syscalls.
    Sync,
    /// Linux native AIO.
    Libaio,
    /// io_uring with SQPOLL.
    IoUring,
    /// SPDK-style userspace driver (no FS, exclusive device).
    Spdk,
    /// XRP (eBPF resubmission in the driver).
    Xrp,
    /// BypassD (this paper).
    Bypassd,
    /// BypassD with device-side chain offload (one submission per
    /// chain, the device follows `Resubmit` offsets itself).
    BypassdOffload,
}

impl BackendKind {
    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sync => "sync",
            BackendKind::Libaio => "libaio",
            BackendKind::IoUring => "io_uring",
            BackendKind::Spdk => "spdk",
            BackendKind::Xrp => "xrp",
            BackendKind::Bypassd => "bypassd",
            BackendKind::BypassdOffload => "bypassd+offload",
        }
    }

    /// All kinds, in the paper's usual legend order.
    pub fn all() -> [BackendKind; 7] {
        [
            BackendKind::Sync,
            BackendKind::Libaio,
            BackendKind::IoUring,
            BackendKind::Spdk,
            BackendKind::Xrp,
            BackendKind::Bypassd,
            BackendKind::BypassdOffload,
        ]
    }
}

/// A loaded offload program, as a backend sees it.
#[derive(Debug, Clone)]
pub enum OffloadProg {
    /// Loaded into a real engine (the device for BypassD+offload, the
    /// kernel driver hook for XRP): named by handle.
    Engine(ProgHandle),
    /// No engine on this path: the verified program itself, interpreted
    /// host-side over [`StorageBackend::pread`] — same IR, same results,
    /// full per-hop software cost.
    Host(Arc<Program>),
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A file handle within a backend.
pub type Handle = i32;

/// One thread's view of a storage backend.
///
/// All calls advance the actor's virtual time per the backend's cost
/// model and move real bytes.
pub trait StorageBackend: Send {
    /// The backend kind.
    fn kind(&self) -> BackendKind;

    /// Opens an existing file.
    ///
    /// # Errors
    /// Path/permission errors from the underlying path.
    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle>;

    /// Positional read.
    ///
    /// # Errors
    /// Backend-path errors.
    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize>;

    /// Positional write.
    ///
    /// # Errors
    /// Backend-path errors.
    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize>;

    /// Durability barrier.
    ///
    /// # Errors
    /// Backend-path errors.
    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()>;

    /// Closes the handle.
    ///
    /// # Errors
    /// Backend-path errors.
    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()>;

    /// Chained dependent reads of `len` bytes each: read at `offset`,
    /// call `next(buffer)`; repeat at the returned offset until `None`.
    /// Returns the final buffer. Baselines loop over [`Self::pread`];
    /// XRP overrides with in-driver resubmission.
    ///
    /// # Errors
    /// Backend-path errors.
    fn chained_read(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        offset: u64,
        len: u64,
        next: &mut dyn FnMut(&[u8]) -> Option<u64>,
    ) -> SysResult<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        let mut cur = offset;
        loop {
            self.pread(ctx, h, &mut buf, cur)?;
            match next(&buf) {
                Some(n) => cur = n,
                None => return Ok(buf),
            }
        }
    }

    /// Loads an operation-IR program for [`Self::chained_read_prog`]:
    /// verify-at-load, then install wherever this backend's engine
    /// lives. The default has no engine — it verifies host-side and
    /// returns the program for userspace interpretation.
    ///
    /// # Errors
    /// `Inval` if the verifier rejects the program.
    fn prog_load(&mut self, _ctx: &mut ActorCtx, ops: &[Op]) -> SysResult<OffloadProg> {
        Program::verify(ops.to_vec())
            .map(|p| OffloadProg::Host(Arc::new(p)))
            .map_err(|_| Errno::Inval)
    }

    /// Chained read driven by a loaded program: starting at `start`
    /// (sector-aligned), each completed [`BLOCK`]-byte block is fed to
    /// the program, which either names the next absolute byte offset
    /// (`Resubmit`) or finishes the chain. Returns the final block.
    ///
    /// The default interprets the program host-side over [`Self::pread`]
    /// — one full I/O round trip per hop plus the interpreter's exact
    /// step cost — so every backend runs *the same program* and differs
    /// only in where the engine executes (§6.5 apples-to-apples).
    ///
    /// # Errors
    /// `Inval` for an engine handle on an engine-less backend, a program
    /// `Fail`, or an exhausted hop budget; backend-path errors.
    fn chained_read_prog(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        start: u64,
        prog: &OffloadProg,
        regs: [u64; bypassd_offload::NUM_REGS],
    ) -> SysResult<Vec<u8>> {
        let OffloadProg::Host(program) = prog else {
            return Err(Errno::Inval);
        };
        let mut st = ChainState::new(regs);
        let mut cur = start;
        let mut buf = vec![0u8; BLOCK];
        for _ in 0..bypassd_offload::MAX_HOPS {
            self.pread(ctx, h, &mut buf, cur)?;
            let run = run_hop(program, &mut st, &buf);
            ctx.delay(Nanos(run.steps * STEP_NS));
            match run.outcome {
                Outcome::Resubmit { offset } => cur = offset,
                Outcome::Return => return Ok(buf),
                Outcome::Fail { .. } => return Err(Errno::Inval),
            }
        }
        Err(Errno::Inval)
    }

    /// Submits an asynchronous operation; returns a token. The default
    /// executes synchronously and buffers the completion for
    /// [`Self::poll`] — only libaio genuinely overlaps (KVell, Fig. 16).
    ///
    /// # Errors
    /// Backend-path errors.
    fn submit(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        write: bool,
        offset: u64,
        len_or_data: Result<usize, Vec<u8>>,
        token: u64,
    ) -> SysResult<()> {
        let data = match len_or_data {
            Ok(len) => {
                let mut buf = vec![0u8; len];
                debug_assert!(!write);
                self.pread(ctx, h, &mut buf, offset)?;
                buf
            }
            Err(d) => {
                debug_assert!(write);
                self.pwrite(ctx, h, &d, offset)?;
                Vec::new()
            }
        };
        self.sync_completions().push((token, data));
        Ok(())
    }

    /// Collects at least `min` completions (tokens + read data).
    ///
    /// # Errors
    /// Backend-path errors.
    fn poll(&mut self, _ctx: &mut ActorCtx, _min: usize) -> SysResult<Vec<(u64, Vec<u8>)>> {
        Ok(std::mem::take(self.sync_completions()))
    }

    /// Buffer for the default synchronous `submit`/`poll` implementation.
    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)>;
}

/// Mints per-thread backends for one simulated process.
pub trait BackendFactory: Send + Sync {
    /// The backend kind.
    fn kind(&self) -> BackendKind;

    /// Creates a thread-private backend instance (untimed setup).
    fn make_thread(&self) -> Box<dyn StorageBackend>;
}
