//! BypassD: the paper's system, via UserLib. Also hosts the
//! BypassD+offload variant: the same UserLib data path, with chained
//! reads dispatched as one-submission device chains.

use std::sync::Arc;

use bypassd::{System, UserProcess, UserThread};
use bypassd_offload::Op;
use bypassd_os::{Errno, SysResult};
use bypassd_sim::engine::ActorCtx;

use crate::traits::{BackendFactory, BackendKind, Handle, OffloadProg, StorageBackend};

/// One simulated process using BypassD (threads share UserLib state but
/// own private queues and DMA buffers, §4.5.1).
pub struct BypassdFactory {
    proc: Arc<UserProcess>,
    kind: BackendKind,
}

impl BypassdFactory {
    /// Starts the process on the plain BypassD path.
    pub fn new(system: &System, uid: u32, gid: u32) -> Self {
        BypassdFactory {
            proc: UserProcess::start(system, uid, gid),
            kind: BackendKind::Bypassd,
        }
    }

    /// Starts the process with device-side chain offload enabled:
    /// program-driven chained reads go down as **one** submission each
    /// ([`UserThread::pread_chain`]); everything else is plain BypassD.
    pub fn new_offload(system: &System, uid: u32, gid: u32) -> Self {
        BypassdFactory {
            proc: UserProcess::start(system, uid, gid),
            kind: BackendKind::BypassdOffload,
        }
    }

    /// The underlying UserLib process (for op counters etc.).
    pub fn user_process(&self) -> &Arc<UserProcess> {
        &self.proc
    }
}

impl BackendFactory for BypassdFactory {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(BypassdBackend {
            thread: self.proc.thread(),
            kind: self.kind,
            completions: Vec::new(),
        })
    }
}

struct BypassdBackend {
    thread: UserThread,
    kind: BackendKind,
    completions: Vec<(u64, Vec<u8>)>,
}

impl StorageBackend for BypassdBackend {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle> {
        self.thread.open(ctx, path, writable)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.thread.pread(ctx, h, buf, offset)
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.thread.pwrite(ctx, h, data, offset)
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.thread.fsync(ctx, h)
    }

    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.thread.close(ctx, h)
    }

    fn prog_load(&mut self, ctx: &mut ActorCtx, ops: &[Op]) -> SysResult<OffloadProg> {
        if self.kind != BackendKind::BypassdOffload {
            // Plain BypassD has no device engine: verify host-side and
            // interpret chains in userspace at full per-hop cost.
            return host_verify(ops);
        }
        let kernel = Arc::clone(self.thread.process().system().kernel());
        let pid = self.thread.process().pid();
        kernel
            .sys_prog_load(ctx, pid, ops.to_vec())
            .map(OffloadProg::Engine)
    }

    fn chained_read_prog(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        start: u64,
        prog: &OffloadProg,
        regs: [u64; bypassd_offload::NUM_REGS],
    ) -> SysResult<Vec<u8>> {
        match prog {
            OffloadProg::Engine(handle) => {
                let mut buf = vec![0u8; bypassd_offload::BLOCK];
                self.thread
                    .pread_chain(ctx, h, *handle, regs, start, &mut buf)?;
                Ok(buf)
            }
            OffloadProg::Host(program) => {
                // Same default loop as the trait, spelled out here to
                // keep the borrow on `self.thread` direct.
                let mut st = bypassd_offload::ChainState::new(regs);
                let mut cur = start;
                let mut buf = vec![0u8; bypassd_offload::BLOCK];
                for _ in 0..bypassd_offload::MAX_HOPS {
                    self.thread.pread(ctx, h, &mut buf, cur)?;
                    let run = bypassd_offload::run_hop(program, &mut st, &buf);
                    ctx.delay(bypassd_sim::time::Nanos(
                        run.steps * bypassd_offload::STEP_NS,
                    ));
                    match run.outcome {
                        bypassd_offload::Outcome::Resubmit { offset } => cur = offset,
                        bypassd_offload::Outcome::Return => return Ok(buf),
                        bypassd_offload::Outcome::Fail { .. } => return Err(Errno::Inval),
                    }
                }
                Err(Errno::Inval)
            }
        }
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}

/// Host-side verify for the engine-less path.
fn host_verify(ops: &[Op]) -> SysResult<OffloadProg> {
    bypassd_offload::Program::verify(ops.to_vec())
        .map(|p| OffloadProg::Host(Arc::new(p)))
        .map_err(|_| Errno::Inval)
}
