//! BypassD: the paper's system, via UserLib.

use std::sync::Arc;

use bypassd::{System, UserProcess, UserThread};
use bypassd_os::SysResult;
use bypassd_sim::engine::ActorCtx;

use crate::traits::{BackendFactory, BackendKind, Handle, StorageBackend};

/// One simulated process using BypassD (threads share UserLib state but
/// own private queues and DMA buffers, §4.5.1).
pub struct BypassdFactory {
    proc: Arc<UserProcess>,
}

impl BypassdFactory {
    /// Starts the process.
    pub fn new(system: &System, uid: u32, gid: u32) -> Self {
        BypassdFactory {
            proc: UserProcess::start(system, uid, gid),
        }
    }

    /// The underlying UserLib process (for op counters etc.).
    pub fn user_process(&self) -> &Arc<UserProcess> {
        &self.proc
    }
}

impl BackendFactory for BypassdFactory {
    fn kind(&self) -> BackendKind {
        BackendKind::Bypassd
    }

    fn make_thread(&self) -> Box<dyn StorageBackend> {
        Box::new(BypassdBackend {
            thread: self.proc.thread(),
            completions: Vec::new(),
        })
    }
}

struct BypassdBackend {
    thread: UserThread,
    completions: Vec<(u64, Vec<u8>)>,
}

impl StorageBackend for BypassdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Bypassd
    }

    fn open(&mut self, ctx: &mut ActorCtx, path: &str, writable: bool) -> SysResult<Handle> {
        self.thread.open(ctx, path, writable)
    }

    fn pread(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        buf: &mut [u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.thread.pread(ctx, h, buf, offset)
    }

    fn pwrite(
        &mut self,
        ctx: &mut ActorCtx,
        h: Handle,
        data: &[u8],
        offset: u64,
    ) -> SysResult<usize> {
        self.thread.pwrite(ctx, h, data, offset)
    }

    fn fsync(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.thread.fsync(ctx, h)
    }

    fn close(&mut self, ctx: &mut ActorCtx, h: Handle) -> SysResult<()> {
        self.thread.close(ctx, h)
    }

    fn sync_completions(&mut self) -> &mut Vec<(u64, Vec<u8>)> {
        &mut self.completions
    }
}
