//! Cross-backend behaviour: latency ordering (the heart of Fig. 6),
//! chained-read advantage (XRP), async overlap (libaio), and the
//! SPDK-vs-BypassD protection story.

use std::sync::Arc;

use parking_lot::Mutex;

use bypassd::System;
use bypassd_backends::spdk::SpdkFactory;
use bypassd_backends::{make_factory, BackendFactory, BackendKind};
use bypassd_hw::types::Lba;
use bypassd_sim::{Nanos, Simulation};

fn system() -> System {
    System::builder().build()
}

fn measure_4k_read(sys: &System, kind: BackendKind) -> Nanos {
    sys.fs().populate("/bench", 1 << 20, 0x42).unwrap();
    let factory = make_factory(kind, sys, 0, 0);
    let out = Arc::new(Mutex::new(Nanos::ZERO));
    let o2 = Arc::clone(&out);
    let sim = Simulation::new();
    sim.spawn("t", move |ctx| {
        let mut b = factory.make_thread();
        let h = b.open(ctx, "/bench", false).unwrap();
        let mut buf = vec![0u8; 4096];
        b.pread(ctx, h, &mut buf, 0).unwrap(); // warm
        let t0 = ctx.now();
        b.pread(ctx, h, &mut buf, 4096).unwrap();
        *o2.lock() = ctx.now() - t0;
        assert!(buf.iter().all(|&x| x == 0x42), "{kind}: wrong data");
    });
    sim.run();
    let v = *out.lock();
    v
}

#[test]
fn fig6_latency_ordering_4k_read() {
    // Paper Fig. 6 ordering at 4KB: spdk < bypassd < io_uring < sync≈libaio.
    let lat: Vec<(BackendKind, Nanos)> = [
        BackendKind::Spdk,
        BackendKind::Bypassd,
        BackendKind::IoUring,
        BackendKind::Sync,
        BackendKind::Libaio,
    ]
    .into_iter()
    .map(|k| (k, measure_4k_read(&system(), k)))
    .collect();
    let get = |k: BackendKind| lat.iter().find(|(x, _)| *x == k).unwrap().1;
    let (spdk, byp, uring, sync, aio) = (
        get(BackendKind::Spdk),
        get(BackendKind::Bypassd),
        get(BackendKind::IoUring),
        get(BackendKind::Sync),
        get(BackendKind::Libaio),
    );
    assert!(spdk < byp, "spdk {spdk} !< bypassd {byp}");
    assert!(byp < uring, "bypassd {byp} !< io_uring {uring}");
    assert!(uring < sync, "io_uring {uring} !< sync {sync}");
    assert!(sync <= aio, "sync {sync} > libaio {aio}");
    // BypassD ≈ SPDK + one VBA translation (~550ns, §6.5).
    let delta = (byp - spdk).as_nanos();
    assert!(
        (300..900).contains(&delta),
        "bypassd-spdk gap = {delta}ns (expected ~550ns translation)"
    );
    // And ~25-45% below sync (the paper reports 42% for 4KB).
    let improvement = 1.0 - byp.as_nanos() as f64 / sync.as_nanos() as f64;
    assert!(
        (0.25..0.50).contains(&improvement),
        "bypassd improvement over sync = {improvement:.2}"
    );
}

#[test]
fn xrp_chained_read_beats_sync_loses_to_bypassd() {
    // 7 dependent I/Os (BPF-KV's lookup shape, Fig. 15).
    let sys = system();
    sys.fs().populate("/chain", 1 << 20, 0).unwrap();
    let chain_time = |kind: BackendKind| {
        sys.reset_virtual_time();
        let factory = make_factory(kind, &sys, 0, 0);
        let out = Arc::new(Mutex::new(Nanos::ZERO));
        let o2 = Arc::clone(&out);
        let sim = Simulation::new();
        sim.spawn("t", move |ctx| {
            let mut b = factory.make_thread();
            let h = b.open(ctx, "/chain", false).unwrap();
            let mut buf = vec![0u8; 512];
            b.pread(ctx, h, &mut buf, 0).unwrap(); // warm
            let t0 = ctx.now();
            let mut hops = 0;
            b.chained_read(ctx, h, 0, 512, &mut |_buf| {
                hops += 1;
                (hops < 7).then(|| hops * 4096)
            })
            .unwrap();
            *o2.lock() = ctx.now() - t0;
            // Release the open so later backends can fmap the same file
            // (a lingering kernel-interface open denies fmap, §4.5.2).
            b.close(ctx, h).unwrap();
        });
        sim.run();
        let v = *out.lock();
        v
    };
    let sync = chain_time(BackendKind::Sync);
    let xrp = chain_time(BackendKind::Xrp);
    let byp = chain_time(BackendKind::Bypassd);
    let spdk = chain_time(BackendKind::Spdk);
    assert!(xrp < sync, "xrp {xrp} !< sync {sync}");
    assert!(byp < xrp, "bypassd {byp} !< xrp {xrp} (paper §6.5)");
    assert!(spdk < byp, "spdk {spdk} !< bypassd {byp}");
    // BypassD pays ~550ns × 7 ≈ 4µs more than SPDK (paper §6.5).
    let gap = (byp - spdk).as_micros_f64();
    assert!(
        (2.0..6.0).contains(&gap),
        "bypassd-spdk chain gap = {gap}us"
    );
}

#[test]
fn libaio_overlaps_with_submit_poll() {
    let sys = system();
    sys.fs().populate("/a", 1 << 20, 1).unwrap();
    let factory = bypassd_backends::LibaioFactory::new(&sys, 0, 0, 64);
    let out = Arc::new(Mutex::new((Nanos::ZERO, Nanos::ZERO)));
    let o2 = Arc::clone(&out);
    let sim = Simulation::new();
    sim.spawn("t", move |ctx| {
        let mut b = factory.make_thread();
        let h = b.open(ctx, "/a", false).unwrap();
        // Sequential: 8 preads.
        let t0 = ctx.now();
        let mut buf = vec![0u8; 4096];
        for i in 0..8 {
            b.pread(ctx, h, &mut buf, i * 4096).unwrap();
        }
        let seq = ctx.now() - t0;
        // Batched: 8 submits + poll.
        let t1 = ctx.now();
        for i in 0..8u64 {
            b.submit(ctx, h, false, i * 4096, Ok(4096), i).unwrap();
        }
        let mut got = 0;
        while got < 8 {
            let evs = b.poll(ctx, 8 - got).unwrap();
            for (_, data) in &evs {
                assert!(data.iter().all(|&x| x == 1));
            }
            got += evs.len();
        }
        let batched = ctx.now() - t1;
        *o2.lock() = (seq, batched);
    });
    sim.run();
    let (seq, batched) = *out.lock();
    // Per-iocb kernel work (~3.8µs) stays serial on the submitting core,
    // so the win is bounded: device time overlaps, CPU time does not.
    assert!(
        batched < seq * 2 / 3,
        "batched ({batched}) should overlap device time vs sequential ({seq})"
    );
    assert!(
        batched > Nanos(8 * 3_000),
        "batched ({batched}) cannot beat the serial CPU floor"
    );
}

#[test]
fn default_submit_poll_is_synchronous_but_correct() {
    let sys = system();
    sys.fs().populate("/s", 64 * 1024, 9).unwrap();
    let factory = make_factory(BackendKind::Bypassd, &sys, 0, 0);
    let sim = Simulation::new();
    sim.spawn("t", move |ctx| {
        let mut b = factory.make_thread();
        let h = b.open(ctx, "/s", false).unwrap();
        for i in 0..4u64 {
            b.submit(ctx, h, false, i * 4096, Ok(4096), 100 + i)
                .unwrap();
        }
        let evs = b.poll(ctx, 4).unwrap();
        assert_eq!(evs.len(), 4);
        let mut tokens: Vec<u64> = evs.iter().map(|(t, _)| *t).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![100, 101, 102, 103]);
        assert!(evs.iter().all(|(_, d)| d.iter().all(|&x| x == 9)));
    });
    sim.run();
}

#[test]
fn spdk_reads_foreign_blocks_bypassd_cannot() {
    // The protection story (§5.3): a secret 0600 file owned by uid 1 is
    // readable by any SPDK process (no checks exist); a BypassD process
    // with the wrong uid cannot open it, and even with a stolen LBA its
    // user queues reject raw-LBA commands.
    let sys = system();
    let fs = sys.fs();
    fs.create("/secret", 0o600, 1, 1).unwrap();
    let ino = fs.lookup("/secret").unwrap();
    fs.allocate(ino, 0, 4096).unwrap();
    let (segs, _) = fs.resolve(ino, 0, 4096).unwrap();
    let secret_lba: Lba = segs[0].0.unwrap();
    sys.device().write_raw(secret_lba, &[0x53u8; 4096]);

    // SPDK process (uid irrelevant — there are no checks) reads it.
    let sim = Simulation::new();
    let sys2 = sys.clone();
    sim.spawn("spdk", move |ctx| {
        let factory = SpdkFactory::new(&sys2);
        let mut raw = factory.make_typed_thread();
        let mut out = vec![0u8; 4096];
        raw.read_lba(ctx, secret_lba, 8, &mut out).unwrap();
        assert!(
            out.iter().all(|&b| b == 0x53),
            "SPDK must be able to read any block (the hole BypassD closes)"
        );
    });
    sim.run();

    // The BypassD process with uid 1000: open is refused by the kernel,
    // and the device refuses raw LBA commands on its PASID-bound queue.
    let sim = Simulation::new();
    let sys3 = sys.clone();
    sim.spawn("bypassd", move |ctx| {
        let proc = bypassd::UserProcess::start(&sys3, 1000, 1000);
        let mut t = proc.thread();
        let err = t.open(ctx, "/secret", false).unwrap_err();
        assert_eq!(err, bypassd_os::Errno::Perm);

        // Even issuing a raw LBA command on a user queue fails.
        use bypassd_ssd::device::{BlockAddr, Command};
        use bypassd_ssd::dma::DmaBuffer;
        use bypassd_ssd::queue::NvmeStatus;
        let pasid = sys3.kernel().pasid_of(proc.pid());
        let q = sys3.device().create_queue(Some(pasid), 8);
        let dma = DmaBuffer::alloc(sys3.mem(), 4096);
        let (st, _) = sys3.device().execute(
            q,
            Command::read(BlockAddr::Lba(secret_lba), 8, &dma),
            ctx.now(),
        );
        assert_eq!(
            st,
            NvmeStatus::InvalidField,
            "user queues must reject raw LBA addressing"
        );
    });
    sim.run();
}
