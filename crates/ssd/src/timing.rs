//! Media/contention timing model, calibrated to the Intel Optane P5800X.
//!
//! Calibration targets (paper §2, §6):
//! * Table 1: 4 KB read device time ≈ **4.02 µs** at QD1;
//! * Fig. 9: random 4 KB read saturation ≈ **1.5 M IOPS**;
//! * Fig. 6: single-thread 128 KB read bandwidth ≈ 3.5 GB/s once software
//!   costs are added (device-side transfer at ~7.2 GB/s);
//! * Fig. 10: aggregate write bandwidth plateau ≈ **4.4 GB/s**.
//!
//! Model: the device has `channels` independent media channels and one
//! shared transfer bus per direction. A command occupies the
//! earliest-free channel for `base + transfer` and serialises its
//! transfer on the bus; completion is when both finish. This yields QD1
//! latency = base + size/bw and the right saturation behaviour, with
//! round-robin-ish fairness across queues emerging from FIFO arrival in
//! virtual time (the paper notes NVMe devices round-robin across queues).

use bypassd_sim::time::Nanos;

/// Timing parameters of the device media.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediaTiming {
    /// Fixed media latency of a read.
    pub read_base: Nanos,
    /// Fixed media latency of a write.
    pub write_base: Nanos,
    /// Per-request read transfer bandwidth (bytes/s).
    pub read_bw: f64,
    /// Per-request write transfer bandwidth (bytes/s).
    pub write_bw: f64,
    /// Aggregate read-bus bandwidth (bytes/s).
    pub read_bus_bw: f64,
    /// Aggregate write-bus bandwidth (bytes/s).
    pub write_bus_bw: f64,
    /// Independent media channels (device internal parallelism).
    pub channels: usize,
    /// Cost of a flush command.
    pub flush_cost: Nanos,
    /// Cost of a Write Zeroes command (a deallocate-style metadata op,
    /// far cheaper than writing actual zero data).
    pub write_zeroes_cost: Nanos,
}

impl Default for MediaTiming {
    fn default() -> Self {
        MediaTiming {
            read_base: Nanos(3450),
            write_base: Nanos(3450),
            read_bw: 7.2e9,
            write_bw: 6.2e9,
            read_bus_bw: 7.2e9,
            write_bus_bw: 4.4e9,
            channels: 6,
            flush_cost: Nanos(5_000),
            write_zeroes_cost: Nanos(4_000),
        }
    }
}

impl MediaTiming {
    /// Service time (media + transfer) of one command at QD1. The
    /// transfer term is whichever of the per-request and bus rates is
    /// slower, matching [`DeviceTimer::schedule`] on an idle device.
    pub fn service(&self, write: bool, bytes: u64) -> Nanos {
        let base = if write {
            self.write_base
        } else {
            self.read_base
        };
        base + self
            .transfer(write, bytes)
            .max(self.bus_occupancy(write, bytes))
    }

    fn transfer(&self, write: bool, bytes: u64) -> Nanos {
        let bw = if write { self.write_bw } else { self.read_bw };
        Nanos((bytes as f64 / bw * 1e9) as u64)
    }

    fn bus_occupancy(&self, write: bool, bytes: u64) -> Nanos {
        let bw = if write {
            self.write_bus_bw
        } else {
            self.read_bus_bw
        };
        Nanos((bytes as f64 / bw * 1e9) as u64)
    }
}

/// Busy intervals on one direction bus, with gap backfill.
///
/// The eager completion model books commands in *submission* order, but
/// QoS pacing gives them *future* arrivals; a plain free-at cursor would
/// let a deep burst's late arrivals block an unrelated command whose
/// transfer fits in an earlier idle gap. First-fit over a bounded,
/// sorted interval list fixes that while keeping the bandwidth cap.
#[derive(Debug, Default)]
struct BusLedger {
    /// Sorted, disjoint (start, end) busy intervals.
    busy: Vec<(Nanos, Nanos)>,
}

impl BusLedger {
    /// Old intervals beyond this are pruned; their gaps are in the past
    /// relative to simulation progress, so losing them only costs a
    /// theoretical backfill slot.
    const MAX_INTERVALS: usize = 128;

    /// Reserves `occ` of bus time at the earliest instant ≥ `earliest`.
    fn reserve(&mut self, earliest: Nanos, occ: Nanos) -> Nanos {
        let mut start = earliest;
        let mut pos = 0;
        for &(s, e) in &self.busy {
            if start + occ <= s {
                break;
            }
            pos += 1;
            if e > start {
                start = e;
            }
        }
        self.busy.insert(pos, (start, start + occ));
        // Coalesce with touching neighbours to keep the list short.
        if pos + 1 < self.busy.len() && self.busy[pos].1 == self.busy[pos + 1].0 {
            self.busy[pos].1 = self.busy[pos + 1].1;
            self.busy.remove(pos + 1);
        }
        if pos > 0 && self.busy[pos - 1].1 == self.busy[pos].0 {
            self.busy[pos - 1].1 = self.busy[pos].1;
            self.busy.remove(pos);
        }
        if self.busy.len() > Self::MAX_INTERVALS {
            self.busy.remove(0);
        }
        start
    }
}

/// The device's shared contention ledger.
#[derive(Debug)]
pub struct DeviceTimer {
    timing: MediaTiming,
    channel_free: Vec<Nanos>,
    read_bus_free: Nanos,
    write_bus_free: Nanos,
    /// Backfilling per-tenant bus ledgers for the QoS-paced path (the
    /// cursor pair above serves the default path and stays
    /// bit-identical). The paced bus is weighted time-division
    /// multiplexed: a tenant's fair fraction of bus bandwidth is already
    /// priced into its lane pacing, so transfers of *different* tenants
    /// do not collide here — only a tenant's own transfers serialize,
    /// keyed by an opaque tenant id.
    paced_buses: std::collections::HashMap<u64, (BusLedger, BusLedger)>,
}

impl DeviceTimer {
    /// Creates a ledger for the given media parameters.
    pub fn new(timing: MediaTiming) -> Self {
        DeviceTimer {
            channel_free: vec![Nanos::ZERO; timing.channels],
            timing,
            read_bus_free: Nanos::ZERO,
            write_bus_free: Nanos::ZERO,
            paced_buses: std::collections::HashMap::new(),
        }
    }

    /// The media parameters in force.
    pub fn timing(&self) -> MediaTiming {
        self.timing
    }

    /// Schedules a command arriving at `arrival` and returns its
    /// completion time.
    pub fn schedule(&mut self, arrival: Nanos, write: bool, bytes: u64) -> Nanos {
        // Earliest-free channel (deterministic tie-break by index).
        let (idx, &free) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .expect("no channels");
        let start = arrival.max(free);
        let base = if write {
            self.timing.write_base
        } else {
            self.timing.read_base
        };
        let transfer = self.timing.transfer(write, bytes);
        let bus_occ = self.timing.bus_occupancy(write, bytes);

        let done = if write {
            // Host→device transfer first, then media program.
            let bus_start = start.max(self.write_bus_free);
            let bus_done = bus_start + bus_occ;
            self.write_bus_free = bus_done;
            bus_start.max(start) + transfer.max(bus_occ) + base
        } else {
            // Media read first, then device→host transfer.
            let media_done = start + base;
            let bus_start = media_done.max(self.read_bus_free);
            let bus_done = bus_start + bus_occ;
            self.read_bus_free = bus_done;
            bus_start + transfer.max(bus_occ)
        };
        self.channel_free[idx] = done;
        done
    }

    /// Schedules a command whose channel occupancy is already accounted
    /// for elsewhere (QoS admission books per-tenant lanes instead of the
    /// shared channel ledger). Only the tenant's own direction bus is
    /// contended here (`tenant_key` names it); `start` is the paced
    /// arrival chosen by the arbiter.
    pub fn schedule_paced(
        &mut self,
        start: Nanos,
        write: bool,
        bytes: u64,
        tenant_key: u64,
    ) -> Nanos {
        let base = if write {
            self.timing.write_base
        } else {
            self.timing.read_base
        };
        let transfer = self.timing.transfer(write, bytes);
        let bus_occ = self.timing.bus_occupancy(write, bytes);
        let (read_bus, write_bus) = self.paced_buses.entry(tenant_key).or_default();
        if write {
            let bus_start = write_bus.reserve(start, bus_occ);
            bus_start + transfer.max(bus_occ) + base
        } else {
            let media_done = start + base;
            let bus_start = read_bus.reserve(media_done, bus_occ);
            bus_start + transfer.max(bus_occ)
        }
    }

    /// Earliest-free channel index (deterministic tie-break by index)
    /// without reserving it — offload chains pick a channel once and pin
    /// every hop to it with [`DeviceTimer::schedule_hop`], so one chain
    /// equals one channel occupancy, exactly like one long command.
    pub fn pick_channel(&self) -> usize {
        self.channel_free
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .map(|(i, _)| i)
            .expect("no channels")
    }

    /// Schedules one chain hop's media read on the chain's pinned
    /// channel. Device-internal: the block lands in the on-device chunk
    /// buffer, so no host-transfer bus is reserved — charging hops on
    /// the shared bus cursor would head-of-line-block every
    /// later-submitted chain behind this chain's whole hop sequence.
    /// Only the final block crosses to the host, via
    /// [`DeviceTimer::chain_return_transfer`].
    pub fn schedule_hop(&mut self, channel: usize, arrival: Nanos) -> Nanos {
        let start = arrival.max(self.channel_free[channel]);
        let done = start + self.timing.read_base;
        self.channel_free[channel] = done;
        done
    }

    /// Host transfer of a chain's final block on the shared read bus
    /// (the default, non-paced path).
    pub fn chain_return_transfer(&mut self, media_done: Nanos, bytes: u64) -> Nanos {
        let transfer = self.timing.transfer(false, bytes);
        let bus_occ = self.timing.bus_occupancy(false, bytes);
        let bus_start = media_done.max(self.read_bus_free);
        self.read_bus_free = bus_start + bus_occ;
        bus_start + transfer.max(bus_occ)
    }

    /// Host transfer of a chain's final block on the tenant's paced read
    /// bus (the QoS path — pacing priced the chain's admission, and only
    /// the tenant's own transfers contend).
    pub fn chain_return_transfer_paced(
        &mut self,
        media_done: Nanos,
        bytes: u64,
        tenant_key: u64,
    ) -> Nanos {
        let transfer = self.timing.transfer(false, bytes);
        let bus_occ = self.timing.bus_occupancy(false, bytes);
        let (read_bus, _) = self.paced_buses.entry(tenant_key).or_default();
        let bus_start = read_bus.reserve(media_done, bus_occ);
        bus_start + transfer.max(bus_occ)
    }

    /// Schedules a fixed-service command (e.g. Write Zeroes) on the
    /// earliest-free channel.
    pub fn schedule_fixed(&mut self, arrival: Nanos, service: Nanos) -> Nanos {
        let (idx, &free) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .expect("no channels");
        let done = arrival.max(free) + service;
        self.channel_free[idx] = done;
        done
    }

    /// Clears the contention ledger. Call between independent
    /// simulations that reuse one device: the ledger stores *absolute*
    /// virtual times, so a new simulation starting at t=0 would otherwise
    /// see the previous run's tail as a phantom backlog.
    pub fn reset(&mut self) {
        self.channel_free.fill(Nanos::ZERO);
        self.read_bus_free = Nanos::ZERO;
        self.write_bus_free = Nanos::ZERO;
        self.paced_buses.clear();
    }

    /// Schedules a flush arriving at `arrival`, which completes after the
    /// device drains (approximated by all channels going idle).
    pub fn schedule_flush(&mut self, arrival: Nanos) -> Nanos {
        let drain = self.channel_free.iter().copied().fold(arrival, Nanos::max);
        drain + self.timing.flush_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qd1_4k_read_close_to_paper_device_time() {
        let mut t = DeviceTimer::new(MediaTiming::default());
        let done = t.schedule(Nanos::ZERO, false, 4096);
        // Paper Table 1: ~4020ns.
        let ns = done.as_nanos();
        assert!((3900..=4150).contains(&ns), "4KB read service = {ns}ns");
    }

    #[test]
    fn sequential_qd1_requests_do_not_queue() {
        let mut t = DeviceTimer::new(MediaTiming::default());
        let first = t.schedule(Nanos::ZERO, false, 4096);
        let second = t.schedule(first + Nanos(1000), false, 4096);
        let lat = second - (first + Nanos(1000));
        assert_eq!(
            lat,
            t.schedule(second + Nanos::from_secs(1), false, 4096) - (second + Nanos::from_secs(1))
        );
    }

    #[test]
    fn read_iops_saturates_near_1_5m() {
        let mut t = DeviceTimer::new(MediaTiming::default());
        // Open-loop flood of 4KB reads at time 0.
        let n = 50_000u64;
        let mut last = Nanos::ZERO;
        for _ in 0..n {
            last = last.max(t.schedule(Nanos::ZERO, false, 4096));
        }
        let iops = n as f64 / last.as_secs_f64();
        assert!(
            (1.2e6..1.8e6).contains(&iops),
            "4KB read saturation = {iops:.0} IOPS"
        );
    }

    #[test]
    fn large_read_bandwidth_bus_bound() {
        let mut t = DeviceTimer::new(MediaTiming::default());
        let n = 2_000u64;
        let mut last = Nanos::ZERO;
        for _ in 0..n {
            last = last.max(t.schedule(Nanos::ZERO, false, 131_072));
        }
        let gbps = (n * 131_072) as f64 / 1e9 / last.as_secs_f64();
        assert!(
            (6.5..7.5).contains(&gbps),
            "128KB read agg bw = {gbps:.2} GB/s"
        );
    }

    #[test]
    fn write_bandwidth_plateaus_near_4_4() {
        let mut t = DeviceTimer::new(MediaTiming::default());
        let n = 5_000u64;
        let mut last = Nanos::ZERO;
        for _ in 0..n {
            last = last.max(t.schedule(Nanos::ZERO, true, 131_072));
        }
        let gbps = (n * 131_072) as f64 / 1e9 / last.as_secs_f64();
        assert!((4.0..4.8).contains(&gbps), "write agg bw = {gbps:.2} GB/s");
    }

    #[test]
    fn flush_waits_for_drain() {
        let mut t = DeviceTimer::new(MediaTiming::default());
        let w = t.schedule(Nanos::ZERO, true, 4096);
        let f = t.schedule_flush(Nanos(1));
        assert!(f > w, "flush completed before outstanding write");
    }

    #[test]
    fn service_helper_matches_schedule_idle() {
        let timing = MediaTiming::default();
        let mut t = DeviceTimer::new(timing);
        let done = t.schedule(Nanos::ZERO, false, 65536);
        assert_eq!(done, timing.service(false, 65536));
    }
}
