//! Sparse sector store: the device's persistent media.
//!
//! Data is stored in 4 KB chunks keyed by device block; blocks that were
//! never written read back as zeroes without allocating memory, which is
//! what lets large simulated datasets stay affordable.

use bypassd_hw::types::{Lba, PAGE_SIZE, SECTORS_PER_PAGE, SECTOR_SIZE};
use std::collections::HashMap;

/// The device media: a sparse map of 4 KB blocks.
#[derive(Default)]
pub struct SectorStore {
    blocks: HashMap<u64, Box<[u8]>>,
    capacity_sectors: u64,
}

impl SectorStore {
    /// Creates a store with the given capacity in 512 B sectors.
    pub fn new(capacity_sectors: u64) -> Self {
        SectorStore {
            blocks: HashMap::new(),
            capacity_sectors,
        }
    }

    /// Capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.capacity_sectors
    }

    /// True if the range `[lba, lba+sectors)` is within the device.
    pub fn in_range(&self, lba: Lba, sectors: u64) -> bool {
        sectors > 0
            && lba
                .0
                .checked_add(sectors)
                .is_some_and(|end| end <= self.capacity_sectors)
    }

    /// Reads `buf.len()` bytes starting at sector `lba`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or `buf` is not
    /// sector-multiple sized.
    pub fn read(&self, lba: Lba, buf: &mut [u8]) {
        assert!(
            (buf.len() as u64).is_multiple_of(SECTOR_SIZE),
            "unaligned read size"
        );
        assert!(
            self.in_range(lba, buf.len() as u64 / SECTOR_SIZE),
            "read out of device range"
        );
        let mut done = 0usize;
        let mut pos = lba.byte_offset();
        while done < buf.len() {
            let block = pos / PAGE_SIZE;
            let off = (pos % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            match self.blocks.get(&block) {
                Some(data) => buf[done..done + n].copy_from_slice(&data[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pos += n as u64;
        }
    }

    /// Writes `data` starting at sector `lba`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or `data` is not
    /// sector-multiple sized.
    pub fn write(&mut self, lba: Lba, data: &[u8]) {
        assert!(
            (data.len() as u64).is_multiple_of(SECTOR_SIZE),
            "unaligned write size"
        );
        assert!(
            self.in_range(lba, data.len() as u64 / SECTOR_SIZE),
            "write out of device range"
        );
        let mut done = 0usize;
        let mut pos = lba.byte_offset();
        while done < data.len() {
            let block = pos / PAGE_SIZE;
            let off = (pos % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(data.len() - done);
            let chunk = self
                .blocks
                .entry(block)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            chunk[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }

    /// Writes zeroes over `[lba, lba+sectors)`, dropping whole blocks from
    /// the map when possible (keeps the store sparse).
    pub fn write_zeroes(&mut self, lba: Lba, sectors: u64) {
        assert!(self.in_range(lba, sectors), "zero out of device range");
        let mut remaining = sectors;
        let mut cur = lba;
        while remaining > 0 {
            let block = cur.block();
            let off_sectors = cur.0 % SECTORS_PER_PAGE;
            let n = (SECTORS_PER_PAGE - off_sectors).min(remaining);
            if n == SECTORS_PER_PAGE {
                self.blocks.remove(&block);
            } else if let Some(chunk) = self.blocks.get_mut(&block) {
                let start = (off_sectors * SECTOR_SIZE) as usize;
                let len = (n * SECTOR_SIZE) as usize;
                chunk[start..start + len].fill(0);
            }
            cur = cur.advance(n);
            remaining -= n;
        }
    }

    /// Number of materialised 4 KB blocks (memory accounting).
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Deterministic FNV digest of the logical contents: blocks visited
    /// in index order, all-zero blocks skipped (so a sparse hole and an
    /// explicitly zeroed block hash identically).
    pub fn fingerprint(&self) -> u64 {
        let mut keys: Vec<u64> = self.blocks.keys().copied().collect();
        keys.sort_unstable();
        let mut h = bypassd_sim::rng::Fnv64::new();
        for k in keys {
            let data = &self.blocks[&k];
            if data.iter().all(|&b| b == 0) {
                continue;
            }
            h.write_u64(k);
            h.write(data);
        }
        h.finish()
    }
}

impl std::fmt::Debug for SectorStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectorStore")
            .field("capacity_sectors", &self.capacity_sectors)
            .field("resident_blocks", &self.blocks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SectorStore {
        SectorStore::new(1 << 20) // 512 MB
    }

    #[test]
    fn unwritten_reads_zero_without_allocating() {
        let s = store();
        let mut buf = [0xAAu8; 1024];
        s.read(Lba(100), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(s.resident_blocks(), 0);
    }

    #[test]
    fn write_read_roundtrip_aligned() {
        let mut s = store();
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        s.write(Lba::from_block(3), &data);
        let mut buf = vec![0u8; 4096];
        s.read(Lba::from_block(3), &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn sector_granular_write_within_block() {
        let mut s = store();
        s.write(Lba(10), &[7u8; 512]);
        let mut buf = vec![0u8; 4096];
        s.read(Lba::from_block(1), &mut buf); // sectors 8..16
        assert!(buf[..1024].iter().all(|&b| b == 0));
        assert!(buf[1024..1536].iter().all(|&b| b == 7));
        assert!(buf[1536..].iter().all(|&b| b == 0));
    }

    #[test]
    fn cross_block_write() {
        let mut s = store();
        let data = vec![9u8; 8192 + 512];
        s.write(Lba(6), &data); // starts mid-block, spans 3 blocks
        let mut buf = vec![0u8; 8192 + 512];
        s.read(Lba(6), &mut buf);
        assert_eq!(buf, data);
        assert_eq!(s.resident_blocks(), 3);
    }

    #[test]
    fn write_zeroes_frees_whole_blocks() {
        let mut s = store();
        s.write(Lba::from_block(5), &[1u8; 8192]); // blocks 5,6
        assert_eq!(s.resident_blocks(), 2);
        s.write_zeroes(Lba::from_block(5), 8);
        assert_eq!(s.resident_blocks(), 1);
        let mut buf = [1u8; 4096];
        s.read(Lba::from_block(5), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_zeroes_partial_block() {
        let mut s = store();
        s.write(Lba::from_block(2), &[3u8; 4096]);
        s.write_zeroes(Lba::from_block(2).advance(2), 2); // sectors 2,3
        let mut buf = [0u8; 4096];
        s.read(Lba::from_block(2), &mut buf);
        assert!(buf[..1024].iter().all(|&b| b == 3));
        assert!(buf[1024..2048].iter().all(|&b| b == 0));
        assert!(buf[2048..].iter().all(|&b| b == 3));
    }

    #[test]
    fn in_range_checks() {
        let s = SectorStore::new(100);
        assert!(s.in_range(Lba(0), 100));
        assert!(!s.in_range(Lba(0), 101));
        assert!(!s.in_range(Lba(100), 1));
        assert!(!s.in_range(Lba(0), 0));
        assert!(!s.in_range(Lba(u64::MAX), 2));
    }

    #[test]
    #[should_panic(expected = "out of device range")]
    fn out_of_range_write_panics() {
        let mut s = SectorStore::new(8);
        s.write(Lba(8), &[0u8; 512]);
    }
}
