//! The NVMe device: command processing over queue pairs.
//!
//! Two command addressing modes exist (§4.3):
//!
//! * **LBA commands** — the pre-BypassD world: allowed only on queues with
//!   no PASID (kernel driver queues, or an SPDK process that has claimed
//!   the whole device). User queues may *not* issue LBA commands; that is
//!   precisely the protection SPDK lacks.
//! * **VBA commands** — BypassD: allowed only on PASID-bound user queues.
//!   The device sends the VBA, size, access kind and the queue's PASID to
//!   the IOMMU via ATS. For **reads**, translation is serialised before
//!   media access (the device needs block addresses first). For
//!   **writes**, translation overlaps the host→device data transfer, so
//!   writes see no translation latency (§4.3).
//!
//! Translation faults complete the command with an error status instead of
//! touching media — the hook that makes kernel revocation effective (§3.6).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bypassd_faults::plane::{FaultPlane, WriteKind, WriteVerdict};
use bypassd_hw::iommu::{AccessKind, Iommu};
use bypassd_hw::types::{DevId, Lba, Pasid, Vba, SECTOR_SIZE};
use bypassd_offload::{
    run_hop, ChainSpec, ChainState, Outcome, ProgHandle, Program, BLOCK, MAX_HOPS, STEP_NS,
    TRAP_HOPS,
};
use bypassd_qos::{QosArbiter, QosConfig, Tenant, TenantShare, TenantStats};
use bypassd_sim::time::Nanos;
use bypassd_trace::{DeviceRecord, Metric, MetricSource, Recorder, TraceOp, WalkLevel};

use crate::atc::{AtcStats, AtsCache, DEFAULT_ATC_CAPACITY};
use crate::dma::DmaBuffer;
use crate::queue::{Completion, NvmeStatus, QueueId, QueuePair};
use crate::store::SectorStore;
use crate::timing::{DeviceTimer, MediaTiming};

/// NVMe opcode subset used by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Read sectors into the DMA buffer.
    Read,
    /// Write sectors from the DMA buffer.
    Write,
    /// Flush the device write path.
    Flush,
    /// Write zeroes without a data buffer (used for block zeroing on
    /// allocation, §4.1).
    WriteZeroes,
}

/// How a command addresses the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAddr {
    /// Raw logical block address (kernel / SPDK paths).
    Lba(Lba),
    /// Virtual block address, translated by the IOMMU (BypassD path).
    Vba(Vba),
}

/// One I/O command.
#[derive(Debug)]
pub struct Command<'a> {
    /// Operation.
    pub opcode: Opcode,
    /// Target address (ignored for `Flush`).
    pub addr: BlockAddr,
    /// Sector count (ignored for `Flush`).
    pub sectors: u32,
    /// Data buffer (required for `Read`/`Write`).
    pub dma: Option<&'a DmaBuffer>,
    /// Byte offset into the DMA buffer.
    pub dma_offset: usize,
    /// Offload chain: run this verified program on every completed block
    /// and follow its `Resubmit` offsets device-side. Only valid on
    /// single-sector VBA reads from a user queue; every hop is still
    /// IOMMU-translated under the queue's PASID.
    pub chain: Option<ChainSpec>,
}

impl<'a> Command<'a> {
    /// A read of `sectors` sectors into `dma` at offset 0.
    pub fn read(addr: BlockAddr, sectors: u32, dma: &'a DmaBuffer) -> Self {
        Command {
            opcode: Opcode::Read,
            addr,
            sectors,
            dma: Some(dma),
            dma_offset: 0,
            chain: None,
        }
    }

    /// A single-sector chain read: the device reads one block at `vba`,
    /// runs `spec`'s program over it, and either follows its `Resubmit`
    /// offsets (relative to `spec.base_vba`) on the same channel or
    /// completes with the final block DMA'd into `dma`. One submission,
    /// one completion, however many hops the chain takes.
    pub fn chain_read(vba: Vba, dma: &'a DmaBuffer, spec: ChainSpec) -> Self {
        Command {
            opcode: Opcode::Read,
            addr: BlockAddr::Vba(vba),
            sectors: 1,
            dma: Some(dma),
            dma_offset: 0,
            chain: Some(spec),
        }
    }

    /// A write of `sectors` sectors from `dma` at offset 0.
    pub fn write(addr: BlockAddr, sectors: u32, dma: &'a DmaBuffer) -> Self {
        Command {
            opcode: Opcode::Write,
            addr,
            sectors,
            dma: Some(dma),
            dma_offset: 0,
            chain: None,
        }
    }

    /// A flush.
    pub fn flush() -> Self {
        Command {
            opcode: Opcode::Flush,
            addr: BlockAddr::Lba(Lba(0)),
            sectors: 0,
            dma: None,
            dma_offset: 0,
            chain: None,
        }
    }

    /// A write-zeroes over `sectors` sectors.
    pub fn write_zeroes(addr: BlockAddr, sectors: u32) -> Self {
        Command {
            opcode: Opcode::WriteZeroes,
            addr,
            sectors,
            dma: None,
            dma_offset: 0,
            chain: None,
        }
    }
}

/// Submission failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue has `depth` commands outstanding.
    QueueFull,
    /// No such queue.
    UnknownQueue,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue full"),
            SubmitError::UnknownQueue => f.write_str("unknown queue"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate device counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeviceStats {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Bytes read from media.
    pub read_bytes: u64,
    /// Bytes written to media.
    pub written_bytes: u64,
    /// Flush commands.
    pub flushes: u64,
    /// VBA translation faults surfaced as failed completions.
    pub translation_faults: u64,
    /// Device-side ATC hits (0 unless the ATC ablation is on).
    pub atc_hits: u64,
    /// Device-side ATC misses.
    pub atc_misses: u64,
    /// ATS shootdowns that reached the device cache.
    pub atc_shootdowns: u64,
    /// Commands delayed by a tenant's token-bucket rate limit (QoS).
    pub qos_throttled: u64,
    /// Commands delayed by fair-share pacing (QoS).
    pub qos_deferred: u64,
    /// Offload chains completed (any status).
    pub chains: u64,
    /// Media reads performed inside chains (first hop included).
    pub chain_hops: u64,
    /// Chains aborted by a program `Fail` or an engine trap.
    pub chain_faults: u64,
}

/// Reusable buffers for the steady-state command path. They live under
/// the device state lock, so one set serves every queue; capacity grows
/// to the largest request seen and is then reused allocation-free.
#[derive(Default)]
struct DevScratch {
    /// Coalesced LBA extents of the command being processed.
    extents: Vec<(Lba, u32)>,
    /// Staging chunk for media ↔ DMA data movement.
    chunk: Vec<u8>,
}

struct DevState {
    store: SectorStore,
    timer: DeviceTimer,
    queues: std::collections::HashMap<QueueId, QueuePair>,
    io_bufs: DevScratch,
    stats: DeviceStats,
    /// QoS enforcement + per-tenant accounting. Accounting is always on
    /// (it never moves virtual time); pacing only when the config
    /// enables it, so the default data path stays bit-identical.
    qos: QosArbiter,
    /// Flight recorder, when the system wired one in. Recording is
    /// passive: it never touches `timer`, so traced runs keep identical
    /// virtual times.
    recorder: Option<Arc<Recorder>>,
    /// Verified offload programs, installed by the kernel at
    /// `prog_attach` time. `Arc` so a chain can execute the program
    /// while the table (and the rest of the device state) stays mutable.
    programs: std::collections::HashMap<ProgHandle, Arc<Program>>,
    next_prog: u32,
    /// Fault-injection interposer. Idle by default (one relaxed atomic
    /// load per media write); crash campaigns install a shared plane via
    /// [`NvmeDevice::set_fault_plane`].
    faults: Arc<FaultPlane>,
}

/// Per-command stage latencies, filled in by `process_inner` as the
/// command crosses each pipeline step and flushed to the recorder by
/// `process` — including on early-return error paths, which leave the
/// later stages at zero.
#[derive(Default, Clone, Copy)]
struct StageScratch {
    qos_delay: Nanos,
    throttled: bool,
    deferred: bool,
    walk: Option<WalkLevel>,
    translate: Nanos,
    channel_wait: Nanos,
    service: Nanos,
}

/// A simulated NVMe SSD.
///
/// Clone-free: wrap in `Arc` and share between the kernel driver, UserLib
/// instances and SPDK.
pub struct NvmeDevice {
    id: DevId,
    iommu: Arc<Mutex<Iommu>>,
    /// Device-side ATS translation cache (ablation, off by default).
    /// Separate from `state` so IOMMU shootdowns never touch the device
    /// lock (lock order: IOMMU → ATC; the device probes the ATC before
    /// taking the IOMMU lock).
    atc: Arc<AtsCache>,
    state: Mutex<DevState>,
    next_qid: AtomicU32,
}

impl NvmeDevice {
    /// Creates a device of `capacity_sectors` sectors with the given
    /// media timing, attached to `iommu` for ATS.
    pub fn new(
        id: DevId,
        capacity_sectors: u64,
        timing: MediaTiming,
        iommu: Arc<Mutex<Iommu>>,
    ) -> Arc<Self> {
        let atc = Arc::new(AtsCache::new(DEFAULT_ATC_CAPACITY));
        // Register for ATS shootdowns so kernel invalidations (detach,
        // revocation, unregister) also drop device-cached translations.
        iommu.lock().register_ats_sink(atc.clone());
        Arc::new(NvmeDevice {
            id,
            iommu,
            atc,
            state: Mutex::new(DevState {
                store: SectorStore::new(capacity_sectors),
                timer: DeviceTimer::new(timing),
                queues: std::collections::HashMap::new(),
                io_bufs: DevScratch::default(),
                stats: DeviceStats::default(),
                qos: QosArbiter::new(QosConfig::default(), timing.channels),
                recorder: None,
                programs: std::collections::HashMap::new(),
                next_prog: 1,
                faults: Arc::new(FaultPlane::new()),
            }),
            next_qid: AtomicU32::new(1),
        })
    }

    /// This device's ID (compared against FTE DevIDs by the IOMMU).
    pub fn dev_id(&self) -> DevId {
        self.id
    }

    /// The IOMMU this device sends ATS requests to.
    pub fn iommu(&self) -> &Arc<Mutex<Iommu>> {
        &self.iommu
    }

    /// The device-side ATS translation cache.
    pub fn atc(&self) -> &Arc<AtsCache> {
        &self.atc
    }

    /// Enables/disables the device-side ATC (ablation knob; the default —
    /// matching the paper's model — is off).
    pub fn set_atc_enabled(&self, enabled: bool) {
        self.atc.set_enabled(enabled);
    }

    /// ATC hit/miss/shootdown counters.
    pub fn atc_stats(&self) -> AtcStats {
        self.atc.stats()
    }

    /// The device's fault-injection plane (idle unless activated).
    pub fn fault_plane(&self) -> Arc<FaultPlane> {
        self.state.lock().faults.clone()
    }

    /// Replaces the fault plane, e.g. with one shared by a campaign
    /// harness. Install before traffic starts — sequence numbers only
    /// cover writes observed from this point on.
    pub fn set_fault_plane(&self, plane: Arc<FaultPlane>) {
        self.state.lock().faults = plane;
    }

    /// Installs a QoS configuration (scheduling weights, rate limits,
    /// backpressure). Call before traffic starts — existing per-tenant
    /// accounting is discarded. The default config is disabled: the
    /// device's timing is then bit-identical to a build without QoS.
    pub fn set_qos(&self, config: QosConfig) {
        let mut state = self.state.lock();
        let channels = state.timer.timing().channels;
        state.qos = QosArbiter::new(config, channels);
    }

    /// Attaches the flight recorder; every subsequent command emits a
    /// [`DeviceRecord`] with its exact stage decomposition (when the
    /// recorder is enabled).
    pub fn set_recorder(&self, recorder: Arc<Recorder>) {
        self.state.lock().recorder = Some(recorder);
    }

    /// Whether QoS pacing/throttling is in force.
    pub fn qos_enabled(&self) -> bool {
        self.state.lock().qos.enabled()
    }

    /// The share applied to tenants without an explicit registration.
    pub fn qos_default_share(&self) -> TenantShare {
        self.state.lock().qos.default_share()
    }

    /// Registers `tenant`'s share with the arbiter. The kernel calls
    /// this at queue-pair bind time (policy stays kernel-side; the
    /// device only enforces).
    pub fn register_tenant(&self, tenant: Tenant, share: TenantShare) {
        self.state.lock().qos.register(tenant, share);
    }

    /// One tenant's counters and latency histogram, if it has been seen.
    pub fn tenant_stats(&self, tenant: Tenant) -> Option<TenantStats> {
        self.state.lock().qos.tenant_stats(tenant)
    }

    /// Every tenant's counters and latency histogram, tenant-ordered.
    pub fn qos_snapshot(&self) -> Vec<(Tenant, TenantStats)> {
        self.state.lock().qos.snapshot()
    }

    /// Media timing parameters.
    pub fn timing(&self) -> MediaTiming {
        self.state.lock().timer.timing()
    }

    /// Capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.state.lock().store.capacity_sectors()
    }

    /// Installs a verified offload program into the device's program
    /// table and returns its handle. Only the kernel calls this (the
    /// verify-at-load gate lives in the kernel's `prog_load` syscall);
    /// the device trusts `Program`'s invariant that it only exists
    /// verified.
    pub fn install_program(&self, prog: Arc<Program>) -> ProgHandle {
        let mut state = self.state.lock();
        let handle = ProgHandle(state.next_prog);
        state.next_prog += 1;
        state.programs.insert(handle, prog);
        handle
    }

    /// Removes an installed program (chains already past admission keep
    /// their `Arc`). Returns whether the handle existed.
    pub fn remove_program(&self, handle: ProgHandle) -> bool {
        self.state.lock().programs.remove(&handle).is_some()
    }

    /// Creates a queue pair. `pasid = Some(..)` makes a user queue bound
    /// to that process (§3.3); `None` makes a kernel/owner queue that may
    /// issue LBA commands.
    pub fn create_queue(&self, pasid: Option<Pasid>, depth: usize) -> QueueId {
        let qid = QueueId(self.next_qid.fetch_add(1, Ordering::SeqCst));
        self.state
            .lock()
            .queues
            .insert(qid, QueuePair::new(pasid, depth.max(1)));
        qid
    }

    /// Deletes a queue pair; outstanding completions are dropped.
    pub fn delete_queue(&self, qid: QueueId) {
        self.state.lock().queues.remove(&qid);
    }

    /// Submits a command at virtual time `now`; returns its command id.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] when `depth` commands are outstanding,
    /// [`SubmitError::UnknownQueue`] for a deleted queue.
    pub fn submit(&self, qid: QueueId, cmd: Command<'_>, now: Nanos) -> Result<u16, SubmitError> {
        let mut state = self.state.lock();
        self.submit_locked(&mut state, qid, cmd, now)
    }

    /// Submits a batch of commands under a single doorbell ring (one
    /// state-lock acquisition), appending each accepted command id to
    /// `cids`.
    ///
    /// # Errors
    /// Stops at the first failing command and returns its error;
    /// commands accepted before it stay submitted (their cids are in
    /// `cids`). On success returns the number of commands accepted.
    pub fn submit_batch<'a>(
        &self,
        qid: QueueId,
        cmds: impl IntoIterator<Item = Command<'a>>,
        now: Nanos,
        cids: &mut Vec<u16>,
    ) -> Result<usize, SubmitError> {
        let mut state = self.state.lock();
        let mut accepted = 0;
        for cmd in cmds {
            let cid = self.submit_locked(&mut state, qid, cmd, now)?;
            cids.push(cid);
            accepted += 1;
        }
        Ok(accepted)
    }

    /// One command's submission under an already-held state lock.
    fn submit_locked(
        &self,
        state: &mut DevState,
        qid: QueueId,
        cmd: Command<'_>,
        now: Nanos,
    ) -> Result<u16, SubmitError> {
        let q = state
            .queues
            .get_mut(&qid)
            .ok_or(SubmitError::UnknownQueue)?;
        let (pasid, inflight, depth) = (q.pasid, q.inflight, q.depth);
        let tenant = pasid.map_or(Tenant::Kernel, Tenant::User);
        let cid = match q.claim() {
            Some(cid) => cid,
            None => {
                state.qos.record_rejected(tenant);
                return Err(SubmitError::QueueFull);
            }
        };
        let mut completion = self.process(state, qid, tenant, pasid, cmd, now);
        // Injected completion loss: the command executed but its CQ entry
        // never lands. The cid's slot stays claimed — exactly the host-
        // visible symptom of a lost interrupt + lost CQ write.
        if state.faults.is_active() && state.faults.take_completion_drop() {
            return Ok(cid);
        }
        // Depth pressure: with QoS on, flag completions once the queue
        // pair runs at ≥ 3/4 of its depth so UserLib backs off before
        // hitting hard QueueFull rejections.
        if state.qos.enabled() && (inflight + 1) * 4 >= depth * 3 {
            completion.pressure = true;
        }
        state
            .queues
            .get_mut(&qid)
            .expect("queue cannot vanish while the state lock is held")
            .post(Completion { cid, ..completion });
        Ok(cid)
    }

    /// Convenience for synchronous callers: submit, reap, and return the
    /// full completion. The caller should `wait_until` its `ready_at`
    /// before acting on the data.
    ///
    /// The command is claimed, processed and retired in one critical
    /// section: the completion never sits in the pending map or CQ heap,
    /// so the synchronous path costs one lock round trip instead of the
    /// three a submit / ready_time / reap_at sequence pays.
    pub fn execute_full(&self, qid: QueueId, cmd: Command<'_>, now: Nanos) -> Completion {
        let mut state = self.state.lock();
        let q = state
            .queues
            .get_mut(&qid)
            .unwrap_or_else(|| panic!("execute() on unknown queue"));
        assert!(q.inflight < q.depth, "execute() on a full queue");
        let (pasid, inflight, depth) = (q.pasid, q.inflight, q.depth);
        let cid = q.take_cid();
        let tenant = pasid.map_or(Tenant::Kernel, Tenant::User);
        let mut completion = self.process(&mut state, qid, tenant, pasid, cmd, now);
        if state.qos.enabled() && (inflight + 1) * 4 >= depth * 3 {
            completion.pressure = true;
        }
        Completion { cid, ..completion }
    }

    /// [`NvmeDevice::execute_full`], reduced to status + completion time.
    pub fn execute(&self, qid: QueueId, cmd: Command<'_>, now: Nanos) -> (NvmeStatus, Nanos) {
        let comp = self.execute_full(qid, cmd, now);
        (comp.status, comp.ready_at)
    }

    /// Processes one claimed command: per-tenant accounting around the
    /// actual execution, plus the flight-recorder stamp.
    fn process(
        &self,
        state: &mut DevState,
        qid: QueueId,
        tenant: Tenant,
        pasid: Option<Pasid>,
        cmd: Command<'_>,
        now: Nanos,
    ) -> Completion {
        if cmd.chain.is_some() {
            return self.process_chain(state, qid, tenant, pasid, cmd, now);
        }
        state.qos.record_submit(tenant);
        let (opcode, sectors) = (cmd.opcode, cmd.sectors);
        let mut scratch = StageScratch::default();
        let completion = self.process_inner(state, tenant, pasid, cmd, now, &mut scratch);
        let ok = completion.status.is_ok();
        let bytes = if ok { sectors as u64 * SECTOR_SIZE } else { 0 };
        let (read_bytes, written_bytes) = match opcode {
            Opcode::Read => (bytes, 0),
            Opcode::Write | Opcode::WriteZeroes => (0, bytes),
            Opcode::Flush => (0, 0),
        };
        state.qos.record_completion(
            tenant,
            completion.ready_at - now,
            ok,
            read_bytes,
            written_bytes,
        );
        if let Some(rec) = &state.recorder {
            rec.record_device(|| DeviceRecord {
                queue: qid.0,
                tenant: match tenant {
                    Tenant::Kernel => 0,
                    Tenant::User(p) => u64::from(p.0) + 1,
                },
                op: match opcode {
                    Opcode::Read => TraceOp::Read,
                    Opcode::Write | Opcode::WriteZeroes => TraceOp::Write,
                    Opcode::Flush => TraceOp::Flush,
                },
                bytes: sectors as u64 * SECTOR_SIZE,
                submit: now,
                qos_delay: scratch.qos_delay,
                throttled: scratch.throttled,
                deferred: scratch.deferred,
                walk: scratch.walk,
                translate: scratch.translate,
                channel_wait: scratch.channel_wait,
                service: scratch.service,
                complete: completion.ready_at,
                ok,
            });
        }
        completion
    }

    fn process_inner(
        &self,
        state: &mut DevState,
        tenant: Tenant,
        pasid: Option<Pasid>,
        cmd: Command<'_>,
        now: Nanos,
        scratch: &mut StageScratch,
    ) -> Completion {
        if cmd.opcode == Opcode::Flush {
            state.stats.flushes += 1;
            if state.faults.is_active() {
                // A completed FLUSH empties the volatile write cache:
                // reorder windows close at this barrier.
                state.faults.note_flush(now);
            }
            // With QoS pacing in force, media occupancy lives on the
            // per-tenant lane ledgers, not the shared channel ledger;
            // drain to whichever horizon is later.
            let drain_from = if state.qos.enabled() {
                now.max(state.qos.horizon())
            } else {
                now
            };
            let ready = state.timer.schedule_flush(drain_from);
            scratch.service = ready.saturating_sub(now);
            return Completion {
                cid: 0,
                status: NvmeStatus::Success,
                ready_at: ready,
                pressure: false,
            };
        }
        if cmd.sectors == 0 {
            return Completion {
                cid: 0,
                status: NvmeStatus::InvalidField,
                ready_at: now,
                pressure: false,
            };
        }
        let is_write = matches!(cmd.opcode, Opcode::Write | Opcode::WriteZeroes);

        // Transient media-error injection: the command is charged its
        // media service time but completes with MediaError and moves no
        // data — a correctable-failure model for the retry paths.
        if state.faults.is_active() && state.faults.take_io_error(is_write) {
            let bytes = cmd.sectors as u64 * SECTOR_SIZE;
            let cost = if cmd.opcode == Opcode::WriteZeroes {
                state.timer.timing().write_zeroes_cost
            } else {
                state.timer.timing().service(is_write, bytes)
            };
            scratch.service = cost;
            return Completion {
                cid: 0,
                status: NvmeStatus::MediaError,
                ready_at: now + cost,
                pressure: false,
            };
        }

        // QoS admission (§3.1 sharing): rate limits and fair-share
        // pacing delay the command's *effective arrival*; everything
        // downstream (translation, media scheduling) sees the delayed
        // time. Skipped entirely when disabled, keeping the default
        // timing bit-identical.
        let total_bytes = cmd.sectors as u64 * SECTOR_SIZE;
        let qos_paced = state.qos.enabled();
        let (now, pressure) = if qos_paced {
            let timing = state.timer.timing();
            let service_est = if cmd.opcode == Opcode::WriteZeroes {
                timing.write_zeroes_cost
            } else {
                timing.service(is_write, total_bytes)
            };
            let adm = state.qos.admit(tenant, now, service_est, total_bytes);
            scratch.qos_delay = adm.arrival.saturating_sub(now);
            scratch.throttled = adm.throttled;
            scratch.deferred = adm.deferred;
            (adm.arrival, adm.throttled || adm.deferred)
        } else {
            (now, false)
        };

        // Resolve the address to LBA extents (into the reusable scratch
        // buffer — the steady-state path performs no allocation).
        state.io_bufs.extents.clear();
        let trans_cost: Nanos = match cmd.addr {
            BlockAddr::Lba(lba) => {
                if pasid.is_some() {
                    // Security: user queues may not address raw LBAs.
                    return Completion {
                        cid: 0,
                        status: NvmeStatus::InvalidField,
                        ready_at: now,
                        pressure,
                    };
                }
                state.io_bufs.extents.push((lba, cmd.sectors));
                Nanos::ZERO
            }
            BlockAddr::Vba(vba) => {
                let pasid = match pasid {
                    Some(p) => p,
                    None => {
                        return Completion {
                            cid: 0,
                            status: NvmeStatus::InvalidField,
                            ready_at: now,
                            pressure,
                        }
                    }
                };
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let len = cmd.sectors as u64 * SECTOR_SIZE;
                // Device-side ATC first (no PCIe round trip on a hit);
                // off by default, in which case this is always None.
                if let Some((atc_extents, cost)) = self.atc.translate(pasid, vba, len, kind) {
                    let cost = if is_write { Nanos::ZERO } else { cost };
                    scratch.walk = Some(WalkLevel::AtcHit);
                    scratch.translate = cost;
                    state.io_bufs.extents.extend_from_slice(&atc_extents);
                    cost
                } else {
                    let mut pages = if self.atc.enabled() {
                        Some(Vec::new())
                    } else {
                        None
                    };
                    let walked = self.iommu.lock().translate_extents_into(
                        pasid,
                        vba,
                        len,
                        kind,
                        self.id,
                        pages.as_mut(),
                        &mut state.io_bufs.extents,
                    );
                    match walked {
                        Ok(t) => {
                            if let Some(pages) = &pages {
                                self.atc.fill(pasid, pages);
                            }
                            // Reads serialise translation; writes overlap it
                            // with the data transfer (§4.3).
                            let cost = if is_write { Nanos::ZERO } else { t.cost };
                            scratch.walk = Some(if t.walks == 0 {
                                WalkLevel::IotlbHit
                            } else if t.pwc_hit {
                                WalkLevel::PwcHit
                            } else {
                                WalkLevel::FullWalk
                            });
                            scratch.translate = cost;
                            cost
                        }
                        Err((fault, cost)) => {
                            state.stats.translation_faults += 1;
                            scratch.walk = Some(WalkLevel::Fault);
                            scratch.translate = cost;
                            return Completion {
                                cid: 0,
                                status: NvmeStatus::TranslationFault(fault),
                                ready_at: now + cost,
                                pressure,
                            };
                        }
                    }
                }
            }
        };

        // Range check.
        for &(lba, sectors) in &state.io_bufs.extents {
            if !state.store.in_range(lba, sectors as u64) {
                return Completion {
                    cid: 0,
                    status: NvmeStatus::LbaOutOfRange,
                    ready_at: now,
                    pressure,
                };
            }
        }

        // Functional data movement, staged through the reusable chunk.
        match cmd.opcode {
            Opcode::Read => {
                let dma = cmd.dma.expect("read without DMA buffer");
                let mut off = cmd.dma_offset;
                for i in 0..state.io_bufs.extents.len() {
                    let (lba, sectors) = state.io_bufs.extents[i];
                    let n = (sectors as u64 * SECTOR_SIZE) as usize;
                    if state.io_bufs.chunk.len() < n {
                        state.io_bufs.chunk.resize(n, 0);
                    }
                    state.store.read(lba, &mut state.io_bufs.chunk[..n]);
                    dma.write(off, &state.io_bufs.chunk[..n]);
                    off += n;
                }
                state.stats.reads += 1;
                state.stats.read_bytes += total_bytes;
            }
            Opcode::Write => {
                let dma = cmd.dma.expect("write without DMA buffer");
                let mut off = cmd.dma_offset;
                for i in 0..state.io_bufs.extents.len() {
                    let (lba, sectors) = state.io_bufs.extents[i];
                    let n = (sectors as u64 * SECTOR_SIZE) as usize;
                    if state.io_bufs.chunk.len() < n {
                        state.io_bufs.chunk.resize(n, 0);
                    }
                    dma.read(off, &mut state.io_bufs.chunk[..n]);
                    if state.faults.is_active() {
                        match state
                            .faults
                            .on_write(lba, sectors, Some(now), WriteKind::Timed)
                        {
                            WriteVerdict::Persist => {
                                state.store.write(lba, &state.io_bufs.chunk[..n]);
                            }
                            WriteVerdict::Drop => {}
                            WriteVerdict::Partial(mask) => {
                                for (s, &keep) in mask.iter().enumerate() {
                                    if keep {
                                        let b = s * SECTOR_SIZE as usize;
                                        state.store.write(
                                            lba.advance(s as u64),
                                            &state.io_bufs.chunk[b..b + SECTOR_SIZE as usize],
                                        );
                                    }
                                }
                            }
                        }
                    } else {
                        state.store.write(lba, &state.io_bufs.chunk[..n]);
                    }
                    off += n;
                }
                state.stats.writes += 1;
                state.stats.written_bytes += total_bytes;
            }
            Opcode::WriteZeroes => {
                for i in 0..state.io_bufs.extents.len() {
                    let (lba, sectors) = state.io_bufs.extents[i];
                    if state.faults.is_active() {
                        match state
                            .faults
                            .on_write(lba, sectors, Some(now), WriteKind::Timed)
                        {
                            WriteVerdict::Persist => state.store.write_zeroes(lba, sectors as u64),
                            WriteVerdict::Drop => {}
                            WriteVerdict::Partial(mask) => {
                                for (s, &keep) in mask.iter().enumerate() {
                                    if keep {
                                        state.store.write_zeroes(lba.advance(s as u64), 1);
                                    }
                                }
                            }
                        }
                    } else {
                        state.store.write_zeroes(lba, sectors as u64);
                    }
                }
                state.stats.writes += 1;
                state.stats.written_bytes += total_bytes;
            }
            Opcode::Flush => unreachable!(),
        }

        // When QoS pacing admitted the command, its channel occupancy is
        // already booked on the tenant's private lanes, and the direction
        // bus is weighted time-division multiplexed (the tenant's bus
        // share is part of its lane pacing), so only the tenant's own
        // transfers serialize. Otherwise the command goes through the
        // shared channel ledger as before.
        let ready = if matches!(cmd.opcode, Opcode::WriteZeroes) {
            let cost = state.timer.timing().write_zeroes_cost;
            scratch.service = cost;
            if qos_paced {
                now + trans_cost + cost
            } else {
                state.timer.schedule_fixed(now + trans_cost, cost)
            }
        } else if qos_paced {
            let tenant_key = match tenant {
                Tenant::Kernel => 0,
                Tenant::User(p) => u64::from(p.0) + 1,
            };
            scratch.service = state.timer.timing().service(is_write, total_bytes);
            state
                .timer
                .schedule_paced(now + trans_cost, is_write, total_bytes, tenant_key)
        } else {
            scratch.service = state.timer.timing().service(is_write, total_bytes);
            state
                .timer
                .schedule(now + trans_cost, is_write, total_bytes)
        };
        // Whatever the scheduler charged beyond raw service is queueing
        // for channels/bus slots; exact under the eager-completion model.
        scratch.channel_wait = ready
            .saturating_sub(now + trans_cost)
            .saturating_sub(scratch.service);
        Completion {
            cid: 0,
            status: NvmeStatus::Success,
            ready_at: ready,
            pressure,
        }
    }

    /// Executes one offload chain: repeated single-sector reads driven by
    /// the command's verified program, all inside this one completion.
    ///
    /// Per hop: the current VBA is translated under the queue's PASID
    /// (chains never relax the protection model — a `Resubmit` into an
    /// unmapped or revoked page faults the whole chain exactly like a
    /// host-submitted read), the block is read on the chain's pinned
    /// channel, and the program runs over it at [`STEP_NS`] per step of
    /// pure virtual time. The host sees one doorbell and one completion;
    /// only the final block is DMA'd. Each hop emits its own
    /// [`DeviceRecord`] so traces can count device-side work. Chain hops
    /// go straight to the IOMMU (the device-side ATC ablation does not
    /// shortcut them).
    #[allow(clippy::too_many_lines)]
    fn process_chain(
        &self,
        state: &mut DevState,
        qid: QueueId,
        tenant: Tenant,
        pasid: Option<Pasid>,
        cmd: Command<'_>,
        now: Nanos,
    ) -> Completion {
        state.qos.record_submit(tenant);
        let spec = cmd.chain.expect("process_chain without a chain");
        let tenant_id = match tenant {
            Tenant::Kernel => 0,
            Tenant::User(p) => u64::from(p.0) + 1,
        };

        // Structural validation: chains are single-sector VBA reads from
        // a user queue, naming an installed program.
        let valid_shape = cmd.opcode == Opcode::Read && cmd.sectors == 1 && cmd.dma.is_some();
        let first_vba = match cmd.addr {
            BlockAddr::Vba(v) if valid_shape => Some(v),
            _ => None,
        };
        let prog = state.programs.get(&spec.prog).cloned();
        let (Some(mut vba), Some(prog), Some(pasid)) = (first_vba, prog, pasid) else {
            state
                .qos
                .record_completion(tenant, Nanos::ZERO, false, 0, 0);
            return Completion {
                cid: 0,
                status: NvmeStatus::InvalidField,
                ready_at: now,
                pressure: false,
            };
        };

        // QoS admission happens once, for the chain's first hop; later
        // hops are device-generated work, paced on the tenant's own bus
        // ledger and surfaced through the offload-hop counters.
        let qos_paced = state.qos.enabled();
        let (mut t, pressure) = if qos_paced {
            let est = state.timer.timing().service(false, BLOCK as u64);
            let adm = state.qos.admit(tenant, now, est, BLOCK as u64);
            (adm.arrival, adm.throttled || adm.deferred)
        } else {
            (now, false)
        };
        let channel = state.timer.pick_channel();

        let mut st = ChainState::new(spec.regs);
        // Completed media reads; the MAX_HOPS budget bounds them.
        let mut hops: u32 = 0;
        let status = loop {
            if hops == MAX_HOPS {
                break NvmeStatus::ChainFault(TRAP_HOPS);
            }
            let hop_start = t;

            // Translate this hop's VBA (program offsets must stay
            // sector-aligned; a misaligned `Resubmit` is an OOB trap).
            if !vba.0.is_multiple_of(SECTOR_SIZE) {
                break NvmeStatus::ChainFault(bypassd_offload::TRAP_OOB);
            }
            state.io_bufs.extents.clear();
            let walked = self.iommu.lock().translate_extents_into(
                pasid,
                vba,
                BLOCK as u64,
                AccessKind::Read,
                self.id,
                None,
                &mut state.io_bufs.extents,
            );
            let (trans_cost, walk) = match walked {
                Ok(tr) => (
                    tr.cost,
                    if tr.walks == 0 {
                        WalkLevel::IotlbHit
                    } else if tr.pwc_hit {
                        WalkLevel::PwcHit
                    } else {
                        WalkLevel::FullWalk
                    },
                ),
                Err((fault, cost)) => {
                    state.stats.translation_faults += 1;
                    t += cost;
                    self.record_hop(
                        state,
                        qid,
                        tenant_id,
                        hop_start,
                        Some(WalkLevel::Fault),
                        cost,
                        Nanos::ZERO,
                        t,
                        false,
                    );
                    break NvmeStatus::TranslationFault(fault);
                }
            };
            let in_range = state
                .io_bufs
                .extents
                .iter()
                .all(|&(lba, sectors)| state.store.in_range(lba, u64::from(sectors)));
            if !in_range {
                t += trans_cost;
                self.record_hop(
                    state,
                    qid,
                    tenant_id,
                    hop_start,
                    Some(walk),
                    trans_cost,
                    Nanos::ZERO,
                    t,
                    false,
                );
                break NvmeStatus::LbaOutOfRange;
            }

            // Media read of the block into the device-internal chunk
            // (not DMA'd — only the final block crosses to the host).
            if state.io_bufs.chunk.len() < BLOCK {
                state.io_bufs.chunk.resize(BLOCK, 0);
            }
            let mut off = 0usize;
            for i in 0..state.io_bufs.extents.len() {
                let (lba, sectors) = state.io_bufs.extents[i];
                let n = (u64::from(sectors) * SECTOR_SIZE) as usize;
                state
                    .store
                    .read(lba, &mut state.io_bufs.chunk[off..off + n]);
                off += n;
            }
            state.stats.reads += 1;
            state.stats.read_bytes += BLOCK as u64;
            hops += 1;

            let media_done = if qos_paced {
                // Paced lanes priced the chain at admission; hops are
                // device-internal media reads with no bus crossing.
                t + trans_cost + state.timer.timing().read_base
            } else {
                state.timer.schedule_hop(channel, t + trans_cost)
            };

            // Run the program on the device's lightweight core, charged
            // purely in virtual time.
            let run = run_hop(&prog, &mut st, &state.io_bufs.chunk[..BLOCK]);
            t = media_done + Nanos(run.steps * STEP_NS);
            let service = t.saturating_sub(hop_start + trans_cost);
            self.record_hop(
                state,
                qid,
                tenant_id,
                hop_start,
                Some(walk),
                trans_cost,
                service,
                t,
                true,
            );

            match run.outcome {
                Outcome::Resubmit { offset } => {
                    vba = Vba(spec.base_vba).offset(offset);
                }
                Outcome::Return => {
                    // Only the final block crosses to the host: pay its
                    // bus transfer now.
                    t = if qos_paced {
                        state
                            .timer
                            .chain_return_transfer_paced(t, BLOCK as u64, tenant_id)
                    } else {
                        state.timer.chain_return_transfer(t, BLOCK as u64)
                    };
                    let dma = cmd.dma.expect("validated above");
                    dma.write(cmd.dma_offset, &state.io_bufs.chunk[..BLOCK]);
                    break NvmeStatus::Success;
                }
                Outcome::Fail { code } => break NvmeStatus::ChainFault(code),
            }
        };

        let ok = status.is_ok();
        state.stats.chains += 1;
        state.stats.chain_hops += u64::from(hops);
        if !ok {
            state.stats.chain_faults += 1;
        }
        state
            .qos
            .record_offload_hops(tenant, u64::from(hops.saturating_sub(1)));
        state.qos.record_completion(
            tenant,
            t.saturating_sub(now),
            ok,
            u64::from(hops) * BLOCK as u64,
            0,
        );
        Completion {
            cid: 0,
            status,
            ready_at: t,
            pressure,
        }
    }

    /// Emits one chain hop's [`DeviceRecord`] (passive; no clock).
    #[allow(clippy::too_many_arguments)]
    fn record_hop(
        &self,
        state: &DevState,
        qid: QueueId,
        tenant_id: u64,
        submit: Nanos,
        walk: Option<WalkLevel>,
        translate: Nanos,
        service: Nanos,
        complete: Nanos,
        ok: bool,
    ) {
        if let Some(rec) = &state.recorder {
            rec.record_device(|| DeviceRecord {
                queue: qid.0,
                tenant: tenant_id,
                op: TraceOp::Read,
                bytes: BLOCK as u64,
                submit,
                qos_delay: Nanos::ZERO,
                throttled: false,
                deferred: false,
                walk,
                translate,
                channel_wait: Nanos::ZERO,
                service,
                complete,
                ok,
            });
        }
    }

    /// Completion time of command `cid` on `qid`, if posted.
    pub fn ready_time(&self, qid: QueueId, cid: u16) -> Option<Nanos> {
        self.state.lock().queues.get(&qid)?.ready_time(cid)
    }

    /// Reaps the completion for `cid` if visible at `now`.
    pub fn reap_at(&self, qid: QueueId, cid: u16, now: Nanos) -> Option<Completion> {
        self.state.lock().queues.get_mut(&qid)?.reap(cid, now)
    }

    /// Reaps up to `max` completions visible at `now`, earliest first.
    pub fn reap_ready(&self, qid: QueueId, now: Nanos, max: usize) -> Vec<Completion> {
        self.state
            .lock()
            .queues
            .get_mut(&qid)
            .map(|q| q.reap_ready(now, max))
            .unwrap_or_default()
    }

    /// As [`NvmeDevice::reap_ready`], appending into a caller-provided
    /// buffer — the batched completion path's allocation-free variant.
    /// Returns how many completions were appended (0 for an unknown
    /// queue).
    pub fn reap_ready_into(
        &self,
        qid: QueueId,
        now: Nanos,
        max: usize,
        out: &mut Vec<Completion>,
    ) -> usize {
        self.state
            .lock()
            .queues
            .get_mut(&qid)
            .map_or(0, |q| q.reap_ready_into(now, max, out))
    }

    /// Earliest pending completion time on `qid`.
    pub fn next_ready_time(&self, qid: QueueId) -> Option<Nanos> {
        self.state.lock().queues.get_mut(&qid)?.next_ready_time()
    }

    /// Latest pending completion time on `qid` (flush barrier helper).
    pub fn last_ready_time(&self, qid: QueueId) -> Option<Nanos> {
        self.state.lock().queues.get(&qid)?.last_ready_time()
    }

    /// Resets the contention ledger (see [`DeviceTimer::reset`]). Call
    /// between independent simulations sharing this device; pending
    /// completions on open queues are dropped.
    pub fn reset_timing(&self) {
        let mut state = self.state.lock();
        state.timer.reset();
        state.qos.reset_clock();
        for q in state.queues.values_mut() {
            let dropped = q.drop_pending();
            q.inflight -= dropped.min(q.inflight);
        }
    }

    /// Counters, including the ATC and QoS aggregates so they show up in
    /// any report that prints `DeviceStats`.
    pub fn stats(&self) -> DeviceStats {
        let state = self.state.lock();
        let mut s = state.stats;
        let atc = self.atc.stats();
        s.atc_hits = atc.hits;
        s.atc_misses = atc.misses;
        s.atc_shootdowns = atc.shootdowns;
        (s.qos_throttled, s.qos_deferred) = state.qos.totals();
        s
    }

    // ---- Maintenance access (setup code and the simulated kernel's
    // block layer use these; they move bytes without timing). ----

    /// Reads raw sectors, bypassing queues and timing.
    pub fn read_raw(&self, lba: Lba, buf: &mut [u8]) {
        self.state.lock().store.read(lba, buf);
    }

    /// Writes raw sectors, bypassing queues and timing. Still passes
    /// through the fault plane: journal and superblock writes are crash
    /// candidates like any other.
    pub fn write_raw(&self, lba: Lba, data: &[u8]) {
        let state = &mut *self.state.lock();
        if state.faults.is_active() {
            let sectors = (data.len() as u64 / SECTOR_SIZE) as u32;
            match state.faults.on_write(lba, sectors, None, WriteKind::Raw) {
                WriteVerdict::Persist => state.store.write(lba, data),
                WriteVerdict::Drop => {}
                WriteVerdict::Partial(mask) => {
                    for (s, &keep) in mask.iter().enumerate() {
                        if keep {
                            let b = s * SECTOR_SIZE as usize;
                            state
                                .store
                                .write(lba.advance(s as u64), &data[b..b + SECTOR_SIZE as usize]);
                        }
                    }
                }
            }
        } else {
            state.store.write(lba, data);
        }
    }

    /// Zeroes raw sectors, bypassing queues and timing.
    pub fn zero_raw(&self, lba: Lba, sectors: u64) {
        let state = &mut *self.state.lock();
        if state.faults.is_active() {
            match state
                .faults
                .on_write(lba, sectors as u32, None, WriteKind::Zeroes)
            {
                WriteVerdict::Persist => state.store.write_zeroes(lba, sectors),
                WriteVerdict::Drop => {}
                WriteVerdict::Partial(mask) => {
                    for (s, &keep) in mask.iter().enumerate() {
                        if keep {
                            state.store.write_zeroes(lba.advance(s as u64), 1);
                        }
                    }
                }
            }
        } else {
            state.store.write_zeroes(lba, sectors);
        }
    }

    /// Materialised media blocks (memory accounting).
    pub fn resident_blocks(&self) -> usize {
        self.state.lock().store.resident_blocks()
    }

    /// Deterministic digest of the entire media contents. Two devices
    /// with identical logical contents (zero-filled blocks are never
    /// distinguished from absent ones) hash equal — used by the crash
    /// campaigns to assert journal-replay idempotence.
    pub fn media_fingerprint(&self) -> u64 {
        self.state.lock().store.fingerprint()
    }
}

impl MetricSource for NvmeDevice {
    fn collect(&self, out: &mut Vec<Metric>) {
        let s = self.stats();
        out.push(Metric::counter("reads", s.reads));
        out.push(Metric::counter("writes", s.writes));
        out.push(Metric::counter("read_bytes", s.read_bytes));
        out.push(Metric::counter("written_bytes", s.written_bytes));
        out.push(Metric::counter("flushes", s.flushes));
        out.push(Metric::counter("translation_faults", s.translation_faults));
        out.push(Metric::counter("atc_hits", s.atc_hits));
        out.push(Metric::counter("atc_misses", s.atc_misses));
        out.push(Metric::counter("atc_shootdowns", s.atc_shootdowns));
        out.push(Metric::counter("qos_throttled", s.qos_throttled));
        out.push(Metric::counter("qos_deferred", s.qos_deferred));
        out.push(Metric::counter("chains", s.chains));
        out.push(Metric::counter("chain_hops", s.chain_hops));
        out.push(Metric::counter("chain_faults", s.chain_faults));
        for (tenant, ts) in self.qos_snapshot() {
            let name = match tenant {
                Tenant::Kernel => "kernel".to_string(),
                Tenant::User(p) => format!("pasid_{}", p.0),
            };
            out.push(Metric::counter(
                format!("tenant.{name}.submitted"),
                ts.submitted,
            ));
            out.push(Metric::counter(
                format!("tenant.{name}.completed"),
                ts.completed,
            ));
            out.push(Metric::counter(format!("tenant.{name}.failed"), ts.failed));
            out.push(Metric::counter(
                format!("tenant.{name}.offload_hops"),
                ts.offload_hops,
            ));
            out.push(Metric::counter(
                format!("tenant.{name}.read_bytes"),
                ts.read_bytes,
            ));
            out.push(Metric::counter(
                format!("tenant.{name}.written_bytes"),
                ts.written_bytes,
            ));
            out.push(Metric::histogram(
                format!("tenant.{name}.latency"),
                ts.latency.clone(),
            ));
        }
    }
}

impl std::fmt::Debug for NvmeDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("NvmeDevice")
            .field("id", &self.id)
            .field("queues", &state.queues.len())
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bypassd_hw::mem::PhysMem;
    use bypassd_hw::page_table::AddressSpace;
    use bypassd_hw::pte::Pte;
    use bypassd_hw::types::PAGE_SIZE;

    const DEV: DevId = DevId(1);
    const P: Pasid = Pasid(42);

    fn setup() -> (PhysMem, Arc<NvmeDevice>) {
        let mem = PhysMem::new();
        let iommu = Arc::new(Mutex::new(Iommu::new(&mem)));
        let dev = NvmeDevice::new(DEV, 1 << 22, MediaTiming::default(), iommu);
        (mem, dev)
    }

    fn setup_with_mapping(n_blocks: u64) -> (PhysMem, Arc<NvmeDevice>, AddressSpace, Vba) {
        let (mem, dev) = setup();
        let mut asid = AddressSpace::new(&mem);
        let vba = Vba(0x4000_0000);
        for i in 0..n_blocks {
            asid.map_page(
                vba.as_virt().offset(i * PAGE_SIZE),
                Pte::fte(Lba::from_block(1000 + i), DEV, true),
            );
        }
        dev.iommu().lock().register(P, asid.root_frame());
        (mem, dev, asid, vba)
    }

    #[test]
    fn lba_write_read_roundtrip_on_kernel_queue() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dma.write(0, &[0x5A; 4096]);
        let (st, t1) = dev.execute(
            q,
            Command::write(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        assert!(st.is_ok());
        let dma2 = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Lba(Lba(0)), 8, &dma2), t1);
        assert!(st.is_ok());
        let mut out = [0u8; 4096];
        dma2.read(0, &mut out);
        assert!(out.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn lba_command_rejected_on_user_queue() {
        let (mem, dev) = setup();
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        assert_eq!(
            st,
            NvmeStatus::InvalidField,
            "user queue must not take raw LBAs"
        );
    }

    #[test]
    fn vba_command_rejected_on_kernel_queue() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Vba(Vba(0x1000)), 8, &dma),
            Nanos::ZERO,
        );
        assert_eq!(st, NvmeStatus::InvalidField);
    }

    #[test]
    fn vba_read_translates_and_returns_data() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        dev.write_raw(Lba::from_block(1000), &[0xC3; 4096]);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, ready) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let mut out = [0u8; 4096];
        dma.read(0, &mut out);
        assert!(out.iter().all(|&b| b == 0xC3));
        // Read latency includes translation (~550ns) + device (~4020ns).
        let ns = ready.as_nanos();
        assert!((4300..5000).contains(&ns), "VBA read latency = {ns}ns");
    }

    #[test]
    fn vba_write_has_no_translation_latency() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dma.write(0, &[1; 4096]);
        let (st, ready) = dev.execute(q, Command::write(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let service = MediaTiming::default().service(true, 4096);
        assert_eq!(ready, service, "write must overlap VBA translation");
        let mut out = [0u8; 4096];
        dev.read_raw(Lba::from_block(1000), &mut out);
        assert!(out.iter().all(|&b| b == 1));
    }

    #[test]
    fn unmapped_vba_faults_without_touching_media() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Vba(vba.offset(PAGE_SIZE)), 8, &dma),
            Nanos::ZERO,
        );
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
        assert_eq!(dev.stats().reads, 0);
        assert_eq!(dev.stats().translation_faults, 1);
    }

    #[test]
    fn readonly_mapping_blocks_vba_write() {
        let (mem, dev) = setup();
        let mut asid = AddressSpace::new(&mem);
        let vba = Vba(0x4000_0000);
        asid.map_page(vba.as_virt(), Pte::fte(Lba::from_block(7), DEV, false));
        dev.iommu().lock().register(P, asid.root_frame());
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(q, Command::write(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
    }

    #[test]
    fn multi_extent_vba_read_concatenates_in_dma_order() {
        // Two non-contiguous blocks must land in the DMA buffer in VBA
        // order, not LBA order.
        let (mem, dev) = setup();
        let mut asid = AddressSpace::new(&mem);
        let vba = Vba(0x4000_0000);
        asid.map_page(vba.as_virt(), Pte::fte(Lba::from_block(500), DEV, true));
        asid.map_page(
            vba.as_virt().offset(PAGE_SIZE),
            Pte::fte(Lba::from_block(100), DEV, true),
        );
        dev.iommu().lock().register(P, asid.root_frame());
        dev.write_raw(Lba::from_block(500), &[0xAA; 4096]);
        dev.write_raw(Lba::from_block(100), &[0xBB; 4096]);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 8192);
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 16, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let mut out = [0u8; 8192];
        dma.read(0, &mut out);
        assert!(out[..4096].iter().all(|&b| b == 0xAA));
        assert!(out[4096..].iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn queue_depth_enforced_and_reap_frees() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 1);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let cid = dev
            .submit(
                q,
                Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
                Nanos::ZERO,
            )
            .unwrap();
        let err = dev
            .submit(
                q,
                Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
                Nanos::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        let ready = dev.ready_time(q, cid).unwrap();
        assert!(dev.reap_at(q, cid, ready).is_some());
        assert!(dev
            .submit(q, Command::read(BlockAddr::Lba(Lba(0)), 8, &dma), ready)
            .is_ok());
    }

    #[test]
    fn flush_completes_after_writes() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dma.write(0, &[2; 4096]);
        let (_, w) = dev.execute(
            q,
            Command::write(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        let (st, f) = dev.execute(q, Command::flush(), Nanos(1));
        assert!(st.is_ok());
        assert!(f > w);
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let cap = dev.capacity_sectors();
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(cap)), 8, &dma),
            Nanos::ZERO,
        );
        assert_eq!(st, NvmeStatus::LbaOutOfRange);
    }

    #[test]
    fn write_zeroes_clears_blocks() {
        let (_mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        dev.write_raw(Lba::from_block(3), &[9; 4096]);
        let (st, _) = dev.execute(
            q,
            Command::write_zeroes(BlockAddr::Lba(Lba::from_block(3)), 8),
            Nanos::ZERO,
        );
        assert!(st.is_ok());
        let mut out = [9u8; 4096];
        dev.read_raw(Lba::from_block(3), &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_sector_command_invalid() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(0)), 0, &dma),
            Nanos::ZERO,
        );
        assert_eq!(st, NvmeStatus::InvalidField);
    }

    #[test]
    fn stats_accumulate() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dev.execute(
            q,
            Command::write(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        dev.execute(q, Command::flush(), Nanos::ZERO);
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.flushes), (1, 1, 1));
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.written_bytes, 4096);
    }

    #[test]
    fn atc_hit_skips_pcie_round_trip() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, t1) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        // Second read of the same page: translated on-device.
        let (st, t2) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t1);
        assert!(st.is_ok());
        let cold = t1.as_nanos();
        let warm = t2.as_nanos() - t1.as_nanos();
        // Cold read paid pcie_rtt + walk (~528ns); warm read pays only
        // the on-device lookup (14ns) before the same media time.
        assert!(
            cold - warm > 500,
            "ATC hit should shave the ATS round trip: cold={cold} warm={warm}"
        );
        let s = dev.atc_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn atc_disabled_by_default_keeps_ats_costs() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (_, t1) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        let (_, t2) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t1);
        // Both reads pay the full ATS translation (pcie + walk); the warm
        // one only saves the PWC miss.
        let cold = t1.as_nanos();
        let warm = t2.as_nanos() - t1.as_nanos();
        assert_eq!(cold - warm, 120, "only the PWC component may differ");
        assert_eq!(dev.atc_stats(), crate::atc::AtcStats::default());
    }

    #[test]
    fn revocation_shoots_down_atc_so_fallback_still_fires() {
        // §3.6 regression with the ATC enabled: a revoked FTE must not be
        // served from the device cache.
        let (mem, dev, mut asid, vba) = setup_with_mapping(1);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, t) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        assert!(!dev.atc().is_empty(), "walk should have filled the ATC");
        // Kernel revokes: detach FTE + IOMMU invalidate, which broadcasts
        // to the ATC.
        asid.unmap_page(vba.as_virt());
        dev.iommu().lock().invalidate_pasid(P);
        assert!(dev.atc().is_empty(), "shootdown must reach the device");
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t);
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
        assert_eq!(dev.atc_stats().shootdowns, 1);
    }

    #[test]
    fn range_shootdown_drops_only_covered_atc_pages() {
        let (mem, dev, _asid, vba) = setup_with_mapping(2);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 8192);
        let (st, t) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 16, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        assert_eq!(dev.atc().len(), 2);
        dev.iommu().lock().invalidate_range(P, vba, PAGE_SIZE);
        assert_eq!(dev.atc().len(), 1, "only the covered page drops");
        // Second page still hits on-device; first page re-walks fine.
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Vba(vba.offset(PAGE_SIZE)), 8, &dma),
            t,
        );
        assert!(st.is_ok());
        assert_eq!(dev.atc_stats().hits, 1);
    }

    #[test]
    fn revocation_mid_stream_fails_subsequent_ios() {
        let (mem, dev, mut asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, t) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        // Kernel revokes: detach FTE + IOTLB invalidate.
        asid.unmap_page(vba.as_virt());
        dev.iommu().lock().invalidate_pasid(P);
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t);
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
    }

    // ---- QoS (bypassd-qos integration) ----

    use bypassd_qos::RateLimit;

    const P2: Pasid = Pasid(43);

    /// Maps `n_blocks` FTEs for `pasid` at its own VBA window.
    fn map_tenant(
        mem: &PhysMem,
        dev: &Arc<NvmeDevice>,
        pasid: Pasid,
        first_block: u64,
        n_blocks: u64,
    ) -> (AddressSpace, Vba) {
        let mut asid = AddressSpace::new(mem);
        let vba = Vba(0x4000_0000);
        for i in 0..n_blocks {
            asid.map_page(
                vba.as_virt().offset(i * PAGE_SIZE),
                Pte::fte(Lba::from_block(first_block + i), DEV, true),
            );
        }
        dev.iommu().lock().register(pasid, asid.root_frame());
        (asid, vba)
    }

    #[test]
    fn qos_enabled_solo_tenant_timing_matches_disabled() {
        // A tenant alone on the device must see the exact same virtual
        // times with QoS on: pacing is work-conserving when idle.
        let run = |qos: bool| -> Vec<Nanos> {
            let (mem, dev) = setup();
            if qos {
                dev.set_qos(QosConfig::enabled());
            }
            let q = dev.create_queue(None, 32);
            let dma = DmaBuffer::alloc(&mem, 4096);
            let mut times = Vec::new();
            let mut now = Nanos::ZERO;
            for _ in 0..16 {
                let (st, t) = dev.execute(q, Command::read(BlockAddr::Lba(Lba(0)), 8, &dma), now);
                assert!(st.is_ok());
                times.push(t);
                now = t;
            }
            times
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn qos_protects_qd1_foreground_from_deep_antagonist() {
        // Ablation-8 in miniature: a QD1 tenant vs a 16-deep burst from a
        // second PASID, with and without QoS (equal weights).
        let fg_latency = |qos: bool| -> u64 {
            let (mem, dev) = setup();
            if qos {
                dev.set_qos(QosConfig::enabled());
            }
            let (_fa, fvba) = map_tenant(&mem, &dev, P, 1000, 1);
            let (_aa, avba) = map_tenant(&mem, &dev, P2, 2000, 1);
            let fq = dev.create_queue(Some(P), 32);
            let aq = dev.create_queue(Some(P2), 32);
            let fdma = DmaBuffer::alloc(&mem, 4096);
            let adma = DmaBuffer::alloc(&mem, 4096);
            // Prime the foreground so the arbiter sees it as active.
            let (st, t0) = dev.execute(
                fq,
                Command::read(BlockAddr::Vba(fvba), 8, &fdma),
                Nanos::ZERO,
            );
            assert!(st.is_ok());
            for _ in 0..16 {
                dev.submit(aq, Command::read(BlockAddr::Vba(avba), 8, &adma), t0)
                    .unwrap();
            }
            let (st, done) = dev.execute(fq, Command::read(BlockAddr::Vba(fvba), 8, &fdma), t0);
            assert!(st.is_ok());
            done.as_nanos() - t0.as_nanos()
        };
        let no_qos = fg_latency(false);
        let qos = fg_latency(true);
        assert!(
            no_qos >= 2 * qos,
            "QoS must at least halve the victim latency: no_qos={no_qos}ns qos={qos}ns"
        );
        assert!(
            qos < 8_000,
            "paced foreground read should stay near uncontended service: {qos}ns"
        );
    }

    #[test]
    fn qos_rate_limit_paces_completions() {
        let (mem, dev) = setup();
        dev.set_qos(QosConfig::enabled());
        dev.register_tenant(
            Tenant::Kernel,
            TenantShare::weight(1).with_limit(RateLimit {
                iops: Some(10_000),
                bytes_per_sec: None,
                burst_ops: 1,
                burst_bytes: 0,
            }),
        );
        let q = dev.create_queue(None, 64);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let mut last = Nanos::ZERO;
        for i in 0..4 {
            let (st, t) = dev.execute(
                q,
                Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
                Nanos::ZERO,
            );
            assert!(st.is_ok());
            if i > 0 {
                // 10K IOPS with burst 1 → 100µs spacing.
                let gap = t.as_nanos() - last.as_nanos();
                assert_eq!(gap, 100_000, "op {i} gap = {gap}ns");
            }
            last = t;
        }
        let s = dev.tenant_stats(Tenant::Kernel).unwrap();
        assert_eq!(s.throttled, 3);
        assert_eq!(dev.stats().qos_throttled, 3);
    }

    #[test]
    fn qos_pressure_flag_signals_congestion() {
        // With QoS on, completions carry a pressure bit once the queue
        // pair runs at ≥ 3/4 depth; with QoS off the bit never sets.
        let run = |qos: bool| -> bool {
            let (mem, dev) = setup();
            if qos {
                dev.set_qos(QosConfig::enabled());
            }
            let q = dev.create_queue(None, 8);
            let dma = DmaBuffer::alloc(&mem, 4096);
            let mut cids = Vec::new();
            for _ in 0..8 {
                cids.push(
                    dev.submit(
                        q,
                        Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
                        Nanos::ZERO,
                    )
                    .unwrap(),
                );
            }
            cids.into_iter().any(|cid| {
                let ready = dev.ready_time(q, cid).unwrap();
                dev.reap_at(q, cid, ready).unwrap().pressure
            })
        };
        assert!(!run(false), "pressure must never be signalled without QoS");
        assert!(run(true), "deep queue under QoS must signal pressure");
    }

    #[test]
    fn qos_tenant_stats_account_every_op() {
        let (mem, dev) = setup();
        dev.set_qos(QosConfig::enabled());
        let (_a, vba) = map_tenant(&mem, &dev, P, 1000, 1);
        let q = dev.create_queue(Some(P), 2);
        let kq = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        // Two good reads, one invalid (raw LBA on a user queue), one
        // queue-full rejection, plus kernel traffic.
        let (st, t1) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let (st, t2) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t1);
        assert!(st.is_ok());
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Lba(Lba(0)), 8, &dma), t2);
        assert_eq!(st, NvmeStatus::InvalidField);
        let c1 = dev
            .submit(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t2)
            .unwrap();
        let _c2 = dev
            .submit(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t2)
            .unwrap();
        let err = dev
            .submit(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t2)
            .unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        let ready = dev.ready_time(q, c1).unwrap();
        dev.reap_at(q, c1, ready).unwrap();
        dev.execute(kq, Command::write(BlockAddr::Lba(Lba(0)), 8, &dma), t2);

        let user = dev.tenant_stats(Tenant::User(P)).unwrap();
        assert!(user.accounted(), "submitted must equal completed + failed");
        assert_eq!(user.submitted, 5);
        assert_eq!((user.completed, user.failed, user.rejected), (4, 1, 1));
        assert_eq!(user.read_bytes, 4 * 4096);
        assert_eq!(user.latency.count(), 4);
        let kernel = dev.tenant_stats(Tenant::Kernel).unwrap();
        assert!(kernel.accounted());
        assert_eq!(kernel.written_bytes, 4096);
        // The snapshot covers every tenant the device has seen.
        let snap = dev.qos_snapshot();
        let names: Vec<Tenant> = snap.iter().map(|(t, _)| *t).collect();
        assert_eq!(names, vec![Tenant::Kernel, Tenant::User(P)]);
    }

    // ---- Offload chains (bypassd-offload integration) ----

    use bypassd_offload::{Cond, Op, Width, TRAP_OOB};

    /// "Follow the pointer at byte 0; 0 terminates": the minimal chain
    /// program. One load, one compare, one terminator per hop.
    fn follow_prog() -> Arc<Program> {
        Arc::new(
            Program::verify(vec![
                Op::Imm { dst: 0, imm: 0 },
                Op::Load {
                    dst: 1,
                    width: Width::U64,
                    base: 0,
                    disp: 0,
                },
                Op::Imm { dst: 2, imm: 0 },
                Op::Jmp {
                    cond: Cond::Eq,
                    a: 1,
                    b: 2,
                    skip: 1,
                },
                Op::Resubmit { addr: 1 },
                Op::Return,
            ])
            .unwrap(),
        )
    }

    /// Writes one 512 B node at chain-window byte `offset`: next-pointer
    /// at byte 0, tag at byte 8. Window pages back onto blocks
    /// `1000 + page`.
    fn write_node(dev: &NvmeDevice, offset: u64, next: u64, tag: u8) {
        let mut b = [0u8; BLOCK];
        b[..8].copy_from_slice(&next.to_le_bytes());
        b[8] = tag;
        let sector = Lba(Lba::from_block(1000 + offset / PAGE_SIZE).0 + (offset % PAGE_SIZE) / 512);
        dev.write_raw(sector, &b);
    }

    fn chain_spec(dev: &NvmeDevice, vba: Vba) -> ChainSpec {
        let handle = dev.install_program(follow_prog());
        ChainSpec {
            prog: handle,
            regs: [0; 8],
            base_vba: vba.0,
        }
    }

    #[test]
    fn chain_read_follows_pointers_in_one_completion() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        // node0 → node2 → node7 → stop.
        write_node(&dev, 0, 1024, 10);
        write_node(&dev, 1024, 3584, 12);
        write_node(&dev, 3584, 0, 17);
        let spec = chain_spec(&dev, vba);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert!(comp.status.is_ok());
        let mut out = [0u8; BLOCK];
        dma.read(0, &mut out);
        assert_eq!(out[8], 17, "final block must be the chain's tail");
        let s = dev.stats();
        assert_eq!((s.chains, s.chain_hops, s.chain_faults), (1, 3, 0));
        assert_eq!(s.reads, 3, "each hop is a media read");
        assert_eq!(s.read_bytes, 3 * BLOCK as u64);
        // Three serialized hops: ≥ 3 × (translate + read_base).
        assert!(
            comp.ready_at.as_nanos() > 3 * 3450,
            "chain latency {}ns too small for 3 media reads",
            comp.ready_at.as_nanos()
        );
        // Per-tenant accounting: 2 resubmitted hops beyond the first.
        let ts = dev.tenant_stats(Tenant::User(P)).unwrap();
        assert_eq!(ts.offload_hops, 2);
        assert!(ts.accounted());
    }

    #[test]
    fn chain_is_deterministic_across_runs() {
        let run = || {
            let (mem, dev, _asid, vba) = setup_with_mapping(1);
            write_node(&dev, 0, 512, 1);
            write_node(&dev, 512, 1024, 2);
            write_node(&dev, 1024, 0, 3);
            let spec = chain_spec(&dev, vba);
            let q = dev.create_queue(Some(P), 32);
            let dma = DmaBuffer::alloc(&mem, 4096);
            dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO)
                .ready_at
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chain_program_fail_surfaces_code() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let handle = dev.install_program(Arc::new(
            Program::verify(vec![Op::Fail { code: 7 }]).unwrap(),
        ));
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let spec = ChainSpec {
            prog: handle,
            regs: [0; 8],
            base_vba: vba.0,
        };
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert_eq!(comp.status, NvmeStatus::ChainFault(7));
        let s = dev.stats();
        assert_eq!((s.chains, s.chain_hops, s.chain_faults), (1, 1, 1));
    }

    #[test]
    fn chain_hop_budget_enforced() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        // node0 points at itself: an infinite chain.
        write_node(&dev, 0, 0, 9);
        // Program that always resubmits offset 0 (never reads the stop
        // sentinel as such — r1 stays whatever the block says, 0 here
        // means "node 0", not stop).
        let handle = dev.install_program(Arc::new(
            Program::verify(vec![Op::Imm { dst: 0, imm: 0 }, Op::Resubmit { addr: 0 }]).unwrap(),
        ));
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let spec = ChainSpec {
            prog: handle,
            regs: [0; 8],
            base_vba: vba.0,
        };
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert_eq!(comp.status, NvmeStatus::ChainFault(TRAP_HOPS));
        assert_eq!(dev.stats().chain_hops, u64::from(MAX_HOPS));
    }

    #[test]
    fn chain_resubmit_into_unmapped_page_faults() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        // node0 points past the single mapped page.
        write_node(&dev, 0, PAGE_SIZE, 1);
        let spec = chain_spec(&dev, vba);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert!(matches!(comp.status, NvmeStatus::TranslationFault(_)));
        let s = dev.stats();
        assert_eq!(s.translation_faults, 1);
        assert_eq!(s.chain_hops, 1, "only the first hop read media");
        assert_eq!(s.chain_faults, 1);
    }

    #[test]
    fn chain_unaligned_resubmit_traps() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        write_node(&dev, 0, 100, 1); // 100 is not sector-aligned
        let spec = chain_spec(&dev, vba);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert_eq!(comp.status, NvmeStatus::ChainFault(TRAP_OOB));
    }

    #[test]
    fn chain_requires_user_queue_and_installed_program() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        write_node(&dev, 0, 0, 1);
        let spec = chain_spec(&dev, vba);
        let dma = DmaBuffer::alloc(&mem, 4096);
        // Kernel queue: no PASID → invalid.
        let kq = dev.create_queue(None, 32);
        let comp = dev.execute_full(kq, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert_eq!(comp.status, NvmeStatus::InvalidField);
        // Unknown program handle → invalid.
        let q = dev.create_queue(Some(P), 32);
        let bogus = ChainSpec {
            prog: ProgHandle(9999),
            ..spec
        };
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, bogus), Nanos::ZERO);
        assert_eq!(comp.status, NvmeStatus::InvalidField);
        // Removing the program invalidates the handle.
        assert!(dev.remove_program(spec.prog));
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert_eq!(comp.status, NvmeStatus::InvalidField);
    }

    #[test]
    fn chain_registers_persist_across_hops() {
        // A descent-style program: r1 counts remaining hops, seeded by
        // the host; each hop decrements and resubmits the next node until
        // the budget is spent. Register persistence across hops is what
        // makes a level-counted B-tree descent expressible.
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        for i in 0..4u64 {
            write_node(&dev, i * 512, (i + 1) * 512, i as u8);
        }
        let prog = Arc::new(
            Program::verify(vec![
                // if r1 == 0 → return this block
                Op::Imm { dst: 2, imm: 0 },
                Op::Jmp {
                    cond: Cond::Eq,
                    a: 1,
                    b: 2,
                    skip: 3,
                },
                Op::AluImm {
                    op: bypassd_offload::AluOp::Sub,
                    dst: 1,
                    imm: 1,
                },
                Op::Load {
                    dst: 3,
                    width: Width::U64,
                    base: 2,
                    disp: 0,
                },
                Op::Resubmit { addr: 3 },
                Op::Return,
            ])
            .unwrap(),
        );
        let handle = dev.install_program(prog);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let mut regs = [0u64; 8];
        regs[1] = 2; // two resubmits, then return the third node
        let spec = ChainSpec {
            prog: handle,
            regs,
            base_vba: vba.0,
        };
        let comp = dev.execute_full(q, Command::chain_read(vba, &dma, spec), Nanos::ZERO);
        assert!(comp.status.is_ok());
        let mut out = [0u8; BLOCK];
        dma.read(0, &mut out);
        assert_eq!(out[8], 2, "chain must stop at node 2 (hop budget 2)");
        assert_eq!(dev.stats().chain_hops, 3);
    }

    #[test]
    fn device_stats_surface_atc_and_qos_counters() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (_, t1) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t1);
        let s = dev.stats();
        assert_eq!((s.atc_hits, s.atc_misses), (1, 1));
        assert_eq!((s.qos_throttled, s.qos_deferred), (0, 0));
        dev.iommu().lock().invalidate_pasid(P);
        assert_eq!(dev.stats().atc_shootdowns, 1);
    }
}
