//! The NVMe device: command processing over queue pairs.
//!
//! Two command addressing modes exist (§4.3):
//!
//! * **LBA commands** — the pre-BypassD world: allowed only on queues with
//!   no PASID (kernel driver queues, or an SPDK process that has claimed
//!   the whole device). User queues may *not* issue LBA commands; that is
//!   precisely the protection SPDK lacks.
//! * **VBA commands** — BypassD: allowed only on PASID-bound user queues.
//!   The device sends the VBA, size, access kind and the queue's PASID to
//!   the IOMMU via ATS. For **reads**, translation is serialised before
//!   media access (the device needs block addresses first). For
//!   **writes**, translation overlaps the host→device data transfer, so
//!   writes see no translation latency (§4.3).
//!
//! Translation faults complete the command with an error status instead of
//! touching media — the hook that makes kernel revocation effective (§3.6).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bypassd_hw::iommu::{AccessKind, Iommu};
use bypassd_hw::types::{DevId, Lba, Pasid, Vba, SECTOR_SIZE};
use bypassd_sim::time::Nanos;

use crate::atc::{AtcStats, AtsCache, DEFAULT_ATC_CAPACITY};
use crate::dma::DmaBuffer;
use crate::queue::{Completion, NvmeStatus, QueueId, QueuePair};
use crate::store::SectorStore;
use crate::timing::{DeviceTimer, MediaTiming};

/// NVMe opcode subset used by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Read sectors into the DMA buffer.
    Read,
    /// Write sectors from the DMA buffer.
    Write,
    /// Flush the device write path.
    Flush,
    /// Write zeroes without a data buffer (used for block zeroing on
    /// allocation, §4.1).
    WriteZeroes,
}

/// How a command addresses the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAddr {
    /// Raw logical block address (kernel / SPDK paths).
    Lba(Lba),
    /// Virtual block address, translated by the IOMMU (BypassD path).
    Vba(Vba),
}

/// One I/O command.
#[derive(Debug)]
pub struct Command<'a> {
    /// Operation.
    pub opcode: Opcode,
    /// Target address (ignored for `Flush`).
    pub addr: BlockAddr,
    /// Sector count (ignored for `Flush`).
    pub sectors: u32,
    /// Data buffer (required for `Read`/`Write`).
    pub dma: Option<&'a DmaBuffer>,
    /// Byte offset into the DMA buffer.
    pub dma_offset: usize,
}

impl<'a> Command<'a> {
    /// A read of `sectors` sectors into `dma` at offset 0.
    pub fn read(addr: BlockAddr, sectors: u32, dma: &'a DmaBuffer) -> Self {
        Command {
            opcode: Opcode::Read,
            addr,
            sectors,
            dma: Some(dma),
            dma_offset: 0,
        }
    }

    /// A write of `sectors` sectors from `dma` at offset 0.
    pub fn write(addr: BlockAddr, sectors: u32, dma: &'a DmaBuffer) -> Self {
        Command {
            opcode: Opcode::Write,
            addr,
            sectors,
            dma: Some(dma),
            dma_offset: 0,
        }
    }

    /// A flush.
    pub fn flush() -> Self {
        Command {
            opcode: Opcode::Flush,
            addr: BlockAddr::Lba(Lba(0)),
            sectors: 0,
            dma: None,
            dma_offset: 0,
        }
    }

    /// A write-zeroes over `sectors` sectors.
    pub fn write_zeroes(addr: BlockAddr, sectors: u32) -> Self {
        Command {
            opcode: Opcode::WriteZeroes,
            addr,
            sectors,
            dma: None,
            dma_offset: 0,
        }
    }
}

/// Submission failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue has `depth` commands outstanding.
    QueueFull,
    /// No such queue.
    UnknownQueue,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue full"),
            SubmitError::UnknownQueue => f.write_str("unknown queue"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate device counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeviceStats {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Bytes read from media.
    pub read_bytes: u64,
    /// Bytes written to media.
    pub written_bytes: u64,
    /// Flush commands.
    pub flushes: u64,
    /// VBA translation faults surfaced as failed completions.
    pub translation_faults: u64,
}

struct DevState {
    store: SectorStore,
    timer: DeviceTimer,
    queues: std::collections::HashMap<QueueId, QueuePair>,
    stats: DeviceStats,
}

/// A simulated NVMe SSD.
///
/// Clone-free: wrap in `Arc` and share between the kernel driver, UserLib
/// instances and SPDK.
pub struct NvmeDevice {
    id: DevId,
    iommu: Arc<Mutex<Iommu>>,
    /// Device-side ATS translation cache (ablation, off by default).
    /// Separate from `state` so IOMMU shootdowns never touch the device
    /// lock (lock order: IOMMU → ATC; the device probes the ATC before
    /// taking the IOMMU lock).
    atc: Arc<AtsCache>,
    state: Mutex<DevState>,
    next_qid: AtomicU32,
}

impl NvmeDevice {
    /// Creates a device of `capacity_sectors` sectors with the given
    /// media timing, attached to `iommu` for ATS.
    pub fn new(
        id: DevId,
        capacity_sectors: u64,
        timing: MediaTiming,
        iommu: Arc<Mutex<Iommu>>,
    ) -> Arc<Self> {
        let atc = Arc::new(AtsCache::new(DEFAULT_ATC_CAPACITY));
        // Register for ATS shootdowns so kernel invalidations (detach,
        // revocation, unregister) also drop device-cached translations.
        iommu.lock().register_ats_sink(atc.clone());
        Arc::new(NvmeDevice {
            id,
            iommu,
            atc,
            state: Mutex::new(DevState {
                store: SectorStore::new(capacity_sectors),
                timer: DeviceTimer::new(timing),
                queues: std::collections::HashMap::new(),
                stats: DeviceStats::default(),
            }),
            next_qid: AtomicU32::new(1),
        })
    }

    /// This device's ID (compared against FTE DevIDs by the IOMMU).
    pub fn dev_id(&self) -> DevId {
        self.id
    }

    /// The IOMMU this device sends ATS requests to.
    pub fn iommu(&self) -> &Arc<Mutex<Iommu>> {
        &self.iommu
    }

    /// The device-side ATS translation cache.
    pub fn atc(&self) -> &Arc<AtsCache> {
        &self.atc
    }

    /// Enables/disables the device-side ATC (ablation knob; the default —
    /// matching the paper's model — is off).
    pub fn set_atc_enabled(&self, enabled: bool) {
        self.atc.set_enabled(enabled);
    }

    /// ATC hit/miss/shootdown counters.
    pub fn atc_stats(&self) -> AtcStats {
        self.atc.stats()
    }

    /// Media timing parameters.
    pub fn timing(&self) -> MediaTiming {
        self.state.lock().timer.timing()
    }

    /// Capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.state.lock().store.capacity_sectors()
    }

    /// Creates a queue pair. `pasid = Some(..)` makes a user queue bound
    /// to that process (§3.3); `None` makes a kernel/owner queue that may
    /// issue LBA commands.
    pub fn create_queue(&self, pasid: Option<Pasid>, depth: usize) -> QueueId {
        let qid = QueueId(self.next_qid.fetch_add(1, Ordering::SeqCst));
        self.state
            .lock()
            .queues
            .insert(qid, QueuePair::new(pasid, depth.max(1)));
        qid
    }

    /// Deletes a queue pair; outstanding completions are dropped.
    pub fn delete_queue(&self, qid: QueueId) {
        self.state.lock().queues.remove(&qid);
    }

    /// Submits a command at virtual time `now`; returns its command id.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] when `depth` commands are outstanding,
    /// [`SubmitError::UnknownQueue`] for a deleted queue.
    pub fn submit(&self, qid: QueueId, cmd: Command<'_>, now: Nanos) -> Result<u16, SubmitError> {
        let mut state = self.state.lock();
        let pasid = {
            let q = state
                .queues
                .get_mut(&qid)
                .ok_or(SubmitError::UnknownQueue)?;
            q.pasid
        };
        let cid = state
            .queues
            .get_mut(&qid)
            .unwrap()
            .claim()
            .ok_or(SubmitError::QueueFull)?;
        let completion = self.process(&mut state, pasid, cmd, now);
        state
            .queues
            .get_mut(&qid)
            .unwrap()
            .post(Completion { cid, ..completion });
        Ok(cid)
    }

    /// Convenience for synchronous callers: submit, reap, and return the
    /// final status with its completion time. The caller should
    /// `wait_until` the returned time before acting on the data.
    pub fn execute(&self, qid: QueueId, cmd: Command<'_>, now: Nanos) -> (NvmeStatus, Nanos) {
        let cid = match self.submit(qid, cmd, now) {
            Ok(c) => c,
            Err(SubmitError::QueueFull) => panic!("execute() on a full queue"),
            Err(SubmitError::UnknownQueue) => panic!("execute() on unknown queue"),
        };
        let ready = self.ready_time(qid, cid).expect("command vanished");
        let comp = self
            .reap_at(qid, cid, ready)
            .expect("completion not ready at its own ready time");
        (comp.status, ready)
    }

    fn process(
        &self,
        state: &mut DevState,
        pasid: Option<Pasid>,
        cmd: Command<'_>,
        now: Nanos,
    ) -> Completion {
        if cmd.opcode == Opcode::Flush {
            state.stats.flushes += 1;
            let ready = state.timer.schedule_flush(now);
            return Completion {
                cid: 0,
                status: NvmeStatus::Success,
                ready_at: ready,
            };
        }
        if cmd.sectors == 0 {
            return Completion {
                cid: 0,
                status: NvmeStatus::InvalidField,
                ready_at: now,
            };
        }
        let is_write = matches!(cmd.opcode, Opcode::Write | Opcode::WriteZeroes);

        // Resolve the address to LBA extents.
        let (extents, trans_cost): (Vec<(Lba, u32)>, Nanos) = match cmd.addr {
            BlockAddr::Lba(lba) => {
                if pasid.is_some() {
                    // Security: user queues may not address raw LBAs.
                    return Completion {
                        cid: 0,
                        status: NvmeStatus::InvalidField,
                        ready_at: now,
                    };
                }
                (vec![(lba, cmd.sectors)], Nanos::ZERO)
            }
            BlockAddr::Vba(vba) => {
                let pasid = match pasid {
                    Some(p) => p,
                    None => {
                        return Completion {
                            cid: 0,
                            status: NvmeStatus::InvalidField,
                            ready_at: now,
                        }
                    }
                };
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let len = cmd.sectors as u64 * SECTOR_SIZE;
                // Device-side ATC first (no PCIe round trip on a hit);
                // off by default, in which case this is always None.
                if let Some((extents, cost)) = self.atc.translate(pasid, vba, len, kind) {
                    let cost = if is_write { Nanos::ZERO } else { cost };
                    (extents, cost)
                } else {
                    let mut pages = if self.atc.enabled() {
                        Some(Vec::new())
                    } else {
                        None
                    };
                    let walked = self.iommu.lock().translate_collect(
                        pasid,
                        vba,
                        len,
                        kind,
                        self.id,
                        pages.as_mut(),
                    );
                    match walked {
                        Ok(t) => {
                            if let Some(pages) = &pages {
                                self.atc.fill(pasid, pages);
                            }
                            // Reads serialise translation; writes overlap it
                            // with the data transfer (§4.3).
                            let cost = if is_write { Nanos::ZERO } else { t.cost };
                            (t.extents, cost)
                        }
                        Err((fault, cost)) => {
                            state.stats.translation_faults += 1;
                            return Completion {
                                cid: 0,
                                status: NvmeStatus::TranslationFault(fault),
                                ready_at: now + cost,
                            };
                        }
                    }
                }
            }
        };

        // Range check.
        for (lba, sectors) in &extents {
            if !state.store.in_range(*lba, *sectors as u64) {
                return Completion {
                    cid: 0,
                    status: NvmeStatus::LbaOutOfRange,
                    ready_at: now,
                };
            }
        }

        // Functional data movement.
        let total_bytes = cmd.sectors as u64 * SECTOR_SIZE;
        match cmd.opcode {
            Opcode::Read => {
                let dma = cmd.dma.expect("read without DMA buffer");
                let mut off = cmd.dma_offset;
                let mut chunk = Vec::new();
                for (lba, sectors) in &extents {
                    let n = (*sectors as u64 * SECTOR_SIZE) as usize;
                    chunk.resize(n, 0);
                    state.store.read(*lba, &mut chunk);
                    dma.write(off, &chunk);
                    off += n;
                }
                state.stats.reads += 1;
                state.stats.read_bytes += total_bytes;
            }
            Opcode::Write => {
                let dma = cmd.dma.expect("write without DMA buffer");
                let mut off = cmd.dma_offset;
                let mut chunk = Vec::new();
                for (lba, sectors) in &extents {
                    let n = (*sectors as u64 * SECTOR_SIZE) as usize;
                    chunk.resize(n, 0);
                    dma.read(off, &mut chunk);
                    state.store.write(*lba, &chunk);
                    off += n;
                }
                state.stats.writes += 1;
                state.stats.written_bytes += total_bytes;
            }
            Opcode::WriteZeroes => {
                for (lba, sectors) in &extents {
                    state.store.write_zeroes(*lba, *sectors as u64);
                }
                state.stats.writes += 1;
                state.stats.written_bytes += total_bytes;
            }
            Opcode::Flush => unreachable!(),
        }

        let ready = if matches!(cmd.opcode, Opcode::WriteZeroes) {
            let cost = state.timer.timing().write_zeroes_cost;
            state.timer.schedule_fixed(now + trans_cost, cost)
        } else {
            state
                .timer
                .schedule(now + trans_cost, is_write, total_bytes)
        };
        Completion {
            cid: 0,
            status: NvmeStatus::Success,
            ready_at: ready,
        }
    }

    /// Completion time of command `cid` on `qid`, if posted.
    pub fn ready_time(&self, qid: QueueId, cid: u16) -> Option<Nanos> {
        self.state.lock().queues.get(&qid)?.ready_time(cid)
    }

    /// Reaps the completion for `cid` if visible at `now`.
    pub fn reap_at(&self, qid: QueueId, cid: u16, now: Nanos) -> Option<Completion> {
        self.state.lock().queues.get_mut(&qid)?.reap(cid, now)
    }

    /// Reaps up to `max` completions visible at `now`, earliest first.
    pub fn reap_ready(&self, qid: QueueId, now: Nanos, max: usize) -> Vec<Completion> {
        self.state
            .lock()
            .queues
            .get_mut(&qid)
            .map(|q| q.reap_ready(now, max))
            .unwrap_or_default()
    }

    /// Earliest pending completion time on `qid`.
    pub fn next_ready_time(&self, qid: QueueId) -> Option<Nanos> {
        self.state.lock().queues.get_mut(&qid)?.next_ready_time()
    }

    /// Latest pending completion time on `qid` (flush barrier helper).
    pub fn last_ready_time(&self, qid: QueueId) -> Option<Nanos> {
        self.state.lock().queues.get(&qid)?.last_ready_time()
    }

    /// Resets the contention ledger (see [`DeviceTimer::reset`]). Call
    /// between independent simulations sharing this device; pending
    /// completions on open queues are dropped.
    pub fn reset_timing(&self) {
        let mut state = self.state.lock();
        state.timer.reset();
        for q in state.queues.values_mut() {
            let dropped = q.drop_pending();
            q.inflight -= dropped.min(q.inflight);
        }
    }

    /// Counters.
    pub fn stats(&self) -> DeviceStats {
        self.state.lock().stats
    }

    // ---- Maintenance access (setup code and the simulated kernel's
    // block layer use these; they move bytes without timing). ----

    /// Reads raw sectors, bypassing queues and timing.
    pub fn read_raw(&self, lba: Lba, buf: &mut [u8]) {
        self.state.lock().store.read(lba, buf);
    }

    /// Writes raw sectors, bypassing queues and timing.
    pub fn write_raw(&self, lba: Lba, data: &[u8]) {
        self.state.lock().store.write(lba, data);
    }

    /// Zeroes raw sectors, bypassing queues and timing.
    pub fn zero_raw(&self, lba: Lba, sectors: u64) {
        self.state.lock().store.write_zeroes(lba, sectors);
    }

    /// Materialised media blocks (memory accounting).
    pub fn resident_blocks(&self) -> usize {
        self.state.lock().store.resident_blocks()
    }
}

impl std::fmt::Debug for NvmeDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("NvmeDevice")
            .field("id", &self.id)
            .field("queues", &state.queues.len())
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bypassd_hw::mem::PhysMem;
    use bypassd_hw::page_table::AddressSpace;
    use bypassd_hw::pte::Pte;
    use bypassd_hw::types::PAGE_SIZE;

    const DEV: DevId = DevId(1);
    const P: Pasid = Pasid(42);

    fn setup() -> (PhysMem, Arc<NvmeDevice>) {
        let mem = PhysMem::new();
        let iommu = Arc::new(Mutex::new(Iommu::new(&mem)));
        let dev = NvmeDevice::new(DEV, 1 << 22, MediaTiming::default(), iommu);
        (mem, dev)
    }

    fn setup_with_mapping(n_blocks: u64) -> (PhysMem, Arc<NvmeDevice>, AddressSpace, Vba) {
        let (mem, dev) = setup();
        let mut asid = AddressSpace::new(&mem);
        let vba = Vba(0x4000_0000);
        for i in 0..n_blocks {
            asid.map_page(
                vba.as_virt().offset(i * PAGE_SIZE),
                Pte::fte(Lba::from_block(1000 + i), DEV, true),
            );
        }
        dev.iommu().lock().register(P, asid.root_frame());
        (mem, dev, asid, vba)
    }

    #[test]
    fn lba_write_read_roundtrip_on_kernel_queue() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dma.write(0, &[0x5A; 4096]);
        let (st, t1) = dev.execute(
            q,
            Command::write(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        assert!(st.is_ok());
        let dma2 = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Lba(Lba(0)), 8, &dma2), t1);
        assert!(st.is_ok());
        let mut out = [0u8; 4096];
        dma2.read(0, &mut out);
        assert!(out.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn lba_command_rejected_on_user_queue() {
        let (mem, dev) = setup();
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        assert_eq!(
            st,
            NvmeStatus::InvalidField,
            "user queue must not take raw LBAs"
        );
    }

    #[test]
    fn vba_command_rejected_on_kernel_queue() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Vba(Vba(0x1000)), 8, &dma),
            Nanos::ZERO,
        );
        assert_eq!(st, NvmeStatus::InvalidField);
    }

    #[test]
    fn vba_read_translates_and_returns_data() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        dev.write_raw(Lba::from_block(1000), &[0xC3; 4096]);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, ready) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let mut out = [0u8; 4096];
        dma.read(0, &mut out);
        assert!(out.iter().all(|&b| b == 0xC3));
        // Read latency includes translation (~550ns) + device (~4020ns).
        let ns = ready.as_nanos();
        assert!((4300..5000).contains(&ns), "VBA read latency = {ns}ns");
    }

    #[test]
    fn vba_write_has_no_translation_latency() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dma.write(0, &[1; 4096]);
        let (st, ready) = dev.execute(q, Command::write(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let service = MediaTiming::default().service(true, 4096);
        assert_eq!(ready, service, "write must overlap VBA translation");
        let mut out = [0u8; 4096];
        dev.read_raw(Lba::from_block(1000), &mut out);
        assert!(out.iter().all(|&b| b == 1));
    }

    #[test]
    fn unmapped_vba_faults_without_touching_media() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Vba(vba.offset(PAGE_SIZE)), 8, &dma),
            Nanos::ZERO,
        );
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
        assert_eq!(dev.stats().reads, 0);
        assert_eq!(dev.stats().translation_faults, 1);
    }

    #[test]
    fn readonly_mapping_blocks_vba_write() {
        let (mem, dev) = setup();
        let mut asid = AddressSpace::new(&mem);
        let vba = Vba(0x4000_0000);
        asid.map_page(vba.as_virt(), Pte::fte(Lba::from_block(7), DEV, false));
        dev.iommu().lock().register(P, asid.root_frame());
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(q, Command::write(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
    }

    #[test]
    fn multi_extent_vba_read_concatenates_in_dma_order() {
        // Two non-contiguous blocks must land in the DMA buffer in VBA
        // order, not LBA order.
        let (mem, dev) = setup();
        let mut asid = AddressSpace::new(&mem);
        let vba = Vba(0x4000_0000);
        asid.map_page(vba.as_virt(), Pte::fte(Lba::from_block(500), DEV, true));
        asid.map_page(
            vba.as_virt().offset(PAGE_SIZE),
            Pte::fte(Lba::from_block(100), DEV, true),
        );
        dev.iommu().lock().register(P, asid.root_frame());
        dev.write_raw(Lba::from_block(500), &[0xAA; 4096]);
        dev.write_raw(Lba::from_block(100), &[0xBB; 4096]);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 8192);
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 16, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        let mut out = [0u8; 8192];
        dma.read(0, &mut out);
        assert!(out[..4096].iter().all(|&b| b == 0xAA));
        assert!(out[4096..].iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn queue_depth_enforced_and_reap_frees() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 1);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let cid = dev
            .submit(
                q,
                Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
                Nanos::ZERO,
            )
            .unwrap();
        let err = dev
            .submit(
                q,
                Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
                Nanos::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        let ready = dev.ready_time(q, cid).unwrap();
        assert!(dev.reap_at(q, cid, ready).is_some());
        assert!(dev
            .submit(q, Command::read(BlockAddr::Lba(Lba(0)), 8, &dma), ready)
            .is_ok());
    }

    #[test]
    fn flush_completes_after_writes() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dma.write(0, &[2; 4096]);
        let (_, w) = dev.execute(
            q,
            Command::write(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        let (st, f) = dev.execute(q, Command::flush(), Nanos(1));
        assert!(st.is_ok());
        assert!(f > w);
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let cap = dev.capacity_sectors();
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(cap)), 8, &dma),
            Nanos::ZERO,
        );
        assert_eq!(st, NvmeStatus::LbaOutOfRange);
    }

    #[test]
    fn write_zeroes_clears_blocks() {
        let (_mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        dev.write_raw(Lba::from_block(3), &[9; 4096]);
        let (st, _) = dev.execute(
            q,
            Command::write_zeroes(BlockAddr::Lba(Lba::from_block(3)), 8),
            Nanos::ZERO,
        );
        assert!(st.is_ok());
        let mut out = [9u8; 4096];
        dev.read_raw(Lba::from_block(3), &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_sector_command_invalid() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(0)), 0, &dma),
            Nanos::ZERO,
        );
        assert_eq!(st, NvmeStatus::InvalidField);
    }

    #[test]
    fn stats_accumulate() {
        let (mem, dev) = setup();
        let q = dev.create_queue(None, 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        dev.execute(
            q,
            Command::write(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        dev.execute(
            q,
            Command::read(BlockAddr::Lba(Lba(0)), 8, &dma),
            Nanos::ZERO,
        );
        dev.execute(q, Command::flush(), Nanos::ZERO);
        let s = dev.stats();
        assert_eq!((s.reads, s.writes, s.flushes), (1, 1, 1));
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.written_bytes, 4096);
    }

    #[test]
    fn atc_hit_skips_pcie_round_trip() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, t1) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        // Second read of the same page: translated on-device.
        let (st, t2) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t1);
        assert!(st.is_ok());
        let cold = t1.as_nanos();
        let warm = t2.as_nanos() - t1.as_nanos();
        // Cold read paid pcie_rtt + walk (~528ns); warm read pays only
        // the on-device lookup (14ns) before the same media time.
        assert!(
            cold - warm > 500,
            "ATC hit should shave the ATS round trip: cold={cold} warm={warm}"
        );
        let s = dev.atc_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn atc_disabled_by_default_keeps_ats_costs() {
        let (mem, dev, _asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (_, t1) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        let (_, t2) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t1);
        // Both reads pay the full ATS translation (pcie + walk); the warm
        // one only saves the PWC miss.
        let cold = t1.as_nanos();
        let warm = t2.as_nanos() - t1.as_nanos();
        assert_eq!(cold - warm, 120, "only the PWC component may differ");
        assert_eq!(dev.atc_stats(), crate::atc::AtcStats::default());
    }

    #[test]
    fn revocation_shoots_down_atc_so_fallback_still_fires() {
        // §3.6 regression with the ATC enabled: a revoked FTE must not be
        // served from the device cache.
        let (mem, dev, mut asid, vba) = setup_with_mapping(1);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, t) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        assert!(!dev.atc().is_empty(), "walk should have filled the ATC");
        // Kernel revokes: detach FTE + IOMMU invalidate, which broadcasts
        // to the ATC.
        asid.unmap_page(vba.as_virt());
        dev.iommu().lock().invalidate_pasid(P);
        assert!(dev.atc().is_empty(), "shootdown must reach the device");
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t);
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
        assert_eq!(dev.atc_stats().shootdowns, 1);
    }

    #[test]
    fn range_shootdown_drops_only_covered_atc_pages() {
        let (mem, dev, _asid, vba) = setup_with_mapping(2);
        dev.set_atc_enabled(true);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 8192);
        let (st, t) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 16, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        assert_eq!(dev.atc().len(), 2);
        dev.iommu().lock().invalidate_range(P, vba, PAGE_SIZE);
        assert_eq!(dev.atc().len(), 1, "only the covered page drops");
        // Second page still hits on-device; first page re-walks fine.
        let (st, _) = dev.execute(
            q,
            Command::read(BlockAddr::Vba(vba.offset(PAGE_SIZE)), 8, &dma),
            t,
        );
        assert!(st.is_ok());
        assert_eq!(dev.atc_stats().hits, 1);
    }

    #[test]
    fn revocation_mid_stream_fails_subsequent_ios() {
        let (mem, dev, mut asid, vba) = setup_with_mapping(1);
        let q = dev.create_queue(Some(P), 32);
        let dma = DmaBuffer::alloc(&mem, 4096);
        let (st, t) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), Nanos::ZERO);
        assert!(st.is_ok());
        // Kernel revokes: detach FTE + IOTLB invalidate.
        asid.unmap_page(vba.as_virt());
        dev.iommu().lock().invalidate_pasid(P);
        let (st, _) = dev.execute(q, Command::read(BlockAddr::Vba(vba), 8, &dma), t);
        assert!(matches!(st, NvmeStatus::TranslationFault(_)));
    }
}
