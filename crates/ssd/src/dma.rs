//! Pinned DMA buffers.
//!
//! UserLib (like SPDK) allocates pinned pages at initialisation and copies
//! between user buffers and these DMA buffers (§4.2 — BypassD deliberately
//! does not do zero-copy I/O). The buffer is a run of physical frames in
//! simulated memory, so the device and the host genuinely exchange bytes.

use bypassd_hw::mem::PhysMem;
use bypassd_hw::types::{PhysAddr, PAGE_SIZE};

/// A pinned, physically-backed DMA buffer.
///
/// ```rust
/// use bypassd_hw::PhysMem;
/// use bypassd_ssd::DmaBuffer;
/// let mem = PhysMem::new();
/// let buf = DmaBuffer::alloc(&mem, 8192);
/// buf.write(0, b"hello");
/// let mut out = [0u8; 5];
/// buf.read(0, &mut out);
/// assert_eq!(&out, b"hello");
/// ```
#[derive(Debug)]
pub struct DmaBuffer {
    mem: PhysMem,
    frames: Vec<u64>,
    len: usize,
}

impl DmaBuffer {
    /// Allocates a pinned buffer of at least `len` bytes (rounded up to
    /// whole pages).
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn alloc(mem: &PhysMem, len: usize) -> Self {
        assert!(len > 0, "empty DMA buffer");
        let pages = (len as u64).div_ceil(PAGE_SIZE);
        let frames = (0..pages).map(|_| mem.alloc_frame()).collect();
        DmaBuffer {
            mem: mem.clone(),
            frames,
            len: (pages * PAGE_SIZE) as usize,
        }
    }

    /// Buffer capacity in bytes (page-rounded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (buffers cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The backing frame numbers (what an NVMe PRP list would carry).
    pub fn frames(&self) -> &[u64] {
        &self.frames
    }

    fn for_each_chunk(&self, offset: usize, len: usize, mut f: impl FnMut(PhysAddr, usize, usize)) {
        assert!(offset + len <= self.len, "DMA access out of bounds");
        let mut done = 0usize;
        while done < len {
            let pos = offset + done;
            let page = pos / PAGE_SIZE as usize;
            let off = pos % PAGE_SIZE as usize;
            let n = (PAGE_SIZE as usize - off).min(len - done);
            f(PhysAddr::from_frame(self.frames[page], off as u64), done, n);
            done += n;
        }
    }

    /// Copies `data` into the buffer at `offset`.
    ///
    /// # Panics
    /// Panics if the range exceeds the buffer.
    pub fn write(&self, offset: usize, data: &[u8]) {
        self.for_each_chunk(offset, data.len(), |pa, done, n| {
            self.mem.write(pa, &data[done..done + n]);
        });
    }

    /// Copies from the buffer at `offset` into `out`, chunk by chunk —
    /// no staging allocation on the hot read path.
    ///
    /// # Panics
    /// Panics if the range exceeds the buffer.
    pub fn read(&self, offset: usize, out: &mut [u8]) {
        let len = out.len();
        let mut rest = &mut *out;
        self.for_each_chunk(offset, len, |pa, _done, n| {
            let (cur, tail) = std::mem::take(&mut rest).split_at_mut(n);
            self.mem.read(pa, cur);
            rest = tail;
        });
    }
}

impl Drop for DmaBuffer {
    fn drop(&mut self) {
        for f in &self.frames {
            self.mem.free_frame(*f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_pages() {
        let mem = PhysMem::new();
        let buf = DmaBuffer::alloc(&mem, 100);
        assert_eq!(buf.len(), PAGE_SIZE as usize);
        assert_eq!(buf.frames().len(), 1);
        let buf2 = DmaBuffer::alloc(&mem, PAGE_SIZE as usize + 1);
        assert_eq!(buf2.frames().len(), 2);
    }

    #[test]
    fn cross_page_roundtrip() {
        let mem = PhysMem::new();
        let buf = DmaBuffer::alloc(&mem, 3 * PAGE_SIZE as usize);
        let data: Vec<u8> = (0..2 * PAGE_SIZE as usize + 100)
            .map(|i| (i % 255) as u8)
            .collect();
        buf.write(500, &data);
        let mut out = vec![0u8; data.len()];
        buf.read(500, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn drop_frees_frames() {
        let mem = PhysMem::new();
        let before = mem.allocated_frames();
        {
            let _buf = DmaBuffer::alloc(&mem, 10 * PAGE_SIZE as usize);
            assert_eq!(mem.allocated_frames(), before + 10);
        }
        assert_eq!(mem.allocated_frames(), before);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let mem = PhysMem::new();
        let buf = DmaBuffer::alloc(&mem, 512);
        buf.write(PAGE_SIZE as usize - 1, &[0, 0]);
    }
}
