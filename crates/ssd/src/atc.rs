//! Device-side ATS translation cache (ATC).
//!
//! PCIe ATS lets an endpoint cache translations it received from the
//! IOMMU and reuse them on later requests, skipping the PCIe round trip
//! to the translation agent. BypassD's evaluation models the IOMMU-side
//! caches only; this module adds the device side as an **ablation knob**
//! (disabled by default, so default modeled timings are unchanged).
//!
//! When enabled, the device fills the ATC with the per-page VBA→LBA
//! translations returned by each IOMMU walk. A later request whose pages
//! all hit (with sufficient permission) is translated locally for
//! [`AtsCache::hit_cost`] instead of the full `pcie_rtt + ...` ATS cost.
//!
//! Coherence: the cache implements [`AtsSink`] and is registered with the
//! IOMMU at device creation, so every kernel-initiated shootdown (FTE
//! detach, revocation, PASID unregister, range invalidation) also drops
//! the device-cached entries. A revoked mapping therefore misses the ATC,
//! reaches the IOMMU, faults, and surfaces as a failed completion — the
//! §3.6 fault-and-fallback path is preserved bit-for-bit.

use parking_lot::Mutex;

use bypassd_hw::iommu::{AccessKind, AtsSink, PageTranslation};
use bypassd_hw::lru::PasidLru;
use bypassd_hw::types::{Lba, Pasid, Vba, PAGE_SIZE, SECTOR_SIZE};
use bypassd_sim::time::Nanos;

/// Default ATC capacity in page entries (4 MB of coverage at 4 KB pages —
/// small, as befits on-device SRAM).
pub const DEFAULT_ATC_CAPACITY: usize = 1024;

/// One cached page translation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct AtcEntry {
    lba: Lba,
    writable: bool,
}

#[derive(Debug)]
struct AtcInner {
    enabled: bool,
    cache: PasidLru<AtcEntry>,
    hits: u64,
    misses: u64,
    shootdowns: u64,
}

/// Hit/miss/shootdown counters of an [`AtsCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtcStats {
    /// Requests fully served from the ATC.
    pub hits: u64,
    /// Requests that fell through to the IOMMU (counted only while the
    /// cache is enabled).
    pub misses: u64,
    /// Invalidation messages received from the IOMMU.
    pub shootdowns: u64,
}

/// The device-side ATS translation cache.
///
/// Lives in its own `Arc` + `Mutex`, separate from the device state lock:
/// the IOMMU broadcasts invalidations into it (lock order IOMMU → ATC),
/// while the device probes it *before* taking the IOMMU lock, so no lock
/// cycle exists.
#[derive(Debug)]
pub struct AtsCache {
    inner: Mutex<AtcInner>,
    /// Modeled cost of a device-local translation hit. The lookup is an
    /// on-device SRAM access, comparable to an IOTLB tag match (14 ns);
    /// crucially it avoids the 345 ns PCIe round trip.
    hit_cost: Nanos,
}

impl AtsCache {
    /// Creates a disabled cache of `capacity` page entries.
    pub fn new(capacity: usize) -> Self {
        AtsCache {
            inner: Mutex::new(AtcInner {
                enabled: false,
                cache: PasidLru::new(capacity),
                hits: 0,
                misses: 0,
                shootdowns: 0,
            }),
            hit_cost: Nanos(14),
        }
    }

    /// Enables or disables the cache (ablation knob). Disabling drops all
    /// entries so a later re-enable starts cold.
    pub fn set_enabled(&self, enabled: bool) {
        let mut inner = self.inner.lock();
        inner.enabled = enabled;
        if !enabled {
            inner.cache.clear();
        }
    }

    /// Whether the cache is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Modeled latency of an ATC hit.
    pub fn hit_cost(&self) -> Nanos {
        self.hit_cost
    }

    /// Counters.
    pub fn stats(&self) -> AtcStats {
        let inner = self.inner.lock();
        AtcStats {
            hits: inner.hits,
            misses: inner.misses,
            shootdowns: inner.shootdowns,
        }
    }

    /// Current number of cached page entries.
    pub fn len(&self) -> usize {
        self.inner.lock().cache.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to translate `len` bytes at `vba` entirely from the cache.
    /// Returns coalesced `(Lba, sectors)` extents plus the modeled hit
    /// cost, or `None` when disabled, any page misses, or a write lacks
    /// permission (the IOMMU then performs — and faults — the request).
    pub fn translate(
        &self,
        pasid: Pasid,
        vba: Vba,
        len: u64,
        access: AccessKind,
    ) -> Option<(Vec<(Lba, u32)>, Nanos)> {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return None;
        }
        let first_page = vba.0 / PAGE_SIZE;
        let last_page = (vba.0 + len.max(1) - 1) / PAGE_SIZE;
        let mut extents: Vec<(Lba, u32)> = Vec::new();
        for page in first_page..=last_page {
            let entry = match inner.cache.get(pasid, page) {
                Some(e) => *e,
                None => {
                    inner.misses += 1;
                    return None;
                }
            };
            if access == AccessKind::Write && !entry.writable {
                // Insufficient permission: let the IOMMU walk and fault.
                inner.misses += 1;
                return None;
            }
            let page_start = page * PAGE_SIZE;
            let lo = vba.0.max(page_start);
            let hi = (vba.0 + len).min(page_start + PAGE_SIZE);
            let sector_off = (lo - page_start) / SECTOR_SIZE;
            let sectors = ((hi - lo) / SECTOR_SIZE) as u32;
            let lba = entry.lba.advance(sector_off);
            if let Some(last) = extents.last_mut() {
                if last.0.advance(last.1 as u64) == lba {
                    last.1 += sectors;
                    continue;
                }
            }
            extents.push((lba, sectors));
        }
        inner.hits += 1;
        Some((extents, self.hit_cost))
    }

    /// Installs the per-page translations returned by an IOMMU walk.
    /// No-op while disabled.
    pub fn fill(&self, pasid: Pasid, pages: &[PageTranslation]) {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return;
        }
        for p in pages {
            inner.cache.insert(
                pasid,
                p.vpn,
                AtcEntry {
                    lba: p.lba,
                    writable: p.writable,
                },
            );
        }
    }
}

impl AtsSink for AtsCache {
    fn ats_invalidate_pasid(&self, pasid: Pasid) {
        let mut inner = self.inner.lock();
        inner.shootdowns += 1;
        inner.cache.invalidate_pasid(pasid);
    }

    fn ats_invalidate_range(&self, pasid: Pasid, vba: Vba, len: u64) {
        let mut inner = self.inner.lock();
        inner.shootdowns += 1;
        let first = vba.0 / PAGE_SIZE;
        let last = (vba.0 + len.max(1) - 1) / PAGE_SIZE;
        inner.cache.invalidate_range(pasid, first, last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Pasid = Pasid(3);

    fn page(vpn: u64, block: u64, writable: bool) -> PageTranslation {
        PageTranslation {
            vpn,
            lba: Lba::from_block(block),
            writable,
        }
    }

    #[test]
    fn disabled_cache_never_answers() {
        let atc = AtsCache::new(16);
        atc.fill(P, &[page(1, 10, true)]);
        assert!(atc
            .translate(P, Vba(PAGE_SIZE), PAGE_SIZE, AccessKind::Read)
            .is_none());
        assert_eq!(atc.stats(), AtcStats::default(), "disabled: no counters");
    }

    #[test]
    fn hit_coalesces_and_costs_local_lookup() {
        let atc = AtsCache::new(16);
        atc.set_enabled(true);
        atc.fill(
            P,
            &[page(0, 10, true), page(1, 11, true), page(2, 40, true)],
        );
        let (extents, cost) = atc
            .translate(P, Vba(0), 3 * PAGE_SIZE, AccessKind::Read)
            .unwrap();
        assert_eq!(
            extents,
            vec![(Lba::from_block(10), 16), (Lba::from_block(40), 8)]
        );
        assert_eq!(cost, atc.hit_cost());
        assert_eq!(atc.stats().hits, 1);
    }

    #[test]
    fn partial_coverage_is_a_miss() {
        let atc = AtsCache::new(16);
        atc.set_enabled(true);
        atc.fill(P, &[page(0, 10, true)]);
        assert!(atc
            .translate(P, Vba(0), 2 * PAGE_SIZE, AccessKind::Read)
            .is_none());
        assert_eq!(atc.stats().misses, 1);
    }

    #[test]
    fn write_through_readonly_entry_is_a_miss() {
        let atc = AtsCache::new(16);
        atc.set_enabled(true);
        atc.fill(P, &[page(0, 10, false)]);
        assert!(atc
            .translate(P, Vba(0), PAGE_SIZE, AccessKind::Write)
            .is_none());
        assert!(atc
            .translate(P, Vba(0), PAGE_SIZE, AccessKind::Read)
            .is_some());
    }

    #[test]
    fn shootdowns_drop_entries() {
        let atc = AtsCache::new(16);
        atc.set_enabled(true);
        atc.fill(P, &[page(0, 10, true), page(1, 11, true)]);
        atc.ats_invalidate_range(P, Vba(0), PAGE_SIZE);
        assert!(atc
            .translate(P, Vba(0), PAGE_SIZE, AccessKind::Read)
            .is_none());
        assert!(atc
            .translate(P, Vba(PAGE_SIZE), PAGE_SIZE, AccessKind::Read)
            .is_some());
        atc.ats_invalidate_pasid(P);
        assert!(atc.is_empty());
        assert_eq!(atc.stats().shootdowns, 2);
    }

    #[test]
    fn disable_clears_entries() {
        let atc = AtsCache::new(16);
        atc.set_enabled(true);
        atc.fill(P, &[page(0, 10, true)]);
        atc.set_enabled(false);
        atc.set_enabled(true);
        assert!(atc
            .translate(P, Vba(0), PAGE_SIZE, AccessKind::Read)
            .is_none());
    }
}
