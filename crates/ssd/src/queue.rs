//! NVMe queue pairs: submission/completion bookkeeping.
//!
//! A queue pair is created through the driver and — the BypassD change —
//! bound to the owning process's PASID (§3.3), which the device attaches
//! to every ATS translation request issued for commands on that queue.
//! Kernel-owned queues have no PASID and may only carry LBA commands.
//!
//! Pending completions are kept in a binary min-heap keyed
//! `(ready_at, cid)` next to a `cid → completion` map. Polling pops
//! ready entries straight off the heap — O(log n) each — instead of the
//! seed's filter-and-`sort_by_key` over every pending completion on
//! every poll. Targeted reaps (`reap(cid)`) remove from the map only and
//! leave a stale heap entry behind; the heap lazily discards entries
//! whose cid is gone from the map (or was reused with a different ready
//! time) when they surface.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use bypassd_hw::iommu::TranslateError;
use bypassd_hw::types::Pasid;
use bypassd_sim::time::Nanos;

/// Identifies a queue pair on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub u32);

/// NVMe completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeStatus {
    /// Command completed successfully.
    Success,
    /// VBA translation failed — surfaced to UserLib, which re-`fmap()`s
    /// and falls back to the kernel interface (§3.6).
    TranslationFault(TranslateError),
    /// LBA range exceeds the namespace.
    LbaOutOfRange,
    /// Command malformed (e.g. VBA command on a kernel queue).
    InvalidField,
    /// An offload chain aborted: either the program executed
    /// [`Op::Fail`](bypassd_offload::Op::Fail) with this code, or the
    /// engine raised a reserved trap (`0xFF00..` — out-of-bounds load,
    /// step budget, hop budget).
    ChainFault(u16),
    /// Transient media error injected by the fault plane. Retryable: the
    /// kernel maps it to `EIO` after UserLib's bounded retry gives up.
    MediaError,
}

impl NvmeStatus {
    /// True on success.
    pub fn is_ok(self) -> bool {
        self == NvmeStatus::Success
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Command identifier this completes.
    pub cid: u16,
    /// Outcome.
    pub status: NvmeStatus,
    /// Virtual time at which the completion is visible to the host.
    pub ready_at: Nanos,
    /// Congestion signal (QoS backpressure): the command was delayed by
    /// rate limiting or fair-share pacing, or the queue pair is running
    /// near its depth limit. Always false with QoS disabled. UserLib
    /// reacts by shrinking its effective queue depth (§5.1 pipeline).
    pub pressure: bool,
}

/// Device-side queue pair state.
#[derive(Debug)]
pub(crate) struct QueuePair {
    /// PASID bound at creation (None for kernel queues).
    pub pasid: Option<Pasid>,
    /// Maximum outstanding commands.
    pub depth: usize,
    /// Completions not yet reaped by the host, by command id.
    pending: HashMap<u16, Completion>,
    /// Min-heap of `(ready_at, cid)`; may hold stale entries for reaped
    /// or reused cids (discarded lazily against `pending`, and compacted
    /// once the stale fraction exceeds one half).
    heap: BinaryHeap<Reverse<(Nanos, u16)>>,
    /// Heap entries known stale (targeted reaps, overwritten cids) that
    /// lazy discard has not yet popped.
    stale: usize,
    /// Commands submitted but not yet reaped.
    pub inflight: usize,
    next_cid: u16,
}

/// Below this heap size, stale entries are left for lazy discard; a
/// rebuild would cost more than it saves.
const COMPACT_MIN_HEAP: usize = 64;

impl QueuePair {
    pub(crate) fn new(pasid: Option<Pasid>, depth: usize) -> Self {
        QueuePair {
            pasid,
            depth,
            pending: HashMap::new(),
            heap: BinaryHeap::new(),
            stale: 0,
            inflight: 0,
            next_cid: 0,
        }
    }

    /// Claims a submission slot, returning the command id, or `None` when
    /// the queue is full.
    pub(crate) fn claim(&mut self) -> Option<u16> {
        if self.inflight >= self.depth {
            return None;
        }
        self.inflight += 1;
        Some(self.take_cid())
    }

    /// Advances the cid counter without occupying a slot — used by the
    /// synchronous execute path, which claims and retires the command in
    /// the same device-lock critical section.
    pub(crate) fn take_cid(&mut self) -> u16 {
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        cid
    }

    /// Posts a completion.
    pub(crate) fn post(&mut self, completion: Completion) {
        self.heap
            .push(Reverse((completion.ready_at, completion.cid)));
        if self.pending.insert(completion.cid, completion).is_some() {
            // A reused cid shadowed an unreaped completion; its old heap
            // entry is now stale.
            self.stale += 1;
            self.maybe_compact();
        }
    }

    /// Ready time of command `cid`, if it has been posted.
    pub(crate) fn ready_time(&self, cid: u16) -> Option<Nanos> {
        self.pending.get(&cid).map(|c| c.ready_at)
    }

    /// Reaps the completion for `cid` if visible at `now`. The heap entry
    /// stays behind and is discarded lazily (or by compaction once stale
    /// entries dominate the heap).
    pub(crate) fn reap(&mut self, cid: u16, now: Nanos) -> Option<Completion> {
        if self.pending.get(&cid)?.ready_at > now {
            return None;
        }
        self.inflight -= 1;
        let c = self.pending.remove(&cid);
        if c.is_some() {
            self.stale += 1;
            self.maybe_compact();
        }
        c
    }

    /// Rebuilds the heap from the live pending map once more than half
    /// of a non-trivial heap is stale, bounding retained garbage: a
    /// long-lived queue driven purely by targeted reaps stays O(depth)
    /// instead of growing monotonically.
    fn maybe_compact(&mut self) {
        if self.heap.len() >= COMPACT_MIN_HEAP && self.stale * 2 > self.heap.len() {
            self.heap.clear();
            self.heap
                .extend(self.pending.values().map(|c| Reverse((c.ready_at, c.cid))));
            self.stale = 0;
        }
    }

    /// True when the heap's top entry no longer matches a pending
    /// completion (reaped by cid, dropped, or the cid was reused with a
    /// different ready time).
    fn top_is_stale(&self, ready_at: Nanos, cid: u16) -> bool {
        self.pending.get(&cid).map(|c| c.ready_at) != Some(ready_at)
    }

    /// Reaps up to `max` completions visible at `now`, earliest first
    /// (ties broken by cid).
    pub(crate) fn reap_ready(&mut self, now: Nanos, max: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        self.reap_ready_into(now, max, &mut out);
        out
    }

    /// As [`QueuePair::reap_ready`], appending into a caller-provided
    /// buffer (the batched-completion path's allocation-free variant);
    /// returns how many completions were appended.
    pub(crate) fn reap_ready_into(
        &mut self,
        now: Nanos,
        max: usize,
        out: &mut Vec<Completion>,
    ) -> usize {
        let mut added = 0;
        while added < max {
            let Some(&Reverse((t, cid))) = self.heap.peek() else {
                break;
            };
            if self.top_is_stale(t, cid) {
                self.heap.pop();
                self.stale = self.stale.saturating_sub(1);
                continue;
            }
            if t > now {
                break;
            }
            self.heap.pop();
            let c = self.pending.remove(&cid).expect("checked live above");
            self.inflight -= 1;
            out.push(c);
            added += 1;
        }
        added
    }

    /// Earliest pending completion time, if any. Takes `&mut self` to
    /// discard stale heap entries encountered at the top.
    pub(crate) fn next_ready_time(&mut self) -> Option<Nanos> {
        while let Some(&Reverse((t, cid))) = self.heap.peek() {
            if self.top_is_stale(t, cid) {
                self.heap.pop();
                self.stale = self.stale.saturating_sub(1);
                continue;
            }
            return Some(t);
        }
        None
    }

    /// Latest pending completion time, if any (used by flush; not on the
    /// per-I/O poll path, so a scan of the live map is fine).
    pub(crate) fn last_ready_time(&self) -> Option<Nanos> {
        self.pending.values().map(|c| c.ready_at).max()
    }

    /// Drops every pending completion (and the heap), returning how many
    /// were dropped. Used when resetting device timing between runs.
    pub(crate) fn drop_pending(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        self.heap.clear();
        self.stale = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(cid: u16, at: u64) -> Completion {
        Completion {
            cid,
            status: NvmeStatus::Success,
            ready_at: Nanos(at),
            pressure: false,
        }
    }

    #[test]
    fn claim_respects_depth() {
        let mut q = QueuePair::new(None, 2);
        assert!(q.claim().is_some());
        assert!(q.claim().is_some());
        assert!(
            q.claim().is_none(),
            "depth-2 queue accepted a third command"
        );
    }

    #[test]
    fn reap_only_when_ready() {
        let mut q = QueuePair::new(None, 4);
        let cid = q.claim().unwrap();
        q.post(ok(cid, 100));
        assert!(q.reap(cid, Nanos(50)).is_none());
        let c = q.reap(cid, Nanos(100)).unwrap();
        assert!(c.status.is_ok());
        assert_eq!(q.inflight, 0);
    }

    #[test]
    fn reap_frees_slot() {
        let mut q = QueuePair::new(None, 1);
        let cid = q.claim().unwrap();
        assert!(q.claim().is_none());
        q.post(ok(cid, 10));
        q.reap(cid, Nanos(10)).unwrap();
        assert!(q.claim().is_some());
    }

    #[test]
    fn reap_ready_orders_by_time() {
        let mut q = QueuePair::new(None, 8);
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        let c = q.claim().unwrap();
        q.post(ok(b, 5));
        q.post(ok(a, 20));
        q.post(ok(c, 10));
        let got = q.reap_ready(Nanos(15), 8);
        assert_eq!(got.iter().map(|x| x.cid).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(q.inflight, 1);
        assert_eq!(q.next_ready_time(), Some(Nanos(20)));
    }

    #[test]
    fn reap_ready_orders_out_of_order_submissions() {
        // Satellite regression: completions posted in arbitrary ready_at
        // order must reap strictly (ready_at, cid)-ordered, across
        // multiple partial polls, with equal-time ties broken by cid.
        let mut q = QueuePair::new(None, 16);
        let cids: Vec<u16> = (0..10).map(|_| q.claim().unwrap()).collect();
        let times = [70u64, 10, 40, 40, 90, 20, 40, 60, 30, 50];
        // Post in a scrambled order relative to both cid and time.
        for &i in &[4usize, 0, 7, 2, 9, 5, 1, 8, 3, 6] {
            q.post(ok(cids[i], times[i]));
        }
        let mut got = Vec::new();
        // Partial reaps with an advancing clock, 3 at a time.
        for now in [35u64, 55, 100] {
            got.extend(q.reap_ready(Nanos(now), 3));
        }
        got.extend(q.reap_ready(Nanos(100), 16));
        let keys: Vec<(u64, u16)> = got.iter().map(|c| (c.ready_at.as_nanos(), c.cid)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "reap order must be (ready_at, cid)");
        assert_eq!(got.len(), 10);
        // The three equal-time completions surface in cid order.
        let at40: Vec<u16> = got
            .iter()
            .filter(|c| c.ready_at == Nanos(40))
            .map(|c| c.cid)
            .collect();
        assert_eq!(at40, vec![cids[2], cids[3], cids[6]]);
        assert_eq!(q.inflight, 0);
    }

    #[test]
    fn targeted_reap_leaves_no_ghost_in_reap_ready() {
        // reap(cid) leaves a stale heap entry; it must not resurface.
        let mut q = QueuePair::new(None, 8);
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        q.post(ok(a, 10));
        q.post(ok(b, 20));
        assert!(q.reap(a, Nanos(10)).is_some());
        let got = q.reap_ready(Nanos(100), 8);
        assert_eq!(got.iter().map(|x| x.cid).collect::<Vec<_>>(), vec![b]);
        assert_eq!(q.next_ready_time(), None);
        assert_eq!(q.inflight, 0);
    }

    #[test]
    fn cid_reuse_after_wrap_does_not_confuse_heap() {
        let mut q = QueuePair::new(None, usize::MAX);
        q.next_cid = u16::MAX;
        let a = q.claim().unwrap(); // 65535
        let b = q.claim().unwrap(); // 0
        assert_eq!(a, u16::MAX);
        assert_eq!(b, 0);
        q.post(ok(a, 10));
        q.reap(a, Nanos(10)).unwrap();
        // Wrap all the way around so cid 65535 is claimed again.
        q.next_cid = u16::MAX;
        let a2 = q.claim().unwrap();
        assert_eq!(a2, a);
        q.post(ok(a2, 50));
        // The stale (10, 65535) heap entry must not surface the new
        // completion before its time.
        assert!(q.reap_ready(Nanos(30), 8).is_empty());
        assert_eq!(q.next_ready_time(), Some(Nanos(50)));
        let got = q.reap_ready(Nanos(50), 8);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ready_at, Nanos(50));
    }

    #[test]
    fn drop_pending_clears_everything() {
        let mut q = QueuePair::new(None, 8);
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        q.post(ok(a, 10));
        q.post(ok(b, 20));
        assert_eq!(q.drop_pending(), 2);
        assert_eq!(q.next_ready_time(), None);
        assert!(q.reap_ready(Nanos(100), 8).is_empty());
    }

    #[test]
    fn targeted_reap_hammering_keeps_heap_bounded() {
        // Satellite regression: a long-lived queue driven purely by
        // targeted reaps (submit → reap(cid), as the async write path
        // does) leaves one stale heap entry per op. Compaction must keep
        // retained garbage bounded instead of growing monotonically, and
        // the live completion must always survive the rebuild.
        let mut q = QueuePair::new(None, 64);
        for round in 0..10_000u64 {
            let cid = q.claim().unwrap();
            q.post(ok(cid, round + 1));
            assert_eq!(q.reap(cid, Nanos(round + 1)).unwrap().cid, cid);
            assert!(
                q.heap.len() <= 2 * COMPACT_MIN_HEAP,
                "heap grew to {} entries after {} targeted reaps",
                q.heap.len(),
                round + 1
            );
        }
        assert_eq!(q.inflight, 0);
        assert_eq!(q.next_ready_time(), None);
    }

    #[test]
    fn compaction_preserves_live_completions() {
        // Interleave targeted reaps (stale producers) with live
        // completions; compaction must never drop or reorder the live
        // ones.
        let mut q = QueuePair::new(None, usize::MAX);
        let live: Vec<u16> = (0..8u16)
            .map(|i| {
                let cid = q.claim().unwrap();
                q.post(ok(cid, 1_000_000 + u64::from(i)));
                cid
            })
            .collect();
        for round in 0..1_000u64 {
            let cid = q.claim().unwrap();
            q.post(ok(cid, round + 1));
            q.reap(cid, Nanos(round + 1)).unwrap();
        }
        let got = q.reap_ready(Nanos(2_000_000), 64);
        assert_eq!(got.iter().map(|c| c.cid).collect::<Vec<_>>(), live);
        assert_eq!(q.inflight, 0);
    }

    #[test]
    fn cid_wraps() {
        let mut q = QueuePair::new(None, usize::MAX);
        q.next_cid = u16::MAX;
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        assert_eq!(a, u16::MAX);
        assert_eq!(b, 0);
    }
}
