//! NVMe queue pairs: submission/completion bookkeeping.
//!
//! A queue pair is created through the driver and — the BypassD change —
//! bound to the owning process's PASID (§3.3), which the device attaches
//! to every ATS translation request issued for commands on that queue.
//! Kernel-owned queues have no PASID and may only carry LBA commands.

use bypassd_hw::iommu::TranslateError;
use bypassd_hw::types::Pasid;
use bypassd_sim::time::Nanos;

/// Identifies a queue pair on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub u32);

/// NVMe completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeStatus {
    /// Command completed successfully.
    Success,
    /// VBA translation failed — surfaced to UserLib, which re-`fmap()`s
    /// and falls back to the kernel interface (§3.6).
    TranslationFault(TranslateError),
    /// LBA range exceeds the namespace.
    LbaOutOfRange,
    /// Command malformed (e.g. VBA command on a kernel queue).
    InvalidField,
}

impl NvmeStatus {
    /// True on success.
    pub fn is_ok(self) -> bool {
        self == NvmeStatus::Success
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Command identifier this completes.
    pub cid: u16,
    /// Outcome.
    pub status: NvmeStatus,
    /// Virtual time at which the completion is visible to the host.
    pub ready_at: Nanos,
}

/// Device-side queue pair state.
#[derive(Debug)]
pub(crate) struct QueuePair {
    /// PASID bound at creation (None for kernel queues).
    pub pasid: Option<Pasid>,
    /// Maximum outstanding commands.
    pub depth: usize,
    /// Completions not yet reaped by the host.
    pub completions: Vec<Completion>,
    /// Commands submitted but not yet reaped.
    pub inflight: usize,
    next_cid: u16,
}

impl QueuePair {
    pub(crate) fn new(pasid: Option<Pasid>, depth: usize) -> Self {
        QueuePair {
            pasid,
            depth,
            completions: Vec::new(),
            inflight: 0,
            next_cid: 0,
        }
    }

    /// Claims a submission slot, returning the command id, or `None` when
    /// the queue is full.
    pub(crate) fn claim(&mut self) -> Option<u16> {
        if self.inflight >= self.depth {
            return None;
        }
        self.inflight += 1;
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        Some(cid)
    }

    /// Posts a completion.
    pub(crate) fn post(&mut self, completion: Completion) {
        self.completions.push(completion);
    }

    /// Ready time of command `cid`, if it has been posted.
    pub(crate) fn ready_time(&self, cid: u16) -> Option<Nanos> {
        self.completions
            .iter()
            .find(|c| c.cid == cid)
            .map(|c| c.ready_at)
    }

    /// Reaps the completion for `cid` if visible at `now`.
    pub(crate) fn reap(&mut self, cid: u16, now: Nanos) -> Option<Completion> {
        let idx = self
            .completions
            .iter()
            .position(|c| c.cid == cid && c.ready_at <= now)?;
        self.inflight -= 1;
        Some(self.completions.swap_remove(idx))
    }

    /// Reaps up to `max` completions visible at `now`, earliest first.
    pub(crate) fn reap_ready(&mut self, now: Nanos, max: usize) -> Vec<Completion> {
        let mut ready: Vec<Completion> = self
            .completions
            .iter()
            .copied()
            .filter(|c| c.ready_at <= now)
            .collect();
        ready.sort_by_key(|c| (c.ready_at, c.cid));
        ready.truncate(max);
        for c in &ready {
            let idx = self.completions.iter().position(|x| x.cid == c.cid).unwrap();
            self.completions.swap_remove(idx);
            self.inflight -= 1;
        }
        ready
    }

    /// Earliest pending completion time, if any.
    pub(crate) fn next_ready_time(&self) -> Option<Nanos> {
        self.completions.iter().map(|c| c.ready_at).min()
    }

    /// Latest pending completion time, if any (used by flush).
    pub(crate) fn last_ready_time(&self) -> Option<Nanos> {
        self.completions.iter().map(|c| c.ready_at).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_respects_depth() {
        let mut q = QueuePair::new(None, 2);
        assert!(q.claim().is_some());
        assert!(q.claim().is_some());
        assert!(q.claim().is_none(), "depth-2 queue accepted a third command");
    }

    #[test]
    fn reap_only_when_ready() {
        let mut q = QueuePair::new(None, 4);
        let cid = q.claim().unwrap();
        q.post(Completion {
            cid,
            status: NvmeStatus::Success,
            ready_at: Nanos(100),
        });
        assert!(q.reap(cid, Nanos(50)).is_none());
        let c = q.reap(cid, Nanos(100)).unwrap();
        assert!(c.status.is_ok());
        assert_eq!(q.inflight, 0);
    }

    #[test]
    fn reap_frees_slot() {
        let mut q = QueuePair::new(None, 1);
        let cid = q.claim().unwrap();
        assert!(q.claim().is_none());
        q.post(Completion {
            cid,
            status: NvmeStatus::Success,
            ready_at: Nanos(10),
        });
        q.reap(cid, Nanos(10)).unwrap();
        assert!(q.claim().is_some());
    }

    #[test]
    fn reap_ready_orders_by_time() {
        let mut q = QueuePair::new(None, 8);
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        let c = q.claim().unwrap();
        q.post(Completion { cid: b, status: NvmeStatus::Success, ready_at: Nanos(5) });
        q.post(Completion { cid: a, status: NvmeStatus::Success, ready_at: Nanos(20) });
        q.post(Completion { cid: c, status: NvmeStatus::Success, ready_at: Nanos(10) });
        let got = q.reap_ready(Nanos(15), 8);
        assert_eq!(got.iter().map(|x| x.cid).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(q.inflight, 1);
        assert_eq!(q.next_ready_time(), Some(Nanos(20)));
    }

    #[test]
    fn cid_wraps() {
        let mut q = QueuePair::new(None, usize::MAX);
        q.next_cid = u16::MAX;
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        assert_eq!(a, u16::MAX);
        assert_eq!(b, 0);
    }
}
