//! # bypassd-ssd
//!
//! An NVMe SSD simulator calibrated to the Intel Optane P5800X envelope
//! the paper evaluates on:
//!
//! * [`store`] — a sparse in-memory sector store (512 B sectors, data is
//!   really kept and returned byte-for-byte).
//! * [`dma`] — pinned DMA buffers in simulated physical memory.
//! * [`queue`] — submission/completion queue pairs with doorbells; queues
//!   are bound to a PASID at creation (§3.3) so the device can issue ATS
//!   translation requests on behalf of the owning process.
//! * [`timing`] — the media/contention model: per-channel occupancy plus a
//!   shared transfer bus, yielding ~4 µs 4 KB reads at QD1 and ~1.5 M IOPS
//!   / ~7 GB/s at saturation (Fig. 9's envelope).
//! * [`device`] — the device itself: LBA commands (kernel & SPDK paths)
//!   and VBA commands that are translated through the BypassD-enhanced
//!   IOMMU, with reads serialising translation before media access and
//!   writes overlapping it (§4.3).

pub mod atc;
pub mod device;
pub mod dma;
pub mod ports;
pub mod queue;
pub mod store;
pub mod timing;

pub use atc::{AtcStats, AtsCache};
pub use device::{BlockAddr, Command, NvmeDevice, Opcode};
pub use dma::DmaBuffer;
pub use queue::{Completion, NvmeStatus, QueueId};
pub use timing::MediaTiming;
