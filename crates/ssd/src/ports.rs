//! Cross-shard port annotations for the NVMe data path.
//!
//! In a sharded fleet run (`bypassd-fleet`) each simulated SSD lives in
//! its own event lane; the two data-path edges that cross lane
//! boundaries are the *doorbell* (a remote shard ringing a submission
//! queue on this device) and the *completion post* (this device's lane
//! posting a completion back to the submitter's shard). Both traverse
//! the PCIe link, so both inherit the modeled round trip as lookahead —
//! the same constant the IOMMU timing model uses
//! ([`bypassd_hw::ports::PCIE_RTT`]).
//!
//! [`COMPLETION_REACTION`] is the input→output bound a device lane may
//! declare for its completion edges: a completion for a remotely rung
//! doorbell can never be posted sooner than one PCIe round trip after
//! the doorbell arrived (command fetch + the shortest possible
//! device-side turnaround). Media service times are far larger
//! ([`MediaTiming::read_base`] is ~3.45 µs), but error completions can
//! return without touching media, so the conservative bound is the link
//! latency, not the media latency.

use bypassd_hw::ports::PCIE_RTT;
use bypassd_sim::{Nanos, Port};

#[allow(unused_imports)] // doc link
use crate::timing::MediaTiming;

/// Remote shard rings a submission-queue doorbell on this device.
pub const DOORBELL: Port = Port::new("nvme.doorbell", PCIE_RTT);

/// Device lane posts a completion back to the submitting shard.
pub const COMPLETION: Port = Port::new("nvme.completion", PCIE_RTT);

/// Lower bound from a doorbell arriving to its completion being sent.
pub const COMPLETION_REACTION: Nanos = PCIE_RTT;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_reaction_is_below_any_media_service() {
        // The reaction bound must be conservative against every path a
        // completion can take, including ones that never touch media.
        let t = MediaTiming::default();
        assert!(COMPLETION_REACTION <= t.read_base);
        assert!(COMPLETION_REACTION <= t.write_base);
        assert!(COMPLETION_REACTION.0 >= 1);
    }

    #[test]
    fn data_path_ports_share_the_link_lookahead() {
        assert_eq!(DOORBELL.lookahead, PCIE_RTT);
        assert_eq!(COMPLETION.lookahead, PCIE_RTT);
    }
}
