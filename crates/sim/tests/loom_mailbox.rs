//! Loom model tests for the cross-lane [`Mailbox`].
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (run via `cargo xtask
//! loom`); without the cfg this file is empty. In a fleet run the
//! mailbox sits on the only mutable boundary between worker threads:
//! source lanes `post` envelopes while the owning lane `drain`s below
//! its conservative horizon, and the executor `seal`s every inbox at
//! quiesce. The properties that must survive any interleaving:
//!
//! * conservation — every accepted envelope is either drained or still
//!   queued; nothing is lost or duplicated,
//! * seal is a barrier — once a poster has observed `sealed`, no later
//!   post is accepted, so a quiesced lane can never grow new input,
//! * merge order — drains come out in `(at, channel, seq)` order and
//!   `drain_next_below` never releases an envelope at/after the
//!   horizon, no matter how posts race the drain.

#![cfg(loom)]

use bypassd_sim::{Envelope, Mailbox, Nanos};
use loom::sync::Arc;

fn env(at: u64, channel: u32, seq: u64) -> Envelope<u64> {
    Envelope {
        at: Nanos(at),
        channel,
        seq,
        msg: at * 1_000 + seq,
    }
}

/// Two posting lanes race the owning lane's drain loop. Whatever the
/// schedule, counts conserve and the drained prefix is sorted.
#[test]
fn posts_race_drain_conserving_envelopes() {
    loom::model(|| {
        let mbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new());
        let posters: Vec<_> = (0..2u32)
            .map(|ch| {
                let mbox = Arc::clone(&mbox);
                loom::thread::spawn(move || {
                    let mut accepted = 0u64;
                    for seq in 0..4u64 {
                        // Interleaved virtual times so the two channels
                        // genuinely contend for merge position.
                        if mbox.post(env(10 + seq * 7 + u64::from(ch), ch, seq)) {
                            accepted += 1;
                        }
                        loom::thread::yield_now();
                    }
                    accepted
                })
            })
            .collect();
        let drainer = {
            let mbox = Arc::clone(&mbox);
            loom::thread::spawn(move || {
                let mut drained = Vec::new();
                for _ in 0..12 {
                    if let Some(e) = mbox.drain_next_below(Nanos(1_000)) {
                        assert!(e.at < Nanos(1_000), "drained past the horizon");
                        drained.push(e.key());
                    }
                    loom::thread::yield_now();
                }
                drained
            })
        };
        let posted: u64 = posters.into_iter().map(|p| p.join().unwrap()).sum();
        let drained = drainer.join().unwrap();
        assert_eq!(posted, 8, "unsealed mailbox must accept every post");
        // Mid-race, a late post can slot under an already-drained key —
        // the *executor's* horizon promises forbid that in real runs,
        // not the mailbox. What the mailbox itself owes us: no envelope
        // is duplicated, and each channel's envelopes (posted in key
        // order) come out in key order.
        for ch in 0..2u32 {
            let per: Vec<_> = drained.iter().filter(|k| k.1 == ch).collect();
            assert!(
                per.windows(2).all(|w| w[0] < w[1]),
                "channel {ch} reordered"
            );
        }
        let mut uniq = drained.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), drained.len(), "duplicated envelope");
        // Conservation: accepted == drained + still queued.
        let (accepted, drained_count) = mbox.counts();
        assert_eq!(accepted, 8);
        assert_eq!(drained_count, drained.len() as u64);
        assert_eq!(mbox.len() as u64, accepted - drained_count);
    });
}

/// A poster races the lane-quiesce seal. Every post the poster saw
/// accepted must still be accounted for after the seal, and any post
/// attempted after the seal returns `false` — the executor's
/// done-check relies on a sealed inbox never growing.
#[test]
fn seal_race_never_loses_accepted_posts() {
    loom::model(|| {
        let mbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new());
        let poster = {
            let mbox = Arc::clone(&mbox);
            loom::thread::spawn(move || {
                let mut accepted = 0u64;
                let mut rejected_at = None;
                for seq in 0..6u64 {
                    if mbox.post(env(100 + seq, 0, seq)) {
                        // Once a post bounces off the seal, no later
                        // post may sneak back in.
                        assert!(
                            rejected_at.is_none(),
                            "post accepted after an observed seal rejection"
                        );
                        accepted += 1;
                    } else {
                        rejected_at.get_or_insert(seq);
                    }
                    loom::thread::yield_now();
                }
                accepted
            })
        };
        let sealer = {
            let mbox = Arc::clone(&mbox);
            loom::thread::spawn(move || {
                loom::thread::yield_now();
                let at_seal = mbox.seal();
                // Idempotent: a second seal reports the same count.
                assert_eq!(mbox.seal(), at_seal);
                at_seal
            })
        };
        let accepted = poster.join().unwrap();
        let at_seal = sealer.join().unwrap();
        assert!(mbox.is_sealed());
        assert!(at_seal <= accepted, "seal saw more than was ever accepted");
        let (total, drained) = mbox.counts();
        assert_eq!(total, accepted, "accepted envelopes leaked at the seal");
        assert_eq!(drained, 0);
        assert_eq!(mbox.len() as u64, accepted);
        // Post-seal drain still empties the accepted backlog in order.
        let mut last = None;
        while let Some(e) = mbox.drain_next_below(Nanos::MAX) {
            assert!(last.map_or(true, |k| k < e.key()), "unsorted drain");
            last = Some(e.key());
        }
        assert_eq!(mbox.counts().1, accepted);
    });
}
