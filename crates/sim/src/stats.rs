//! Throughput accounting for measurement intervals.
//!
//! The log-bucketed latency `Histogram` that used to live here moved to
//! `bypassd-trace` (`bypassd_trace::Histogram`), the workspace's single
//! observability crate; only the allocation-free [`Throughput`]
//! counters remain in the simulator core.

use crate::time::Nanos;

/// Throughput/volume counters for a measurement interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Throughput {
    /// Operations completed.
    pub ops: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl Throughput {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation of `bytes` bytes.
    pub fn record(&mut self, bytes: u64) {
        self.ops += 1;
        self.bytes += bytes;
    }

    /// Operations per second over `elapsed`.
    pub fn ops_per_sec(&self, elapsed: Nanos) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / elapsed.as_secs_f64()
        }
    }

    /// Thousands of operations per second over `elapsed`.
    pub fn kops_per_sec(&self, elapsed: Nanos) -> f64 {
        self.ops_per_sec(elapsed) / 1e3
    }

    /// Gigabytes per second over `elapsed`.
    pub fn gb_per_sec(&self, elapsed: Nanos) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / 1e9 / elapsed.as_secs_f64()
        }
    }

    /// Megabytes per second over `elapsed`.
    pub fn mb_per_sec(&self, elapsed: Nanos) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / 1e6 / elapsed.as_secs_f64()
        }
    }

    /// Adds another counter's totals into this one.
    pub fn merge(&mut self, other: &Throughput) {
        self.ops += other.ops;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rates() {
        let mut t = Throughput::new();
        for _ in 0..1000 {
            t.record(4096);
        }
        let dt = Nanos::from_millis(10);
        assert!((t.ops_per_sec(dt) - 100_000.0).abs() < 1.0);
        let gbps = t.gb_per_sec(dt);
        assert!((gbps - 0.4096).abs() < 1e-6, "gbps = {gbps}");
    }

    #[test]
    fn throughput_zero_elapsed_is_zero_rate() {
        let mut t = Throughput::new();
        t.record(1);
        assert_eq!(t.ops_per_sec(Nanos::ZERO), 0.0);
        assert_eq!(t.gb_per_sec(Nanos::ZERO), 0.0);
    }
}
