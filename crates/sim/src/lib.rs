//! # bypassd-sim
//!
//! Deterministic discrete-event simulation (DES) kernel used by the BypassD
//! reproduction. It provides:
//!
//! * [`time::Nanos`] — the virtual time unit (nanoseconds).
//! * [`engine::Simulation`] — a conductor that runs *real OS threads* as
//!   simulated actors, exactly one at a time, always the one with the
//!   earliest virtual timestamp. Workload code stays straight-line
//!   imperative while runs remain bit-for-bit reproducible.
//! * [`rng`] — seedable PRNG plus the YCSB zipfian/latest distributions.
//! * [`stats`] — log-bucketed latency histograms and throughput counters.
//! * [`report`] — plain-text table formatting for the benchmark harnesses.
//! * [`mailbox`] / [`port`] — the cross-lane primitives for the sharded
//!   parallel executor (`bypassd-fleet`): deterministically merged
//!   mailboxes and lookahead-annotated cross-shard ports.
//!
//! ## Example
//!
//! ```rust
//! use bypassd_sim::engine::Simulation;
//! use bypassd_sim::time::Nanos;
//!
//! let sim = Simulation::new();
//! sim.spawn("worker", |ctx| {
//!     ctx.delay(Nanos::from_micros(5));
//!     assert_eq!(ctx.now(), Nanos::from_micros(5));
//! });
//! sim.run();
//! assert_eq!(sim.now(), Nanos::from_micros(5));
//! ```

pub mod engine;
pub mod mailbox;
pub mod port;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{ActorCtx, RunStatus, Simulation};
pub use mailbox::{Envelope, Mailbox};
pub use port::Port;
pub use time::Nanos;
