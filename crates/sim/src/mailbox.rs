//! Cross-lane mailbox with deterministic merge order.
//!
//! A [`Mailbox`] is the only way events cross between lanes in the
//! sharded executor (`bypassd-fleet`). Senders [`Mailbox::post`]
//! time-stamped envelopes from any thread; the owning lane drains them
//! strictly below its synchronization horizon with
//! [`Mailbox::drain_next_below`]. Envelopes are totally ordered by
//! `(deliver_at, channel, seq)` — per-channel sequence numbers are
//! assigned in virtual-time order by the executor — so the merge order
//! (and therefore every downstream virtual-time result) is independent
//! of which worker thread posted first in wall-clock time.
//!
//! Once a lane quiesces its mailbox is [`Mailbox::seal`]ed; a post that
//! loses that race is rejected (returns `false`) instead of vanishing
//! into a box nobody will drain, which would silently drop a message
//! and break the conservative-synchronization accounting.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use parking_lot::Mutex;

use crate::time::Nanos;

/// One cross-lane message: payload plus its deterministic merge key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Virtual time at which the receiving lane observes the message.
    pub at: Nanos,
    /// Channel the message travelled on (merge-key component; the
    /// executor assigns each cross-lane edge a unique id).
    pub channel: u32,
    /// Per-channel monotone sequence number, assigned in virtual-time
    /// send order.
    pub seq: u64,
    /// Payload.
    pub msg: T,
}

impl<T> Envelope<T> {
    /// The total-order merge key.
    pub fn key(&self) -> (Nanos, u32, u64) {
        (self.at, self.channel, self.seq)
    }
}

/// Min-heap adapter: order envelopes by `(at, channel, seq)` ascending.
struct Entry<T>(Envelope<T>);

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest key.
        other.0.key().cmp(&self.0.key())
    }
}

struct Box_<T> {
    heap: BinaryHeap<Entry<T>>,
    sealed: bool,
    accepted: u64,
    drained: u64,
}

/// A sealed-capable, deterministically ordered inbound message queue.
///
/// Thread-safe: any thread may post; draining is normally done by the
/// lane that owns the mailbox. See the module docs for ordering.
pub struct Mailbox<T> {
    inner: Mutex<Box_<T>>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// Creates an empty, unsealed mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Box_ {
                heap: BinaryHeap::new(),
                sealed: false,
                accepted: 0,
                drained: 0,
            }),
        }
    }

    /// Posts an envelope. Returns `false` (payload dropped, nothing
    /// recorded) if the mailbox has been sealed.
    pub fn post(&self, env: Envelope<T>) -> bool {
        let mut b = self.inner.lock();
        if b.sealed {
            return false;
        }
        b.accepted += 1;
        b.heap.push(Entry(env));
        true
    }

    /// Removes and returns the earliest envelope with `at < horizon`, in
    /// `(at, channel, seq)` order. Returns `None` when nothing is due.
    pub fn drain_next_below(&self, horizon: Nanos) -> Option<Envelope<T>> {
        let mut b = self.inner.lock();
        match b.heap.peek() {
            Some(e) if e.0.at < horizon => {
                b.drained += 1;
                Some(b.heap.pop().expect("peeked entry vanished").0)
            }
            _ => None,
        }
    }

    /// Merge key of the earliest pending envelope, if any.
    pub fn peek_key(&self) -> Option<(Nanos, u32, u64)> {
        self.inner.lock().heap.peek().map(|e| e.0.key())
    }

    /// Deliver time of the earliest pending envelope, if any.
    pub fn next_at(&self) -> Option<Nanos> {
        self.peek_key().map(|(at, _, _)| at)
    }

    /// Seals the mailbox: every subsequent [`Mailbox::post`] is rejected.
    /// Returns the number of envelopes accepted over the mailbox's life.
    /// Sealing is idempotent.
    pub fn seal(&self) -> u64 {
        let mut b = self.inner.lock();
        b.sealed = true;
        b.accepted
    }

    /// Whether the mailbox has been sealed.
    pub fn is_sealed(&self) -> bool {
        self.inner.lock().sealed
    }

    /// Pending (undrained) envelopes.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// True when no envelopes are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(accepted, drained)` lifetime counters; `accepted - drained`
    /// equals [`Mailbox::len`].
    pub fn counts(&self) -> (u64, u64) {
        let b = self.inner.lock();
        (b.accepted, b.drained)
    }
}

impl<T> std::fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.inner.lock();
        f.debug_struct("Mailbox")
            .field("pending", &b.heap.len())
            .field("sealed", &b.sealed)
            .field("accepted", &b.accepted)
            .field("drained", &b.drained)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(at: u64, channel: u32, seq: u64) -> Envelope<&'static str> {
        Envelope {
            at: Nanos(at),
            channel,
            seq,
            msg: "m",
        }
    }

    #[test]
    fn drains_in_merge_order_regardless_of_post_order() {
        let mb = Mailbox::new();
        // Posted deliberately out of order.
        assert!(mb.post(env(30, 0, 1)));
        assert!(mb.post(env(10, 2, 0)));
        assert!(mb.post(env(10, 1, 5)));
        assert!(mb.post(env(10, 1, 2)));
        assert!(mb.post(env(20, 0, 0)));
        let mut keys = Vec::new();
        while let Some(e) = mb.drain_next_below(Nanos::MAX) {
            keys.push((e.at.0, e.channel, e.seq));
        }
        assert_eq!(
            keys,
            vec![(10, 1, 2), (10, 1, 5), (10, 2, 0), (20, 0, 0), (30, 0, 1)]
        );
        assert_eq!(mb.counts(), (5, 5));
    }

    #[test]
    fn drain_is_strictly_below_horizon() {
        let mb = Mailbox::new();
        mb.post(env(10, 0, 0));
        mb.post(env(20, 0, 1));
        assert_eq!(mb.drain_next_below(Nanos(10)), None);
        let e = mb.drain_next_below(Nanos(11)).unwrap();
        assert_eq!(e.at, Nanos(10));
        assert_eq!(mb.drain_next_below(Nanos(20)), None);
        assert_eq!(mb.next_at(), Some(Nanos(20)));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn sealed_mailbox_rejects_posts() {
        let mb = Mailbox::new();
        assert!(mb.post(env(1, 0, 0)));
        assert_eq!(mb.seal(), 1);
        assert!(mb.is_sealed());
        assert!(!mb.post(env(2, 0, 1)));
        assert_eq!(mb.seal(), 1, "seal is idempotent");
        // The pre-seal envelope is still drainable.
        assert!(mb.drain_next_below(Nanos::MAX).is_some());
        assert_eq!(mb.counts(), (1, 1));
    }
}
