//! The discrete-event conductor.
//!
//! Simulated actors are real OS threads, but the conductor admits exactly
//! one at a time: whenever an actor blocks (via [`ActorCtx::delay`] or
//! [`ActorCtx::wait_until`]) or finishes, the conductor advances virtual
//! time to the earliest pending wakeup and hands the run token to that
//! actor. Ties are broken FIFO by a global sequence number, so a run is
//! fully deterministic for a fixed set of actors and seeds.
//!
//! Handoffs are targeted: each actor parks on its own condvar and the
//! conductor wakes exactly the next runnable actor, so the cost of a
//! handoff is independent of how many actors exist. (The earlier
//! broadcast design woke every parked actor per event, which made large
//! fleets quadratic in wakeups.)
//!
//! Shared simulation state (the SSD model, the kernel, …) can be protected
//! by ordinary mutexes — they are never contended because only one actor
//! executes at any moment.
//!
//! ## Lane mode
//!
//! A `Simulation` can also be driven incrementally with
//! [`Simulation::run_until`], which executes events up to an inclusive
//! horizon and then pauses. `bypassd-fleet` uses this to run many small
//! simulations ("lanes") side by side, each advancing its own timeline
//! between conservative synchronization points.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::time::Nanos;

/// Identifies an actor within one [`Simulation`].
pub type ActorId = u64;

#[derive(Debug)]
struct SimState {
    /// Current virtual time.
    now: Nanos,
    /// Min-heap of (wake time, sequence, actor) — the actor run queue.
    waiting: BinaryHeap<Reverse<(Nanos, u64, ActorId)>>,
    /// The actor currently holding the run token, if any.
    current: Option<ActorId>,
    /// Number of spawned actors that have not finished.
    live: usize,
    /// Monotone tie-breaker for FIFO ordering of equal wake times.
    next_seq: u64,
    /// Next actor id to hand out.
    next_id: ActorId,
    /// Whether the simulation has started executing actors.
    started: bool,
    /// Name of an actor that panicked, if any.
    panicked: Option<String>,
    /// Inclusive dispatch bound: actors with wake times beyond this are
    /// not dispatched. `Nanos::MAX` (run-to-completion) except while a
    /// lane executor drives the simulation via [`Simulation::run_until`].
    horizon: Nanos,
    /// Per-actor parking condvars, indexed by `ActorId`. Each handoff
    /// wakes exactly one of these.
    parkers: Vec<Arc<Condvar>>,
}

struct Inner {
    state: Mutex<SimState>,
    /// Control condvar: signalled when the dispatcher pauses (horizon
    /// reached) or the simulation quiesces, waking `run`/`run_until`.
    cond: Condvar,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    /// Pop the earliest waiting actor (within the horizon), advance time,
    /// and wake exactly that actor. Must be called with the state lock
    /// held and `current == None`. If the earliest wakeup lies beyond the
    /// horizon, or there is nothing left to run, wakes the conductor's
    /// control condvar instead.
    fn dispatch_next(&self, state: &mut SimState) {
        debug_assert!(state.current.is_none());
        let runnable = match state.waiting.peek() {
            Some(&Reverse((t, _, _))) => t <= state.horizon,
            None => false,
        };
        if runnable {
            let Reverse((t, _seq, id)) = state.waiting.pop().expect("peeked entry vanished");
            state.now = state.now.max(t);
            state.current = Some(id);
            state.parkers[id as usize].notify_one();
        } else if state.waiting.is_empty() && state.live > 0 && state.started {
            panic!(
                "simulation deadlock: {} live actor(s) but none runnable \
                 (an actor blocked outside the simulation primitives?)",
                state.live
            );
        } else {
            // Paused at the horizon, or all done; wake `run`/`run_until`.
            self.cond.notify_all();
        }
    }

    /// Enqueue `id` to wake at `t` (which must be >= now for determinism).
    fn enqueue(&self, state: &mut SimState, t: Nanos, id: ActorId) {
        let seq = state.next_seq;
        state.next_seq += 1;
        state.waiting.push(Reverse((t.max(state.now), seq, id)));
    }

    /// Block the calling actor until it holds the run token; returns the
    /// virtual time at which it resumes (so the actor can cache it).
    fn wait_for_token(&self, id: ActorId) -> Nanos {
        let mut state = self.state.lock();
        let parker = Arc::clone(&state.parkers[id as usize]);
        while state.current != Some(id) {
            parker.wait(&mut state);
        }
        state.now
    }
}

/// Ensures the run token is passed on even if the actor panics.
struct FinishGuard {
    inner: Arc<Inner>,
    id: ActorId,
    name: String,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        debug_assert_eq!(state.current, Some(self.id));
        state.current = None;
        state.live -= 1;
        if std::thread::panicking() {
            state.panicked = Some(self.name.clone());
        }
        self.inner.dispatch_next(&mut state);
    }
}

/// Progress snapshot returned by [`Simulation::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStatus {
    /// Earliest pending wakeup beyond the horizon, if any.
    pub next_wake: Option<Nanos>,
    /// Actors that have not yet finished.
    pub live: usize,
}

impl RunStatus {
    /// True when every actor has finished and no wakeups remain.
    pub fn quiesced(&self) -> bool {
        self.live == 0 && self.next_wake.is_none()
    }
}

/// A deterministic discrete-event simulation.
///
/// Spawn actors with [`Simulation::spawn`] / [`Simulation::spawn_at`], then
/// call [`Simulation::run`] to execute them to completion. After `run`
/// returns, [`Simulation::now`] reports the final virtual time.
///
/// ```rust
/// use bypassd_sim::{Simulation, Nanos};
/// let sim = Simulation::new();
/// sim.spawn("a", |ctx| ctx.delay(Nanos(10)));
/// sim.spawn("b", |ctx| ctx.delay(Nanos(5)));
/// sim.run();
/// assert_eq!(sim.now(), Nanos(10));
/// ```
pub struct Simulation {
    inner: Arc<Inner>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Simulation {
    /// Clones the *handle*: both values drive the same simulation.
    /// Lets long-lived helpers (e.g. a router that spawns actors
    /// mid-run) hold the engine without threading `&Simulation` through
    /// every call site.
    fn clone(&self) -> Self {
        Simulation {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Simulation {
    /// Creates an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Simulation {
            inner: Arc::new(Inner {
                state: Mutex::new(SimState {
                    now: Nanos::ZERO,
                    waiting: BinaryHeap::new(),
                    current: None,
                    live: 0,
                    next_seq: 0,
                    next_id: 0,
                    started: false,
                    panicked: None,
                    horizon: Nanos::MAX,
                    parkers: Vec::new(),
                }),
                cond: Condvar::new(),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Spawns an actor that becomes runnable at virtual time zero.
    ///
    /// # Panics
    /// Panics if the simulation clock has already advanced past zero; see
    /// [`Simulation::spawn_at`].
    pub fn spawn<F>(&self, name: &str, f: F) -> ActorId
    where
        F: FnOnce(&mut ActorCtx) + Send + 'static,
    {
        self.spawn_at(Nanos::ZERO, name, f)
    }

    /// Spawns an actor that becomes runnable at virtual time `start`.
    ///
    /// May be called before [`Simulation::run`] or from inside another
    /// actor (see [`ActorCtx::spawn_at`]).
    ///
    /// # Panics
    /// Panics if `start` is earlier than the current virtual time:
    /// admitting an actor into the past would silently reorder events
    /// that have already been dispatched, so it traps instead.
    pub fn spawn_at<F>(&self, start: Nanos, name: &str, f: F) -> ActorId
    where
        F: FnOnce(&mut ActorCtx) + Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        let id;
        {
            let mut state = inner.state.lock();
            if start < state.now {
                panic!(
                    "spawn_at schedules actor '{name}' in the past: start {start} < now {} \
                     (events at {start} have already been dispatched; spawning behind the \
                     clock would reorder the run queue)",
                    state.now
                );
            }
            id = state.next_id;
            state.next_id += 1;
            state.live += 1;
            state.parkers.push(Arc::new(Condvar::new()));
            debug_assert_eq!(state.parkers.len() as u64, state.next_id);
            self.inner.enqueue(&mut state, start, id);
        }
        let name = name.to_string();
        let thread_inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                let now = thread_inner.wait_for_token(id);
                let mut ctx = ActorCtx {
                    inner: Arc::clone(&thread_inner),
                    id,
                    name: name.clone(),
                    now,
                };
                let _guard = FinishGuard {
                    inner: thread_inner,
                    id,
                    name,
                };
                f(&mut ctx);
            })
            .expect("failed to spawn simulation actor thread");
        self.inner.threads.lock().push(handle);
        id
    }

    /// Runs the simulation until every actor has finished.
    ///
    /// # Panics
    /// Panics if any actor panicked, or on deadlock (an actor blocked
    /// outside the simulation primitives).
    pub fn run(&self) {
        {
            let mut state = self.inner.state.lock();
            state.started = true;
            state.horizon = Nanos::MAX;
            if state.current.is_none() {
                self.inner.dispatch_next(&mut state);
            }
            while state.live > 0 {
                self.inner.cond.wait(&mut state);
            }
        }
        // Join threads so panics/resources are fully settled.
        let handles: Vec<_> = std::mem::take(&mut *self.inner.threads.lock());
        for h in handles {
            let _ = h.join();
        }
        let state = self.inner.state.lock();
        if let Some(name) = &state.panicked {
            panic!("simulation actor '{name}' panicked");
        }
    }

    /// Runs the simulation up to and including virtual time `horizon`,
    /// then pauses.
    ///
    /// Dispatches every pending wakeup with time `<= horizon` (in the
    /// same deterministic order [`Simulation::run`] would use) and
    /// returns once no runnable actor remains at or below the horizon.
    /// Actors whose next wakeup lies beyond the horizon stay parked;
    /// a later `run_until` with a larger horizon (or [`Simulation::run`])
    /// resumes them. Calling with a horizon at or before a previous one
    /// is a no-op that just reports status.
    ///
    /// # Panics
    /// Panics if an actor panicked during this slice, or on deadlock.
    pub fn run_until(&self, horizon: Nanos) -> RunStatus {
        let mut state = self.inner.state.lock();
        state.started = true;
        state.horizon = horizon;
        loop {
            if state.current.is_none() {
                let runnable = match state.waiting.peek() {
                    Some(&Reverse((t, _, _))) => t <= horizon,
                    None => false,
                };
                if runnable {
                    self.inner.dispatch_next(&mut state);
                } else {
                    break;
                }
            } else {
                self.inner.cond.wait(&mut state);
            }
        }
        let status = RunStatus {
            next_wake: state.waiting.peek().map(|&Reverse((t, _, _))| t),
            live: state.live,
        };
        let panicked = state.panicked.clone();
        drop(state);
        if let Some(name) = panicked {
            panic!("simulation actor '{name}' panicked");
        }
        status
    }

    /// Joins all actor threads. Callable only once every actor has
    /// finished (e.g. after [`Simulation::run_until`] reported
    /// `live == 0`); [`Simulation::run`] already joins internally.
    ///
    /// # Panics
    /// Panics if actors are still live (joining would block forever on a
    /// parked actor), or if any actor panicked.
    pub fn join_finished(&self) {
        let live = self.inner.state.lock().live;
        assert_eq!(
            live, 0,
            "join_finished with {live} live actor(s): drive the simulation \
             to quiescence (run / run_until) before joining"
        );
        let handles: Vec<_> = std::mem::take(&mut *self.inner.threads.lock());
        for h in handles {
            let _ = h.join();
        }
        let state = self.inner.state.lock();
        if let Some(name) = &state.panicked {
            panic!("simulation actor '{name}' panicked");
        }
    }

    /// The current virtual time (final time, once [`Simulation::run`] has
    /// returned).
    pub fn now(&self) -> Nanos {
        self.inner.state.lock().now
    }

    /// Earliest pending wakeup, if any. Stable only while the simulation
    /// is paused (before `run`, or between `run_until` slices).
    pub fn next_wake(&self) -> Option<Nanos> {
        self.inner
            .state
            .lock()
            .waiting
            .peek()
            .map(|&Reverse((t, _, _))| t)
    }

    /// Number of actors that have not finished.
    pub fn live(&self) -> usize {
        self.inner.state.lock().live
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Simulation")
            .field("now", &state.now)
            .field("live", &state.live)
            .finish()
    }
}

/// Handle through which an actor interacts with virtual time.
///
/// An `ActorCtx` is passed to each actor closure; it must not be sent to
/// other actors.
pub struct ActorCtx {
    inner: Arc<Inner>,
    id: ActorId,
    name: String,
    /// Cache of the conductor's clock. Valid whenever this actor holds the
    /// run token: virtual time only advances in `dispatch_next` (while no
    /// actor runs) or in this actor's own `wait_until` fast path, so no
    /// other thread can move the clock while we execute.
    now: Nanos,
}

impl ActorCtx {
    /// The current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// This actor's identifier.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// This actor's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Advances this actor's virtual time by `d`, yielding to any actor
    /// scheduled earlier.
    pub fn delay(&mut self, d: Nanos) {
        let t = self.now() + d;
        self.wait_until(t);
    }

    /// Blocks this actor until virtual time `t` (no-op if `t` has passed,
    /// but still yields to equal-time actors queued earlier).
    pub fn wait_until(&mut self, t: Nanos) {
        {
            let mut state = self.inner.state.lock();
            debug_assert_eq!(state.current, Some(self.id));
            // Fast path: if no other actor is scheduled at or before our
            // effective wake time, the conductor would hand the token
            // straight back to us, so advance the clock in place and keep
            // running. The comparison must be inclusive: an actor already
            // waiting at exactly that time has an earlier FIFO sequence
            // number and must run first. The fast path must also respect
            // the dispatch horizon — a lane executor relies on every
            // actor parking before the clock crosses it.
            let eff = t.max(state.now);
            let handoff = match state.waiting.peek() {
                Some(&Reverse((wake, _, _))) => wake <= eff,
                None => false,
            };
            if !handoff && eff <= state.horizon {
                state.now = eff;
                self.now = eff;
                return;
            }
            state.current = None;
            self.inner.enqueue(&mut state, t, self.id);
            self.inner.dispatch_next(&mut state);
        }
        self.now = self.inner.wait_for_token(self.id);
    }

    /// Yields to any other actor scheduled at the current time.
    pub fn yield_now(&mut self) {
        let now = self.now();
        self.wait_until(now);
    }

    /// Spawns a new actor runnable at time `start`.
    ///
    /// # Panics
    /// Panics if `start` is earlier than the current virtual time (see
    /// [`Simulation::spawn_at`]).
    pub fn spawn_at<F>(&self, start: Nanos, name: &str, f: F) -> ActorId
    where
        F: FnOnce(&mut ActorCtx) + Send + 'static,
    {
        let sim = Simulation {
            inner: Arc::clone(&self.inner),
        };
        sim.spawn_at(start, name, f)
    }
}

impl std::fmt::Debug for ActorCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorCtx")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_actor_advances_time() {
        let sim = Simulation::new();
        sim.spawn("a", |ctx| {
            assert_eq!(ctx.now(), Nanos::ZERO);
            ctx.delay(Nanos(100));
            assert_eq!(ctx.now(), Nanos(100));
            ctx.delay(Nanos(50));
            assert_eq!(ctx.now(), Nanos(150));
        });
        sim.run();
        assert_eq!(sim.now(), Nanos(150));
    }

    #[test]
    fn actors_interleave_in_time_order() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        sim.spawn("fast", move |ctx| {
            for i in 0..3 {
                ctx.delay(Nanos(10));
                l1.lock().push(("fast", i, ctx.now()));
            }
        });
        let l2 = Arc::clone(&log);
        sim.spawn("slow", move |ctx| {
            for i in 0..2 {
                ctx.delay(Nanos(15));
                l2.lock().push(("slow", i, ctx.now()));
            }
        });
        sim.run();
        let log = log.lock();
        let order: Vec<_> = log.iter().map(|(n, i, t)| (*n, *i, t.0)).collect();
        assert_eq!(
            order,
            vec![
                ("fast", 0, 10),
                ("slow", 0, 15),
                ("fast", 1, 20),
                // Both wake at 30; "slow" enqueued its wait earlier (at
                // t=15 vs t=20), so FIFO ordering runs it first.
                ("slow", 1, 30),
                ("fast", 2, 30),
            ]
        );
    }

    #[test]
    fn equal_times_run_fifo() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for name in ["a", "b", "c"] {
            let l = Arc::clone(&log);
            sim.spawn(name, move |ctx| {
                ctx.delay(Nanos(5));
                l.lock().push(name);
            });
        }
        sim.run();
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn spawn_at_delays_start() {
        let sim = Simulation::new();
        let started_at = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&started_at);
        sim.spawn_at(Nanos(500), "late", move |ctx| {
            s.store(ctx.now().0, Ordering::SeqCst);
        });
        sim.run();
        assert_eq!(started_at.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn actor_can_spawn_actor() {
        let sim = Simulation::new();
        let result = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&result);
        sim.spawn("parent", move |ctx| {
            ctx.delay(Nanos(10));
            let r2 = Arc::clone(&r);
            ctx.spawn_at(Nanos(25), "child", move |cctx| {
                r2.store(cctx.now().0, Ordering::SeqCst);
            });
            ctx.delay(Nanos(100));
        });
        sim.run();
        assert_eq!(result.load(Ordering::SeqCst), 25);
        assert_eq!(sim.now(), Nanos(110));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn spawn_into_the_past_traps() {
        let sim = Simulation::new();
        sim.spawn("clock-mover", |ctx| ctx.delay(Nanos(100)));
        assert!(sim.run_until(Nanos(100)).quiesced());
        // The clock is at 100; scheduling an actor at 50 must trap
        // rather than silently reorder already-dispatched events.
        sim.spawn_at(Nanos(50), "ghost", |_ctx| {});
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn actor_spawning_into_the_past_traps_and_propagates() {
        let sim = Simulation::new();
        sim.spawn("late-spawner", move |ctx| {
            ctx.delay(Nanos(100));
            ctx.spawn_at(Nanos(50), "ghost", |_ctx| {});
        });
        sim.run();
    }

    #[test]
    fn wait_until_past_time_does_not_go_backwards() {
        let sim = Simulation::new();
        sim.spawn("a", |ctx| {
            ctx.delay(Nanos(100));
            ctx.wait_until(Nanos(10));
            assert_eq!(ctx.now(), Nanos(100));
        });
        sim.run();
    }

    #[test]
    fn deterministic_across_runs() {
        fn run_once() -> Vec<(u64, u64)> {
            let sim = Simulation::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..4u64 {
                let l = Arc::clone(&log);
                sim.spawn(&format!("w{id}"), move |ctx| {
                    let mut step = 7 + id * 3;
                    for _ in 0..5 {
                        ctx.delay(Nanos(step));
                        l.lock().push((id, ctx.now().0));
                        step = step * 31 % 97 + 1;
                    }
                });
            }
            sim.run();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn actor_panic_propagates() {
        let sim = Simulation::new();
        sim.spawn("boom", |_ctx| panic!("intentional"));
        sim.run();
    }

    #[test]
    fn yield_now_lets_same_time_actor_run() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        sim.spawn("first", move |ctx| {
            l1.lock().push("first-before");
            ctx.yield_now();
            l1.lock().push("first-after");
        });
        let l2 = Arc::clone(&log);
        sim.spawn("second", move |_ctx| {
            l2.lock().push("second");
        });
        sim.run();
        assert_eq!(*log.lock(), vec!["first-before", "second", "first-after"]);
    }

    #[test]
    fn run_until_pauses_at_horizon_and_resumes() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&log);
        sim.spawn("ticker", move |ctx| {
            for _ in 0..5 {
                ctx.delay(Nanos(10));
                l.lock().push(ctx.now().0);
            }
        });
        let st = sim.run_until(Nanos(25));
        assert_eq!(*log.lock(), vec![10, 20]);
        assert_eq!(st.next_wake, Some(Nanos(30)));
        assert_eq!(st.live, 1);
        assert!(!st.quiesced());

        // A smaller horizon is a status-only no-op.
        let st = sim.run_until(Nanos(5));
        assert_eq!(st.next_wake, Some(Nanos(30)));

        let st = sim.run_until(Nanos(40));
        assert_eq!(*log.lock(), vec![10, 20, 30, 40]);
        assert_eq!(st.next_wake, Some(Nanos(50)));

        let st = sim.run_until(Nanos::MAX);
        assert!(st.quiesced());
        assert_eq!(*log.lock(), vec![10, 20, 30, 40, 50]);
        sim.join_finished();
    }

    #[test]
    fn run_until_slicing_matches_run() {
        fn scenario(sim: &Simulation, log: &Arc<Mutex<Vec<(u64, u64)>>>) {
            for id in 0..3u64 {
                let l = Arc::clone(log);
                sim.spawn(&format!("w{id}"), move |ctx| {
                    let mut step = 5 + id * 7;
                    for _ in 0..6 {
                        ctx.delay(Nanos(step));
                        l.lock().push((id, ctx.now().0));
                        step = step * 13 % 41 + 1;
                    }
                });
            }
        }
        let whole = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::new();
        scenario(&sim, &whole);
        sim.run();

        let sliced = Arc::new(Mutex::new(Vec::new()));
        let sim2 = Simulation::new();
        scenario(&sim2, &sliced);
        let mut h = 0u64;
        loop {
            h += 7;
            if sim2.run_until(Nanos(h)).quiesced() {
                break;
            }
        }
        sim2.join_finished();
        assert_eq!(*whole.lock(), *sliced.lock());
        assert_eq!(sim.now(), sim2.now());
    }

    #[test]
    fn run_until_fast_path_stops_at_horizon() {
        // A single actor whose wait would normally advance the clock in
        // place must still park at the horizon boundary.
        let sim = Simulation::new();
        sim.spawn("lone", |ctx| {
            ctx.delay(Nanos(1_000));
        });
        let st = sim.run_until(Nanos(100));
        assert_eq!(st.live, 1);
        assert_eq!(st.next_wake, Some(Nanos(1_000)));
        assert!(
            sim.now() <= Nanos(100),
            "clock ran past horizon: {:?}",
            sim.now()
        );
        assert!(sim.run_until(Nanos::MAX).quiesced());
        sim.join_finished();
    }
}
