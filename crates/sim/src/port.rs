//! Cross-shard port annotations.
//!
//! A [`Port`] names one kind of edge along which events may cross lane
//! boundaries in the sharded executor, together with its *lookahead*:
//! a hardware-derived lower bound on the delay between the instant a
//! lane decides to send and the instant the receiving lane can observe
//! the message. Conservative synchronization (Chandy–Misra style) is
//! only sound — and only fast — because every cross-shard edge declares
//! a positive lookahead; for BypassD the natural floor is the modeled
//! PCIe round-trip (~345 ns), since doorbells, completion posts, and
//! ATS shootdowns all traverse the link.
//!
//! Hardware crates export their edges as `Port` constants (see
//! `bypassd_ssd::ports`, `bypassd_hw::ports`, `bypassd_qos::ports`) so
//! the fleet topology is assembled from the same timing model the
//! devices themselves use.

use crate::time::Nanos;

/// A named cross-shard edge type with its minimum propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// Stable human-readable name (diagnostics, topology dumps).
    pub name: &'static str,
    /// Minimum virtual-time delay from send decision to delivery.
    /// Must be at least 1 ns: a zero-lookahead edge would force the
    /// receiving lane's clock to never get ahead of the sender's, which
    /// defeats sharding (and, at equal times, would make the merge order
    /// depend on tie-breaking between lanes).
    pub lookahead: Nanos,
}

impl Port {
    /// Creates a port; `lookahead` must be >= 1 ns.
    pub const fn new(name: &'static str, lookahead: Nanos) -> Self {
        assert!(
            lookahead.0 >= 1,
            "cross-shard ports need positive lookahead"
        );
        Port { name, lookahead }
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(+{})", self.name, self.lookahead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_display_shows_lookahead() {
        let p = Port::new("doorbell", Nanos(345));
        assert_eq!(p.lookahead, Nanos(345));
        assert_eq!(format!("{p}"), "doorbell(+345ns)");
    }
}
