//! Plain-text table rendering for the benchmark harnesses.
//!
//! Every table/figure harness prints its results through [`Table`], with an
//! optional "paper" column next to each measured value so the output reads
//! as paper-vs-measured.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// ```rust
/// use bypassd_sim::report::Table;
/// let mut t = Table::new("Table 1: latency breakdown", &["layer", "ns"]);
/// t.row(&["device", "4020"]);
/// t.row(&["total", "7850"]);
/// let s = t.render();
/// assert!(s.contains("device"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.max(4)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with a fixed number of decimals (helper for harnesses).
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a ratio as `x.xx×`.
pub fn speedup(new: f64, old: f64) -> String {
    if old == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", new / old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "123456"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("ragged", &["a"]);
        t.row(&["1", "2", "3"]);
        t.row(&["x"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(speedup(2.0, 1.0), "2.00x");
        assert_eq!(speedup(1.0, 0.0), "-");
    }
}
