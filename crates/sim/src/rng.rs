//! Deterministic random number generation and YCSB key distributions.
//!
//! A small, fully deterministic PRNG (xoshiro256** seeded via splitmix64)
//! keeps simulation runs reproducible across platforms, plus the key-choice
//! distributions used by the YCSB workloads in the paper's evaluation:
//! uniform, zipfian (with scrambling), and "latest".

/// xoshiro256** PRNG, seeded deterministically with splitmix64.
///
/// ```rust
/// use bypassd_sim::rng::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Derives an independent child generator (for per-actor streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// FNV-1a based scrambling hash used to spread zipfian-popular keys over
/// the key space (as YCSB's `ScrambledZipfianGenerator` does).
pub fn fnv1a_64(value: u64) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for i in 0..8 {
        hash ^= (value >> (i * 8)) & 0xFF;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Streaming FNV-1a 64-bit hasher.
///
/// Used wherever the simulation needs a cheap, deterministic,
/// platform-stable content digest: journal commit checksums, device media
/// fingerprints, and fault-campaign report fingerprints. Not
/// collision-resistant against adversaries — these are integrity checks
/// against *simulated* corruption, not cryptography.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Creates a hasher with the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET,
        }
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Returns the current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Key-choice distributions used by the YCSB workloads.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the YCSB default constant (0.99), scrambled over the
    /// key space.
    Zipfian(Zipfian),
    /// Most recently inserted keys most popular (YCSB workload D).
    Latest(Zipfian),
}

impl KeyDist {
    /// Builds a uniform distribution over `n` keys.
    pub fn uniform() -> Self {
        KeyDist::Uniform
    }

    /// Builds a scrambled zipfian distribution over `n` keys.
    pub fn zipfian(n: u64) -> Self {
        KeyDist::Zipfian(Zipfian::new(n, 0.99))
    }

    /// Builds a "latest" distribution over `n` keys.
    pub fn latest(n: u64) -> Self {
        KeyDist::Latest(Zipfian::new(n, 0.99))
    }

    /// Chooses a key index in `[0, n)`; `n` may have grown since
    /// construction (inserts), which the `Latest` variant honours.
    pub fn next_key(&self, rng: &mut Rng, n: u64) -> u64 {
        match self {
            KeyDist::Uniform => rng.gen_range(n),
            KeyDist::Zipfian(z) => {
                let v = z.next(rng);
                fnv1a_64(v) % n
            }
            KeyDist::Latest(z) => {
                // Popularity skewed towards the most recent insert.
                let v = z.next(rng).min(n - 1);
                n - 1 - v
            }
        }
    }
}

/// YCSB-style zipfian generator (Gray et al. rejection-free method).
///
/// Precomputes `zeta(n, theta)` once; sampling is O(1).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a zipfian distribution over `[0, n)` with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian requires at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cutoff, then integral approximation: keeps
        // construction O(1)-ish even for billions of keys.
        const EXACT: u64 = 1_000_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-theta dx from EXACT to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular.
    pub fn next(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// zeta(2, theta), exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Rng::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(10) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = Rng::new(13);
        let mut top = 0u32;
        let total = 100_000;
        for _ in 0..total {
            if z.next(&mut rng) < 10 {
                top += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 items draw a large share.
        assert!(
            top as f64 / total as f64 > 0.3,
            "zipfian not skewed enough: {top}"
        );
    }

    #[test]
    fn zipfian_within_bounds() {
        let z = Zipfian::new(37, 0.99);
        let mut rng = Rng::new(17);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 37);
        }
    }

    #[test]
    fn zipfian_large_n_constructs_fast() {
        // 1 billion keys: the BPF-KV store size; must not take O(n).
        let z = Zipfian::new(1_000_000_000, 0.99);
        let mut rng = Rng::new(23);
        for _ in 0..100 {
            assert!(z.next(&mut rng) < 1_000_000_000);
        }
    }

    #[test]
    fn latest_prefers_recent() {
        let d = KeyDist::latest(1000);
        let mut rng = Rng::new(29);
        let mut recent = 0;
        for _ in 0..10_000 {
            if d.next_key(&mut rng, 1000) >= 990 {
                recent += 1;
            }
        }
        assert!(
            recent > 3_000,
            "latest distribution not recency-biased: {recent}"
        );
    }

    #[test]
    fn scrambled_zipfian_spreads_keys() {
        let d = KeyDist::zipfian(1000);
        let mut rng = Rng::new(31);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(d.next_key(&mut rng, 1000));
        }
        // Scrambling should hit a broad set of distinct keys.
        assert!(seen.len() > 200, "only {} distinct keys", seen.len());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a_64(0), fnv1a_64(0));
        assert_ne!(fnv1a_64(1), fnv1a_64(2));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
