//! Virtual time: a nanosecond-resolution instant/duration newtype.
//!
//! The simulation uses a single [`Nanos`] type for both instants (time since
//! simulation start) and durations. This keeps arithmetic simple and matches
//! how the paper reports all costs (nanoseconds and microseconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual time value in nanoseconds.
///
/// `Nanos` is used both as an instant (offset from simulation start) and as
/// a duration. It is `Copy` and supports saturating subtraction via
/// [`Nanos::saturating_sub`].
///
/// ```rust
/// use bypassd_sim::time::Nanos;
/// let t = Nanos::from_micros(4) + Nanos(20);
/// assert_eq!(t.as_nanos(), 4020);
/// assert_eq!(format!("{t}"), "4.020us");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// Largest representable time.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a value from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a value from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a value from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a value from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a value from fractional seconds.
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid seconds value: {s}");
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Addition clamped at [`Nanos::MAX`] (used by horizon arithmetic,
    /// where `MAX` means "unbounded").
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// True if this is the zero value.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{}.{:03}us", ns / 1_000, ns % 1_000)
        } else if ns < 1_000_000_000 {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_nanos(7).as_nanos(), 7);
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!((a + b).0, 140);
        assert_eq!((a - b).0, 60);
        assert_eq!((a * 3).0, 300);
        assert_eq!((a / 4).0, 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn conversions_to_float() {
        let t = Nanos::from_micros(1500);
        assert!((t.as_micros_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn display_picks_human_unit() {
        assert_eq!(format!("{}", Nanos(999)), "999ns");
        assert_eq!(format!("{}", Nanos(4_020)), "4.020us");
        assert_eq!(format!("{}", Nanos(7_850_000)), "7.850ms");
        assert_eq!(format!("{}", Nanos(2_500_000_000)), "2.500s");
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = Nanos::from_secs_f64(-1.0);
    }
}
