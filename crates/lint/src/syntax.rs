//! The dependency-free Rust syntax model the interprocedural passes
//! walk: call sites (method and path calls with argument spans),
//! statement boundaries inside function bodies, and the per-file set of
//! identifiers bound to unordered collections (`HashMap`/`HashSet`).
//!
//! This is a *syntactic approximation*, not name resolution: calls are
//! keyed by their final identifier, receivers by their last field name,
//! and types by the tokens of their declaration. DESIGN.md §16 spells
//! out the resulting soundness caveats; the `lint.toml` allowlist is
//! the pressure valve for the false positives the approximation buys.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};
use crate::model::{matching_close, FileModel, Span};

/// One call expression: `name(args)`, `recv.name(args)` or
/// `a::b::name(args)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Final identifier of the callee (`lock`, `add_channel`, `new`).
    pub name: String,
    /// Path segments before the name (`Port` for `Port::new`,
    /// `["bypassd_ssd", "ports"]`-style paths keep every segment).
    pub qualifier: Vec<String>,
    /// True for `recv.name(...)` method syntax.
    pub is_method: bool,
    /// Last identifier of the receiver expression for method calls
    /// (`self.tenants.iter()` → `tenants`).
    pub receiver: Option<String>,
    /// Token spans of each top-level argument (half-open, excluding
    /// the delimiting parens/commas). Empty args produce no span.
    pub args: Vec<Span>,
    /// Token index of the callee name.
    pub idx: usize,
    pub line: usize,
    pub col: usize,
}

impl CallSite {
    /// The call rendered as a path, for diagnostics: `Port::new`.
    pub fn display_path(&self) -> String {
        if self.qualifier.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.qualifier.join("::"), self.name)
        }
    }
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "match", "for", "return", "fn", "loop", "in", "as", "let", "else", "move",
];

/// Extracts every call site within `span` of the token stream.
pub fn calls_in(toks: &[Token], span: Span) -> Vec<CallSite> {
    let mut out = Vec::new();
    let end = span.end.min(toks.len());
    for i in span.start..end {
        let TokenKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // `fn name(...)` is a definition, not a call.
        if i > 0 && matches!(&toks[i - 1].kind, TokenKind::Ident(kw) if kw == "fn") {
            continue;
        }
        if toks.get(i + 1).map(|t| &t.kind) != Some(&TokenKind::Open('(')) {
            // Allow one turbofish between name and parens:
            // `collect::<Vec<_>>()` — skip `::<...>`.
            if !(is_path_sep(toks, i + 1)
                && toks.get(i + 3).map(|t| &t.kind) == Some(&TokenKind::Punct('<')))
            {
                continue;
            }
            let Some(open) = skip_generic_args(toks, i + 3) else {
                continue;
            };
            if toks.get(open).map(|t| &t.kind) != Some(&TokenKind::Open('(')) {
                continue;
            }
            out.push(build_call(toks, i, name.clone(), open));
            continue;
        }
        out.push(build_call(toks, i, name.clone(), i + 1));
    }
    out
}

fn build_call(toks: &[Token], name_idx: usize, name: String, open: usize) -> CallSite {
    let is_method = name_idx > 0 && toks[name_idx - 1].kind == TokenKind::Punct('.');
    let qualifier = if is_method {
        Vec::new()
    } else {
        path_qualifier(toks, name_idx)
    };
    let receiver = if is_method {
        Some(crate::lockgraph::receiver_name(toks, name_idx))
    } else {
        None
    };
    CallSite {
        name,
        qualifier,
        is_method,
        receiver,
        args: split_args(toks, open),
        idx: name_idx,
        line: toks[name_idx].line,
        col: toks[name_idx].col,
    }
}

/// Walks `::`-separated identifiers backwards from the callee name:
/// `bypassd_ssd::ports::DOORBELL` → `["bypassd_ssd", "ports"]`.
fn path_qualifier(toks: &[Token], name_idx: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut i = name_idx;
    while i >= 3
        && toks[i - 1].kind == TokenKind::Punct(':')
        && toks[i - 2].kind == TokenKind::Punct(':')
    {
        match &toks[i - 3].kind {
            TokenKind::Ident(s) => {
                segs.push(s.clone());
                i -= 3;
            }
            // `>::method` after generics — stop, the turbofish head is
            // not a plain segment.
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// After a `<` at `lt`, returns the index one past the matching `>`.
/// Conservative: gives up (None) after 64 tokens.
fn skip_generic_args(toks: &[Token], lt: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, t) in toks.iter().enumerate().skip(lt).take(64) {
        match &t.kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits the paren group opening at `open` into top-level argument
/// token spans.
fn split_args(toks: &[Token], open: usize) -> Vec<Span> {
    let close = matching_close(toks, open) - 1; // index of `)`
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut i = open + 1;
    while i < close {
        match &toks[i].kind {
            TokenKind::Open(_) => i = matching_close(toks, i),
            TokenKind::Punct(',') => {
                if i > start {
                    out.push(Span { start, end: i });
                }
                i += 1;
                start = i;
            }
            _ => i += 1,
        }
    }
    if close > start {
        out.push(Span { start, end: close });
    }
    out
}

fn is_path_sep(toks: &[Token], i: usize) -> bool {
    toks.get(i).map(|t| &t.kind) == Some(&TokenKind::Punct(':'))
        && toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Punct(':'))
}

/// One statement-ish region of a function body, used by the taint
/// walker: `let` bindings, `for` loops and expression statements.
#[derive(Debug)]
pub enum Stmt {
    /// `let [mut] name [: ty] = <rhs tokens>;`
    Let { name: String, rhs: Span },
    /// `name = <rhs>;` / `name += <rhs>;` (re-assignment of a local).
    Assign { name: String, rhs: Span },
    /// `for pat in <iter tokens> {` — `name` is the first binding
    /// identifier of the pattern.
    For { name: String, iter: Span },
    /// Anything else, spanning to the next `;` or block boundary.
    Expr(Span),
}

/// Splits a function body into statements. Nested blocks are walked
/// flat: their statements appear in order, which is all the taint
/// fixpoint needs (it iterates to convergence anyway).
pub fn statements(toks: &[Token], body: Span) -> Vec<Stmt> {
    let mut out = Vec::new();
    let end = body.end.min(toks.len());
    let mut i = body.start + 1; // skip the `{`
    while i < end.saturating_sub(1) {
        match &toks[i].kind {
            TokenKind::Ident(kw) if kw == "let" => {
                let (stmt, next) = parse_let(toks, i, end);
                if let Some(s) = stmt {
                    out.push(s);
                }
                i = next;
            }
            TokenKind::Ident(kw) if kw == "for" => {
                let (stmt, next) = parse_for(toks, i, end);
                if let Some(s) = stmt {
                    out.push(s);
                }
                i = next;
            }
            TokenKind::Ident(name)
                if toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('='))
                    && toks.get(i + 2).map(|t| &t.kind) != Some(&TokenKind::Punct('='))
                    && (i == body.start + 1 || stmt_leading(&toks[i - 1].kind)) =>
            {
                let stop = stmt_end(toks, i + 2, end);
                out.push(Stmt::Assign {
                    name: name.clone(),
                    rhs: Span {
                        start: i + 2,
                        end: stop,
                    },
                });
                i = stop + 1;
            }
            TokenKind::Open('{') => {
                i += 1; // descend into nested blocks
            }
            _ => {
                let stop = stmt_end(toks, i, end);
                out.push(Stmt::Expr(Span {
                    start: i,
                    end: stop,
                }));
                i = stop + 1;
            }
        }
    }
    out
}

/// Can the previous token end a statement (so `x = ...` is a
/// re-assignment statement, not the middle of a larger expression)?
fn stmt_leading(kind: &TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::Punct(';') | TokenKind::Open('{') | TokenKind::Close('}')
    )
}

/// Index of the `;` (or block/bracket boundary) ending the statement
/// starting at `i`, scanning brackets as opaque groups.
fn stmt_end(toks: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        match &toks[i].kind {
            TokenKind::Punct(';') => return i,
            TokenKind::Open(_) => i = matching_close(toks, i),
            TokenKind::Close(_) => return i,
            _ => i += 1,
        }
    }
    end
}

fn parse_let(toks: &[Token], let_idx: usize, end: usize) -> (Option<Stmt>, usize) {
    let mut i = let_idx + 1;
    if let Some(TokenKind::Ident(m)) = toks.get(i).map(|t| &t.kind) {
        if m == "mut" {
            i += 1;
        }
    }
    // Pattern: take the first identifier; tuple/struct patterns bind
    // their first name (good enough for a taint over-approximation —
    // `let (a, b) = tainted()` taints `a`; `b` rides along via the
    // whole-expression check at sink sites).
    let name = loop {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(n)) => break n.clone(),
            Some(TokenKind::Open(_)) | Some(TokenKind::Punct('&')) => i += 1,
            _ => {
                let stop = stmt_end(toks, let_idx, end);
                return (None, stop + 1);
            }
        }
    };
    // Find the `=` at pattern depth, skipping the `: Type` annotation
    // (types may contain generics but no top-level `=`).
    let mut j = i;
    let mut found = None;
    while j < end {
        match &toks[j].kind {
            TokenKind::Punct('=')
                if toks.get(j + 1).map(|t| &t.kind) != Some(&TokenKind::Punct('=')) =>
            {
                found = Some(j);
                break;
            }
            TokenKind::Punct(';') => break,
            TokenKind::Open(_) => j = matching_close(toks, j),
            _ => j += 1,
        }
    }
    let Some(eq) = found else {
        let stop = stmt_end(toks, let_idx, end);
        return (None, stop + 1);
    };
    let stop = stmt_end(toks, eq + 1, end);
    (
        Some(Stmt::Let {
            name,
            rhs: Span {
                start: eq + 1,
                end: stop,
            },
        }),
        stop + 1,
    )
}

fn parse_for(toks: &[Token], for_idx: usize, end: usize) -> (Option<Stmt>, usize) {
    // `for <pat> in <iter> {` — find `in`, then the loop `{`.
    let mut i = for_idx + 1;
    let mut name = None;
    while i < end {
        match &toks[i].kind {
            TokenKind::Ident(kw) if kw == "in" => break,
            TokenKind::Ident(n) => {
                if name.is_none() && n != "mut" {
                    name = Some(n.clone());
                }
                i += 1;
            }
            TokenKind::Open(_) => i = matching_close(toks, i),
            _ => i += 1,
        }
    }
    if i >= end {
        return (None, for_idx + 1);
    }
    let iter_start = i + 1;
    let mut j = iter_start;
    while j < end {
        match &toks[j].kind {
            TokenKind::Open('{') => break,
            TokenKind::Open(_) => j = matching_close(toks, j),
            _ => j += 1,
        }
    }
    match name {
        // Continue scanning *inside* the loop body (j + 1).
        Some(name) => (
            Some(Stmt::For {
                name,
                iter: Span {
                    start: iter_start,
                    end: j,
                },
            }),
            j + 1,
        ),
        None => (None, j + 1),
    }
}

/// Identifiers bound to unordered collections in this file: local
/// `let x = HashMap::new()` bindings, `x: HashMap<...>` struct fields
/// and annotated locals / parameters. Matched by last-identifier at
/// use sites (`self.tenants.iter()` → `tenants`).
pub fn unordered_collections(model: &FileModel) -> BTreeSet<String> {
    let toks = &model.lexed.tokens;
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let TokenKind::Ident(ty) = &toks[i].kind else {
            continue;
        };
        if ty != "HashMap" && ty != "HashSet" {
            continue;
        }
        // Walk back over the qualifying path (`std::collections::`).
        let mut j = i;
        while j >= 3
            && toks[j - 1].kind == TokenKind::Punct(':')
            && toks[j - 2].kind == TokenKind::Punct(':')
            && matches!(toks[j - 3].kind, TokenKind::Ident(_))
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        match &toks[j - 1].kind {
            // `name: HashMap<...>` — field or annotated binding.
            TokenKind::Punct(':') => {
                if let Some(TokenKind::Ident(name)) = toks.get(j.wrapping_sub(2)).map(|t| &t.kind) {
                    out.insert(name.clone());
                }
            }
            // `name = HashMap::new()` / `= HashMap::with_capacity(..)`.
            TokenKind::Punct('=') => {
                if let Some(TokenKind::Ident(name)) = toks.get(j.wrapping_sub(2)).map(|t| &t.kind) {
                    out.insert(name.clone());
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::FileModel;

    fn first_fn(src: &str) -> (FileModel, Span) {
        let m = FileModel::build(lex(src));
        let body = m.functions[0].body;
        (m, body)
    }

    #[test]
    fn extracts_method_and_path_calls_with_args() {
        let (m, body) = first_fn(
            "fn f(&self) { self.tenants.iter(); Port::new(\"x\", Nanos(9)); go(a, b(c), d); }",
        );
        let calls = calls_in(&m.lexed.tokens, body);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["iter", "new", "Nanos", "go", "b"]);
        let iter = &calls[0];
        assert!(iter.is_method);
        assert_eq!(iter.receiver.as_deref(), Some("tenants"));
        let new = &calls[1];
        assert_eq!(new.qualifier, vec!["Port".to_string()]);
        assert_eq!(new.args.len(), 2);
        let go = &calls[3];
        assert_eq!(go.args.len(), 3);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let (m, body) = first_fn("fn f(v: Vec<u8>) { let s = v.iter().collect::<Vec<_>>(); }");
        let calls = calls_in(&m.lexed.tokens, body);
        assert!(calls.iter().any(|c| c.name == "collect"));
    }

    #[test]
    fn statements_find_let_for_and_assign() {
        let (m, body) = first_fn(
            "fn f(&self) { let mut ks = self.m.keys().collect(); ks.sort(); for k in ks { use_(k); } total = 9; }",
        );
        let stmts = statements(&m.lexed.tokens, body);
        assert!(matches!(&stmts[0], Stmt::Let { name, .. } if name == "ks"));
        assert!(matches!(&stmts[1], Stmt::Expr(_)));
        assert!(stmts
            .iter()
            .any(|s| matches!(s, Stmt::For { name, .. } if name == "k")));
        assert!(stmts
            .iter()
            .any(|s| matches!(s, Stmt::Assign { name, .. } if name == "total")));
    }

    #[test]
    fn let_with_type_annotation_takes_rhs_after_eq() {
        let (m, body) =
            first_fn("fn f(&self) { let keys: Vec<u64> = self.blocks.keys().copied().collect(); }");
        let stmts = statements(&m.lexed.tokens, body);
        let Stmt::Let { name, rhs } = &stmts[0] else {
            panic!("expected let: {stmts:?}");
        };
        assert_eq!(name, "keys");
        // RHS must start at `self`, not inside the type.
        assert!(
            matches!(&m.lexed.tokens[rhs.start].kind, TokenKind::Ident(s) if s == "self"),
            "{:?}",
            m.lexed.tokens[rhs.start]
        );
    }

    #[test]
    fn unordered_collections_sees_fields_and_lets() {
        let src = "struct S { tenants: HashMap<u32, T>, names: std::collections::HashSet<String>, v: Vec<u8> }\n\
                   fn f() { let local = HashMap::new(); let fine = BTreeMap::new(); }";
        let m = FileModel::build(lex(src));
        let set = unordered_collections(&m);
        assert!(set.contains("tenants"));
        assert!(set.contains("names"));
        assert!(set.contains("local"));
        assert!(!set.contains("v"));
        assert!(!set.contains("fine"));
    }
}
