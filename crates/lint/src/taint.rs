//! R5 — interprocedural determinism taint.
//!
//! The repo's load-bearing contract is bit-identical virtual-time
//! results (fleet fingerprints, campaign reports, trace times). The
//! PR 4 lexer could flag a literal `Instant::now`, but not a wall-clock
//! value laundered through three function calls, nor a `HashMap`
//! iteration whose order leaks into an FNV fingerprint. This pass can:
//!
//! * **Sources** — wall clock (`Instant::now`, `SystemTime`), OS
//!   randomness (`thread_rng`), thread identity (`thread::current`),
//!   pointer-as-integer casts (`.as_ptr() as usize`), and iteration
//!   over unordered collections (`HashMap`/`HashSet` `.iter/keys/
//!   values/drain`, `for _ in &map`).
//! * **Propagation** — a per-function *summary* (`returns_taint`) is
//!   computed to fixpoint over the workspace call graph: a function is
//!   tainted when its body produces a source value that is never
//!   sanitized, or when it calls a tainted function. Within a body,
//!   taint flows through `let`/assignment/`for` bindings.
//! * **Sanitizers** — sorting a binding (`keys.sort_unstable()`)
//!   clears its taint: an ordered drain of an unordered map is exactly
//!   the blessed idiom.
//! * **Sinks** — FNV fingerprint folds (`write_u64`, `absorb`,
//!   `fnv_fold`), virtual-time construction (`Nanos(expr)`),
//!   simulation deadlines (`spawn_at`), and the trace `virtual_end_ns`
//!   field. A tainted value reaching a sink argument is reported at
//!   the sink's exact line:col with the cross-function chain.
//!
//! Soundness caveats of the syntax-level approximation (no type
//! inference, name-keyed call resolution) are catalogued in
//! DESIGN.md §16; false positives are allowlisted in `lint.toml` with
//! reasons (e.g. commutative folds over unordered iterators).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnId};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::Span;
use crate::rules::SourceFile;
use crate::syntax::{self, CallSite, Stmt};

/// Why a value is nondeterministic.
#[derive(Debug, Clone)]
struct Origin {
    /// Human chain: "iterates unordered `HashMap` `tenants`" or
    /// "calls tainted `active_weight` (crates/qos/src/arbiter.rs:152)
    /// → ...".
    why: String,
}

/// One direct source occurrence in a function body.
#[derive(Debug)]
struct SourceHit {
    /// Token index of the source expression.
    idx: usize,
    why: String,
}

/// Sanitizing method names: sorting imposes a deterministic order.
const SANITIZERS: [&str; 6] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Unordered-iteration method names.
const UNORDERED_ITERS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Fingerprint-fold sinks: a tainted argument makes the digest
/// order-dependent.
const HASH_SINKS: [&str; 3] = ["write_u64", "absorb", "fnv_fold"];

/// The workspace taint pass.
pub struct TaintPass<'w> {
    files: &'w [SourceFile],
    graph: &'w CallGraph,
    /// Per-file unordered-collection ident sets.
    unordered: Vec<BTreeSet<String>>,
    /// Per-function summaries (None = not tainted).
    summaries: Vec<Option<Origin>>,
}

impl<'w> TaintPass<'w> {
    pub fn new(files: &'w [SourceFile], graph: &'w CallGraph) -> Self {
        let unordered = files
            .iter()
            .map(|f| syntax::unordered_collections(&f.model))
            .collect();
        TaintPass {
            files,
            graph,
            unordered,
            summaries: vec![None; graph.fns.len()],
        }
    }

    /// Computes summaries to fixpoint, then reports every tainted flow
    /// into a sink. `report_file` gates which files may *emit*
    /// diagnostics (exempt paths still contribute summaries).
    pub fn run(mut self, report_file: impl Fn(usize) -> bool) -> Vec<Diagnostic> {
        // Seed + propagate summaries until stable. Each round re-runs
        // the local analysis because callee taint can create new local
        // taint. Bounded like the call-graph fixpoint driver.
        for _ in 0..64 {
            let mut changed = false;
            for id in 0..self.graph.fns.len() {
                if self.summaries[id].is_some() || self.graph.fns[id].in_test {
                    continue;
                }
                if let Some(origin) = self.function_taint(id) {
                    self.summaries[id] = Some(origin);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut out = Vec::new();
        for id in 0..self.graph.fns.len() {
            let node = &self.graph.fns[id];
            if node.in_test || !report_file(node.file) {
                continue;
            }
            self.report_sinks(id, &mut out);
        }
        out.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
        out
    }

    /// Is this call site tainted per current summaries? Returns the
    /// chain description.
    fn call_taint(&self, call: &CallSite) -> Option<String> {
        for &callee in self.graph.resolve(call) {
            if let Some(origin) = &self.summaries[callee] {
                let callee_node = &self.graph.fns[callee];
                let file = &self.files[callee_node.file];
                return Some(format!(
                    "calls tainted `{}` ({}:{}): {}",
                    call.name, file.path, callee_node.line, origin.why
                ));
            }
        }
        None
    }

    /// Direct sources in a function body, with token indices.
    fn direct_sources(&self, id: FnId) -> Vec<SourceHit> {
        let node = &self.graph.fns[id];
        let file = &self.files[node.file];
        let toks = &file.model.lexed.tokens;
        let unordered = &self.unordered[node.file];
        let mut out = Vec::new();

        for call in &node.calls {
            if call.is_method && UNORDERED_ITERS.contains(&call.name.as_str()) {
                if let Some(recv) = &call.receiver {
                    if unordered.contains(recv) {
                        out.push(SourceHit {
                            idx: call.idx,
                            why: format!(
                                "iterates unordered `HashMap`/`HashSet` `{recv}` \
                                 (`.{}()` order varies run to run)",
                                call.name
                            ),
                        });
                    }
                }
            }
            match call.name.as_str() {
                "now"
                    if call.qualifier.last().map(String::as_str) == Some("Instant")
                        || call.qualifier.last().map(String::as_str) == Some("SystemTime") =>
                {
                    out.push(SourceHit {
                        idx: call.idx,
                        why: format!("reads the wall clock (`{}`)", call.display_path()),
                    });
                }
                "thread_rng" => out.push(SourceHit {
                    idx: call.idx,
                    why: "uses OS-seeded `thread_rng` randomness".to_string(),
                }),
                "current" if call.qualifier.last().map(String::as_str) == Some("thread") => {
                    out.push(SourceHit {
                        idx: call.idx,
                        why: "depends on thread identity (`thread::current`)".to_string(),
                    });
                }
                // `.as_ptr() as usize` — address-dependent value.
                "as_ptr" | "as_mut_ptr" => {
                    let after = crate::model::matching_close(toks, call.idx + 1);
                    if matches!(toks.get(after).map(|t| &t.kind),
                                Some(TokenKind::Ident(kw)) if kw == "as")
                    {
                        out.push(SourceHit {
                            idx: call.idx,
                            why: format!(
                                "casts a pointer to an integer (`.{}() as ...`), \
                                 which leaks ASLR-random addresses",
                                call.name
                            ),
                        });
                    }
                }
                _ => {}
            }
        }

        // `for x in &map` / `for x in map` over an unordered binding.
        for stmt in syntax::statements(toks, node.body) {
            if let Stmt::For { iter, .. } = stmt {
                if let Some((idx, recv)) = last_ident(toks, iter) {
                    // Only a *bare* receiver (`map`, `&self.map`): an
                    // iterator chain ends in a call and is handled via
                    // the method-source rules above.
                    if unordered.contains(&recv)
                        && toks.get(idx + 1).map(|t| &t.kind) != Some(&TokenKind::Open('('))
                    {
                        out.push(SourceHit {
                            idx,
                            why: format!(
                                "iterates unordered `HashMap`/`HashSet` `{recv}` \
                                 (`for` order varies run to run)"
                            ),
                        });
                    }
                }
            }
        }
        out
    }

    /// Local dataflow: which bindings end the function tainted, and is
    /// there "loose" (unbound) taint — a source or tainted call in
    /// expression position?
    fn local_flow(&self, id: FnId) -> LocalFlow {
        let node = &self.graph.fns[id];
        let file = &self.files[node.file];
        let toks = &file.model.lexed.tokens;
        let sources = self.direct_sources(id);
        let stmts = syntax::statements(toks, node.body);

        let mut tainted: BTreeMap<String, Origin> = BTreeMap::new();
        let mut sanitized: BTreeSet<String> = BTreeSet::new();
        let mut loose: Option<Origin> = None;

        let expr_taint = |span: Span,
                          tainted: &BTreeMap<String, Origin>,
                          sanitized: &BTreeSet<String>|
         -> Option<Origin> {
            // Direct source inside the expression?
            for s in &sources {
                if span.contains(s.idx) {
                    return Some(Origin { why: s.why.clone() });
                }
            }
            // Call to a tainted function?
            for call in &node.calls {
                if span.contains(call.idx) {
                    if let Some(why) = self.call_taint(call) {
                        return Some(Origin { why });
                    }
                }
            }
            // A tainted ident?
            for tok in &toks[span.start..span.end.min(toks.len())] {
                if let TokenKind::Ident(name) = &tok.kind {
                    if sanitized.contains(name) {
                        continue;
                    }
                    if let Some(o) = tainted.get(name) {
                        return Some(Origin {
                            why: format!("via local `{name}`: {}", o.why),
                        });
                    }
                }
            }
            None
        };

        // Two ordered passes: the second picks up defs that depend on
        // later statements (loop-carried flows).
        for _ in 0..2 {
            for stmt in &stmts {
                match stmt {
                    Stmt::Let { name, rhs } | Stmt::Assign { name, rhs } => {
                        if let Some(o) = expr_taint(*rhs, &tainted, &sanitized) {
                            if !sanitized.contains(name) {
                                tainted.entry(name.clone()).or_insert(o);
                            }
                        }
                    }
                    Stmt::For { name, iter } => {
                        if let Some(o) = expr_taint(*iter, &tainted, &sanitized) {
                            if !sanitized.contains(name) {
                                tainted.entry(name.clone()).or_insert(o);
                            }
                        }
                    }
                    Stmt::Expr(span) => {
                        // Sanitizer? `x.sort_unstable();`
                        let mut handled = false;
                        for call in &node.calls {
                            if span.contains(call.idx)
                                && call.is_method
                                && SANITIZERS.contains(&call.name.as_str())
                            {
                                if let Some(recv) = &call.receiver {
                                    tainted.remove(recv);
                                    sanitized.insert(recv.clone());
                                    handled = true;
                                }
                            }
                        }
                        if handled {
                            continue;
                        }
                        if loose.is_none() {
                            loose = expr_taint(*span, &tainted, &sanitized);
                        }
                    }
                }
            }
        }

        LocalFlow { tainted, loose }
    }

    /// Summary: does the function produce a nondeterministic value?
    fn function_taint(&self, id: FnId) -> Option<Origin> {
        let flow = self.local_flow(id);
        if let Some(loose) = flow.loose {
            return Some(loose);
        }
        flow.tainted.into_values().next()
    }

    /// Reports tainted values reaching sink arguments in function `id`.
    fn report_sinks(&self, id: FnId, out: &mut Vec<Diagnostic>) {
        let node = &self.graph.fns[id];
        let file = &self.files[node.file];
        let toks = &file.model.lexed.tokens;
        let flow = self.local_flow(id);
        let sources = self.direct_sources(id);

        let arg_taint = |span: Span| -> Option<String> {
            for s in &sources {
                if span.contains(s.idx) {
                    return Some(s.why.clone());
                }
            }
            for call in &node.calls {
                if span.contains(call.idx) && call.idx > span.start {
                    if let Some(why) = self.call_taint(call) {
                        return Some(why);
                    }
                }
            }
            for tok in &toks[span.start..span.end.min(toks.len())] {
                if let TokenKind::Ident(name) = &tok.kind {
                    if let Some(o) = flow.tainted.get(name) {
                        return Some(format!("via local `{name}`: {}", o.why));
                    }
                }
            }
            None
        };

        for call in &node.calls {
            let sink_desc = match call.name.as_str() {
                n if HASH_SINKS.contains(&n) => Some("an FNV fingerprint fold"),
                "Nanos" if !call.is_method => Some("a virtual-time `Nanos` value"),
                "spawn_at" | "schedule_hop" => Some("a simulation deadline"),
                _ => None,
            };
            let Some(sink_desc) = sink_desc else { continue };
            // For `spawn_at(at, ...)` only the deadline argument is a
            // sink; for the rest, any argument.
            let args: &[Span] = match call.name.as_str() {
                "spawn_at" | "schedule_hop" => &call.args[..call.args.len().min(1)],
                _ => &call.args,
            };
            for arg in args {
                if let Some(why) = arg_taint(*arg) {
                    out.push(Diagnostic {
                        rule: "R5",
                        path: file.path.clone(),
                        line: call.line,
                        col: call.col,
                        end_col: call.col + call.name.len(),
                        message: format!(
                            "nondeterministic value flows into {sink_desc} via \
                             `{}`: {} — results would differ run to run; derive the \
                             value from virtual time / seeded Rng, or impose an \
                             order (sort, BTreeMap) before it reaches the sink",
                            call.display_path(),
                            why
                        ),
                        context: file.context(call.line),
                        edge: None,
                    });
                }
            }
        }

        // Field sink: `virtual_end_ns: <expr>` / `virtual_end_ns = <expr>`.
        for i in node.body.start..node.body.end.min(toks.len()) {
            let TokenKind::Ident(name) = &toks[i].kind else {
                continue;
            };
            if name != "virtual_end_ns" {
                continue;
            }
            let is_field = matches!(toks.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct(':')) if toks.get(i + 2).map(|t| &t.kind) != Some(&TokenKind::Punct(':')))
                || matches!(toks.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('=')) if toks.get(i + 2).map(|t| &t.kind) != Some(&TokenKind::Punct('=')));
            if !is_field {
                continue;
            }
            let stop = field_expr_end(toks, i + 2, node.body.end);
            if let Some(why) = arg_taint(Span {
                start: i + 2,
                end: stop,
            }) {
                out.push(Diagnostic {
                    rule: "R5",
                    path: file.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    end_col: toks[i].col + name.len(),
                    message: format!(
                        "nondeterministic value assigned to trace field \
                         `virtual_end_ns`: {why} — trace bit-identity requires \
                         virtual-time-derived stamps only"
                    ),
                    context: file.context(toks[i].line),
                    edge: None,
                });
            }
        }
    }
}

struct LocalFlow {
    tainted: BTreeMap<String, Origin>,
    loose: Option<Origin>,
}

/// Last identifier token in a span (for `for x in &self.map`).
fn last_ident(toks: &[crate::lexer::Token], span: Span) -> Option<(usize, String)> {
    (span.start..span.end.min(toks.len()))
        .rev()
        .find_map(|i| match &toks[i].kind {
            TokenKind::Ident(s) => Some((i, s.clone())),
            _ => None,
        })
}

/// End of a struct-literal field or assignment expression: the next
/// top-level `,`, `;` or `}`.
fn field_expr_end(toks: &[crate::lexer::Token], mut i: usize, end: usize) -> usize {
    while i < end.min(toks.len()) {
        match &toks[i].kind {
            TokenKind::Punct(',') | TokenKind::Punct(';') => return i,
            TokenKind::Open(_) => i = crate::model::matching_close(toks, i),
            TokenKind::Close(_) => return i,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_taint(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let lib: Vec<Option<String>> = (0..files.len()).map(|_| Some("x".to_string())).collect();
        let graph = CallGraph::build(&files, &lib);
        TaintPass::new(&files, &graph).run(|_| true)
    }

    #[test]
    fn direct_map_iteration_into_fingerprint_fold() {
        let d = run_taint(&[(
            "crates/x/src/lib.rs",
            "struct S { m: HashMap<u64, u64> }\n\
             impl S {\n\
               fn fp(&self, h: &mut Fnv64) {\n\
                 for k in self.m.keys() { h.write_u64(*k); }\n\
               }\n\
             }",
        )]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "R5");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("unordered"), "{}", d[0].message);
    }

    #[test]
    fn sorted_drain_is_sanitized() {
        let d = run_taint(&[(
            "crates/x/src/lib.rs",
            "struct S { m: HashMap<u64, u64> }\n\
             impl S {\n\
               fn fp(&self, h: &mut Fnv64) {\n\
                 let mut keys: Vec<u64> = self.m.keys().copied().collect();\n\
                 keys.sort_unstable();\n\
                 for k in keys { h.write_u64(k); }\n\
               }\n\
             }",
        )]);
        assert_eq!(d, vec![], "sorted keys are deterministic");
    }

    #[test]
    fn cross_function_wall_clock_laundering_is_caught() {
        // Three hops: stamp() -> jitter() -> schedule(); the sink file
        // never mentions Instant. The PR 4 lexer was blind to this.
        let d = run_taint(&[
            (
                "crates/x/src/clock.rs",
                "pub fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }",
            ),
            (
                "crates/x/src/mid.rs",
                "pub fn jitter() -> u64 { stamp() / 3 }",
            ),
            (
                "crates/x/src/sched.rs",
                "pub fn schedule(sim: &Simulation) {\n\
                   let at = jitter();\n\
                   sim.spawn_at(Nanos(at), \"actor\", move |_| {});\n\
                 }",
            ),
        ]);
        // Both the `Nanos(at)` construction and the spawn_at deadline
        // carry the taint; dedup either is fine, assert the spawn site.
        assert!(!d.is_empty(), "laundered wall clock must be caught");
        assert!(
            d.iter()
                .any(|d| d.path == "crates/x/src/sched.rs" && d.line == 3),
            "{d:#?}"
        );
        assert!(d[0].message.contains("wall clock"), "{}", d[0].message);
    }

    #[test]
    fn untainted_chain_is_clean() {
        let d = run_taint(&[
            (
                "crates/x/src/a.rs",
                "pub fn base(seed: u64) -> u64 { seed.wrapping_mul(3) }",
            ),
            (
                "crates/x/src/b.rs",
                "pub fn use_it(sim: &Simulation) { sim.spawn_at(Nanos(base(7)), \"a\", f); }",
            ),
        ]);
        assert_eq!(d, vec![]);
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run_taint(&[(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod t {\n  fn f(m: &HashMap<u64, u64>, h: &mut Fnv64) {\n    let m = HashMap::new();\n    for k in m.keys() { h.write_u64(*k); }\n  }\n}",
        )]);
        assert_eq!(d, vec![]);
    }
}
