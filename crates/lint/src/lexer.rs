//! A minimal Rust lexer sufficient for the workspace lint rules.
//!
//! The build environment has no crates.io access, so `syn` is not
//! available; this scanner produces the small token stream the rules in
//! [`crate::rules`] need: identifiers, punctuation, bracket structure and
//! per-line comment text. String/char/raw-string literals are consumed
//! (so their contents can never fake a match) and numeric literals are
//! skipped. Nested block comments and raw strings with `#` fences are
//! handled; anything fancier (macros are scanned as plain tokens) is out
//! of scope for the rules we enforce.

use std::collections::HashMap;

/// One lexical token with its 1-based source line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    /// 1-based byte column of the token's first character — the
    /// diagnostic span anchor (SARIF `startColumn`).
    pub col: usize,
}

impl Token {
    /// Width in bytes of the token text (for span end columns);
    /// punctuation and literals report 1 (the anchor character).
    pub fn width(&self) -> usize {
        match &self.kind {
            TokenKind::Ident(s) | TokenKind::Lifetime(s) => s.len(),
            _ => 1,
        }
    }
}

/// The token categories the lint rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `let`, `lock`, ...).
    Ident(String),
    /// Lifetime such as `'a` (kept distinct so it never looks like an ident).
    Lifetime(String),
    /// A single punctuation character (`.`, `:`, `;`, `#`, `=`, ...).
    Punct(char),
    /// `(`, `[` or `{`.
    Open(char),
    /// `)`, `]` or `}`.
    Close(char),
    /// A string/char/byte literal (contents dropped).
    Literal,
}

/// Lexer output: the token stream plus a map from line number to the
/// comment text present on that line (line comments and the first line of
/// block comments; multi-line block comments contribute to every line
/// they span so "comment on the same line" checks behave intuitively).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: HashMap<usize, String>,
}

impl Lexed {
    /// True when `line` carries a comment containing `needle`.
    pub fn comment_on_line_contains(&self, line: usize, needle: &str) -> bool {
        self.comments.get(&line).is_some_and(|c| c.contains(needle))
    }
}

/// Tokenizes `src`. Never fails: unrecognized bytes are skipped, which is
/// fine for linting (rules only ever assert on token sequences that *do*
/// appear).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let mut line_start = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Span anchor of whatever token starts here.
        let tok_col = i - line_start + 1;
        macro_rules! push {
            ($kind:expr) => {
                out.tokens.push(Token {
                    kind: $kind,
                    line,
                    col: tok_col,
                })
            };
        }
        // Multi-line constructs bump `line` internally; re-anchor the
        // column base afterwards from the last newline consumed.
        macro_rules! reanchor {
            ($start:expr) => {
                if let Some(p) = src[$start..i].rfind('\n') {
                    line_start = $start + p + 1;
                }
            };
        }
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments): record text, eat to EOL.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                out.comments.entry(line).or_default().push_str(text);
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested; attribute its text to
                // every line it spans.
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text = &src[start..i.min(src.len())];
                for l in start_line..=line {
                    out.comments.entry(l).or_default().push_str(text);
                }
                reanchor!(start);
            }
            '"' => {
                let start = i;
                i = skip_string(bytes, i, &mut line);
                push!(TokenKind::Literal);
                reanchor!(start);
            }
            'r' | 'b' | 'c' if starts_string_prefix(bytes, i) => {
                let start = i;
                i = skip_prefixed_string(bytes, i, &mut line);
                push!(TokenKind::Literal);
                reanchor!(start);
            }
            '\'' => {
                // Char literal vs lifetime: a lifetime is `'ident` NOT
                // followed by a closing quote.
                let start = i;
                let (next, kind) = lex_quote(src, bytes, i, &mut line);
                i = next;
                push!(kind);
                reanchor!(start);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push!(TokenKind::Ident(src[start..i].to_string()));
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: consume digits and any alphanumeric
                // suffix/exponent chars plus `.` in floats. `1.method()`
                // can't appear on the paths we lint, so greedily eating a
                // single trailing `.` followed by a digit is safe.
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    let float_dot = b == '.'
                        && bytes
                            .get(i + 1)
                            .is_some_and(|n| (*n as char).is_ascii_digit());
                    if b.is_ascii_alphanumeric() || b == '_' || float_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Literal);
            }
            '(' | '[' | '{' => {
                push!(TokenKind::Open(c));
                i += 1;
            }
            ')' | ']' | '}' => {
                push!(TokenKind::Close(c));
                i += 1;
            }
            _ => {
                push!(TokenKind::Punct(c));
                i += 1;
            }
        }
    }
    out
}

fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    // r" r#" b" br" b' c" etc. — any of r/b/c immediately introducing a
    // (possibly fenced) string or byte literal.
    let mut j = i;
    while j < bytes.len() && matches!(bytes[j], b'r' | b'b' | b'c') && j - i < 3 {
        j += 1;
    }
    let mut k = j;
    while k < bytes.len() && bytes[k] == b'#' {
        k += 1;
    }
    k < bytes.len() && (bytes[k] == b'"' || (j > i && bytes[j - 1] == b'b' && bytes[k] == b'\''))
}

fn skip_prefixed_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    while i < bytes.len() && matches!(bytes[i], b'r' | b'b' | b'c') {
        raw |= bytes[i] == b'r';
        i += 1;
    }
    let mut fences = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        fences += 1;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        // b'x' byte char
        return skip_char(bytes, i, line);
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i;
    }
    i += 1;
    if raw || fences > 0 {
        // Raw string: ends at `"` followed by `fences` hashes; no escapes.
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
            }
            if bytes[i] == b'"'
                && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= fences
            {
                return i + 1 + fences;
            }
            i += 1;
        }
        i
    } else {
        skip_string(bytes, i - 1, line)
    }
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_char(bytes: &[u8], mut i: usize, _line: &mut usize) -> usize {
    debug_assert_eq!(bytes[i], b'\'');
    i += 1;
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
    } else {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        i += 1;
    }
    i
}

fn lex_quote(src: &str, bytes: &[u8], i: usize, line: &mut usize) -> (usize, TokenKind) {
    // `'a` lifetime vs `'a'`/`'\n'`/`'"'` char. Only identifier-ish
    // characters can start a lifetime; anything else after the quote is a
    // char literal, which must be consumed so its payload (possibly a `"`)
    // never desyncs string scanning.
    let mut j = i + 1;
    if j < bytes.len() && bytes[j] == b'\\' {
        return (skip_char(bytes, i, line), TokenKind::Literal);
    }
    if j < bytes.len() && !((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_') {
        // Char literal with a non-identifier payload (`'"'`, `'('`, `'é'`,
        // ...): scan to the closing quote (chars are short; bound the scan).
        while j < bytes.len() && bytes[j] != b'\'' && j - i < 8 {
            if bytes[j] == b'\n' {
                *line += 1;
            }
            j += 1;
        }
        return ((j + 1).min(bytes.len()), TokenKind::Literal);
    }
    while j < bytes.len() && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' {
        (j + 1, TokenKind::Literal)
    } else {
        (j, TokenKind::Lifetime(src[i..j].to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_idents() {
        let src = r##"
            // Instant::now in a comment
            let s = "Instant::now in a string";
            let r = r#"thread::sleep raw"#;
            /* block SystemTime */
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"thread".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comment_text_is_recorded_per_line() {
        let src = "let a = 1; // ordering: counter only\nlet b = 2;\n";
        let lexed = lex(src);
        assert!(lexed.comment_on_line_contains(1, "ordering:"));
        assert!(!lexed.comment_on_line_contains(2, "ordering:"));
    }

    #[test]
    fn multiline_block_comment_covers_all_lines() {
        let src = "/* ordering:\n spans\n lines */ x";
        let lexed = lex(src);
        for l in 1..=3 {
            assert!(lexed.comment_on_line_contains(l, "ordering:"), "line {l}");
        }
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) {}").tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime("'a".into())));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"one\ntwo\";\nInstant";
        let lexed = lex(src);
        let inst = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("Instant".into()))
            .unwrap();
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn quote_char_literal_does_not_desync_strings() {
        // A `'"'` char literal must not open a string: everything after
        // it would flip between code and string context.
        let src = "match c { '\"' => f(), _ => g() } let s = \"SystemTime\"; real";
        let ids = idents(src);
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* a /* b */ c */ real");
        assert_eq!(ids, vec!["real".to_string()]);
    }

    #[test]
    fn columns_are_one_based_byte_offsets() {
        let src = "let x = now();\n    deep();";
        let toks = lex(src).tokens;
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.kind == TokenKind::Ident(name.into()))
                .unwrap()
        };
        assert_eq!((find("let").line, find("let").col), (1, 1));
        assert_eq!((find("now").line, find("now").col), (1, 9));
        assert_eq!((find("deep").line, find("deep").col), (2, 5));
        assert_eq!(find("deep").width(), 4);
    }

    #[test]
    fn columns_reanchor_after_multiline_strings_and_comments() {
        let src = "let s = \"one\ntwo\"; after\n/* x\ny */ tail";
        let toks = lex(src).tokens;
        let after = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("after".into()))
            .unwrap();
        assert_eq!((after.line, after.col), (2, 7));
        let tail = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("tail".into()))
            .unwrap();
        assert_eq!((tail.line, tail.col), (4, 6));
    }
}
