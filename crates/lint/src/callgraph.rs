//! The workspace-wide call graph the interprocedural passes share.
//!
//! Nodes are every `fn` item found in the scanned library sources;
//! edges are call sites resolved *by final identifier* — a call to
//! `admit` points at every workspace function named `admit`. That
//! over-approximation (no type-based resolution without `syn`/rustc)
//! is deliberate: for taint and lock analysis a superset of the real
//! graph errs on the reporting side, and `lint.toml` documents the
//! cases where the approximation is wrong.
//!
//! Ultra-common method names (`get`, `push`, `len`, ...) are excluded
//! from *method-call* resolution: `.get(k)` on a `Vec` resolving to
//! some workspace `fn get` that takes a lock would drown the report in
//! noise. Path-qualified calls (`Kernel::get`) still resolve.

use std::collections::BTreeMap;

use crate::model::Span;
use crate::rules::SourceFile;
use crate::syntax::{self, CallSite};

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the workspace file list.
    pub file: usize,
    pub name: String,
    pub crate_name: String,
    pub body: Span,
    pub line: usize,
    /// True when the function lies inside test-only code.
    pub in_test: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
}

/// Method names too generic to resolve through a bare `.name(...)`
/// call — std-trait and collection vocabulary that would alias half
/// the workspace together.
/// Resolution gives up on names with more definitions than this: such
/// names (`new`, `collect`, `write`) carry no identity, and the
/// over-approximation flips from conservative to useless.
pub const MAX_CANDIDATES: usize = 2;

const COMMON_METHODS: [&str; 30] = [
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clone",
    "new",
    "default",
    "next",
    "iter",
    "iter_mut",
    "into_iter",
    "clear",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "append",
    "take",
    "replace",
    "as_ref",
    "as_mut",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
];

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph over `files` (parallel to the workspace file
    /// list; `library[i]` gives file `i`'s crate name when it is
    /// library code).
    pub fn build(files: &[SourceFile], library: &[Option<String>]) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, file) in files.iter().enumerate() {
            let Some(crate_name) = &library[fi] else {
                continue;
            };
            let toks = &file.model.lexed.tokens;
            for func in &file.model.functions {
                let id = g.fns.len();
                g.fns.push(FnNode {
                    file: fi,
                    name: func.name.clone(),
                    crate_name: crate_name.clone(),
                    body: func.body,
                    line: func.line,
                    in_test: file.model.in_test_code(func.body.start),
                    calls: syntax::calls_in(toks, func.body),
                });
                g.by_name.entry(func.name.clone()).or_default().push(id);
            }
        }
        g
    }

    /// Workspace functions a call site may reach. Method calls with
    /// ultra-common names resolve to nothing (see module docs), and
    /// *ambiguous* names — more than [`MAX_CANDIDATES`] same-named
    /// definitions workspace-wide (`new`, `collect`, ...) — resolve to
    /// nothing either: joining every `fn new` into one node would fuse
    /// unrelated crates and drown both interprocedural passes in
    /// cross-crate phantom chains.
    pub fn resolve(&self, call: &CallSite) -> &[FnId] {
        if call.is_method && COMMON_METHODS.contains(&call.name.as_str()) {
            return &[];
        }
        let candidates = self
            .by_name
            .get(&call.name)
            .map(Vec::as_slice)
            .unwrap_or_default();
        if candidates.len() > MAX_CANDIDATES {
            return &[];
        }
        candidates
    }

    /// Runs `f` over every (caller, call site, callee) edge until no
    /// call to `f` returns true (a fixpoint driver for summaries).
    pub fn fixpoint(&self, mut f: impl FnMut(FnId, &CallSite, FnId) -> bool) {
        // Bounded by the longest acyclic chain; the workspace graph is
        // shallow, but cap defensively so a pathological cycle of
        // summaries cannot spin.
        for _ in 0..64 {
            let mut changed = false;
            for (caller, node) in self.fns.iter().enumerate() {
                for call in &node.calls {
                    for &callee in self.resolve(call) {
                        changed |= f(caller, call, callee);
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(path, src)| SourceFile::new(path, src))
            .collect();
        let lib: Vec<Option<String>> = srcs.iter().map(|_| Some("x".to_string())).collect();
        let g = CallGraph::build(&files, &lib);
        (files, g)
    }

    #[test]
    fn builds_nodes_and_resolves_by_name() {
        let (_f, g) = graph(&[(
            "crates/x/src/lib.rs",
            "fn outer() { helper(1); }\nfn helper(v: u32) -> u32 { v }",
        )]);
        assert_eq!(g.fns.len(), 2);
        let outer = &g.fns[0];
        assert_eq!(outer.calls.len(), 1);
        let callees = g.resolve(&outer.calls[0]);
        assert_eq!(callees, &[1]);
        assert_eq!(g.fns[callees[0]].name, "helper");
    }

    #[test]
    fn common_method_names_do_not_resolve() {
        let (_f, g) = graph(&[(
            "crates/x/src/lib.rs",
            "fn caller(v: &Vec<u8>) { v.get(0); }\nfn get(k: u32) -> u32 { k }",
        )]);
        let call = &g.fns[0].calls[0];
        assert!(call.is_method);
        assert!(g.resolve(call).is_empty());
    }

    #[test]
    fn cross_file_resolution() {
        let (_f, g) = graph(&[
            (
                "crates/x/src/a.rs",
                "pub fn entry() { crate::b::laundry(); }",
            ),
            ("crates/x/src/b.rs", "pub fn laundry() -> u64 { 7 }"),
        ]);
        let call = &g.fns[0].calls[0];
        let callees = g.resolve(call);
        assert_eq!(g.fns[callees[0]].name, "laundry");
    }
}
