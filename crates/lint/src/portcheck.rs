//! R6 — fleet port contract.
//!
//! Cross-lane traffic is declared up front: `Topology::add_channel(src,
//! dst, port, reaction)` binds a channel to a [`Port`], and the port's
//! `lookahead` is what lets the Chandy–Misra scheduler promise
//! conservative null messages (DESIGN.md §14). That promise is only as
//! good as the declared lookahead — an inline `Port::new("x", Nanos(1))`
//! buried in lane-wiring code is an unreviewed timing contract.
//!
//! The rule: library code declares ports as constants in a `ports`
//! module (`crates/<c>/src/ports.rs`), and every `add_channel` call
//! references one of those constants. Two findings:
//!
//! * **inline port** — `Port::new(...)` anywhere outside a `ports.rs`
//!   file (and outside `crates/sim`, which defines the type itself).
//! * **undeclared channel port** — an `add_channel(...)` whose port
//!   argument does not reference a `SCREAMING_CASE` port constant
//!   (e.g. a runtime-built `Port` passed through a variable).
//!
//! Test code is exempt: fixtures wire ad-hoc topologies on purpose.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::Span;
use crate::rules::SourceFile;
use crate::syntax::{self, CallSite};

/// Files allowed to construct `Port` values directly.
fn may_define_ports(path: &str) -> bool {
    path.ends_with("/ports.rs") || path.starts_with("crates/sim/")
}

/// Does the token span reference a `SCREAMING_CASE` constant (a
/// declared port like `ports::DOORBELL` or an imported `PRESSURE`)?
fn references_const(file: &SourceFile, span: Span) -> bool {
    let toks = &file.model.lexed.tokens;
    (span.start..span.end.min(toks.len())).any(|i| match &toks[i].kind {
        TokenKind::Ident(s) => {
            s.len() >= 2
                && s.chars().any(|c| c.is_ascii_uppercase())
                && s.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        }
        _ => false,
    })
}

/// Runs the port-contract check over one library file.
pub fn r6(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if may_define_ports(&file.path) {
        return out;
    }
    let toks = &file.model.lexed.tokens;
    let calls = syntax::calls_in(
        toks,
        Span {
            start: 0,
            end: toks.len(),
        },
    );
    for call in &calls {
        if file.model.in_test_code(call.idx) {
            continue;
        }
        match call.name.as_str() {
            "new" if call.qualifier.last().map(String::as_str) == Some("Port") => {
                out.push(inline_port_diag(file, call));
            }
            "add_channel" if call.args.len() >= 3 => {
                let port_arg = call.args[2];
                // An inline `Port::new` in the argument is already
                // reported above; only flag opaque non-constant args.
                let inline = syntax::calls_in(toks, port_arg).iter().any(|c| {
                    c.name == "new" && c.qualifier.last().map(String::as_str) == Some("Port")
                });
                if !inline && !references_const(file, port_arg) {
                    out.push(
                        file.diag(
                            "R6",
                            call.line,
                            call.col,
                            call.col + call.name.len(),
                            "channel declared with an undeclared port: the third \
                         argument of `add_channel` must reference a `ports` \
                         module constant (e.g. `ssd::ports::DOORBELL`) so the \
                         channel's lookahead promise is a reviewed, static \
                         contract"
                                .to_string(),
                            None,
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

fn inline_port_diag(file: &SourceFile, call: &CallSite) -> Diagnostic {
    file.diag(
        "R6",
        call.line,
        call.col,
        call.col + call.name.len(),
        "inline `Port::new` outside a `ports` module: declare the port as a \
         constant in this crate's `ports.rs` so its name and lookahead are \
         auditable; conservative-lookahead scheduling depends on these values \
         being reviewed in one place"
            .to_string(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        r6(&SourceFile::new(path, src))
    }

    #[test]
    fn inline_port_new_is_flagged() {
        let d = run(
            "crates/x/src/wiring.rs",
            "fn wire(t: &mut Topology) { t.add_channel(a, b, Port::new(\"x\", Nanos(345)), None); }",
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "R6");
        assert!(d[0].message.contains("inline `Port::new`"));
    }

    #[test]
    fn ports_module_and_sim_crate_may_define_ports() {
        let src = "pub const DOORBELL: Port = Port::new(\"nvme.doorbell\", PCIE_RTT);";
        assert!(run("crates/x/src/ports.rs", src).is_empty());
        assert!(run("crates/sim/src/port.rs", src).is_empty());
    }

    #[test]
    fn declared_constant_port_is_clean() {
        let d = run(
            "crates/x/src/wiring.rs",
            "fn wire(t: &mut Topology) { t.add_channel(a, b, ssd::ports::DOORBELL, None); }",
        );
        assert_eq!(d, vec![]);
    }

    #[test]
    fn opaque_port_variable_is_flagged() {
        let d = run(
            "crates/x/src/wiring.rs",
            "fn wire(t: &mut Topology, p: Port) { t.add_channel(a, b, p, None); }",
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("undeclared port"));
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run(
            "crates/x/src/wiring.rs",
            "#[cfg(test)] mod t { fn wire(t: &mut Topology) { t.add_channel(a, b, Port::new(\"x\", Nanos(1)), None); } }",
        );
        assert_eq!(d, vec![]);
    }
}
