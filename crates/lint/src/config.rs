//! `lint.toml` parsing: scan roots, per-rule path exemptions and the
//! allowlist. The build environment has no crates.io access (no `serde`
//! / `toml`), so this module parses the small TOML subset the config
//! actually uses: `[section]` tables, `[[allow]]` array-of-tables, and
//! `key = "string" | ["array", "of", "strings"]` pairs.

use std::path::Path;

/// One allowlist entry. An entry suppresses a diagnostic when the rule
/// matches, the diagnostic's path starts with `path`, and — if given —
/// the flagged source line contains `pattern` (for R2, `pattern` matches
/// the `from -> to` edge label instead). `reason` is mandatory: the
/// allowlist is documentation, not an escape hatch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub pattern: Option<String>,
    pub reason: String,
    /// Populated by the engine: entries that never fired are reported,
    /// so the allowlist cannot silently rot.
    pub line_no: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (relative to the workspace root) to scan.
    pub scan_roots: Vec<String>,
    /// Path substrings to skip entirely (fixtures, target, ...).
    pub skip: Vec<String>,
    /// Per-rule path-prefix exemptions, e.g. R1 → `crates/bench/`.
    pub exempt: Vec<(String, String)>,
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// Built-in defaults used when `lint.toml` is missing (fixture tests
    /// run the rules directly and don't need one).
    pub fn default_roots() -> Config {
        Config {
            scan_roots: vec![
                "crates".to_string(),
                "tests".to_string(),
                "examples".to_string(),
            ],
            skip: vec!["/fixtures/".to_string(), "/target/".to_string()],
            exempt: Vec::new(),
            allow: Vec::new(),
        }
    }

    /// True when `rule` is exempt for `path` by a config `exempt` prefix.
    pub fn is_exempt(&self, rule: &str, path: &str) -> bool {
        self.exempt
            .iter()
            .any(|(r, prefix)| r == rule && path.starts_with(prefix.as_str()))
    }

    /// Loads `lint.toml` from `root`, falling back to defaults.
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text),
            Err(_) => Ok(Config::default_roots()),
        }
    }
}

/// Parses the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config {
        scan_roots: Vec::new(),
        skip: Vec::new(),
        exempt: Vec::new(),
        allow: Vec::new(),
    };
    #[derive(PartialEq)]
    enum Section {
        None,
        Lint,
        Allow,
        Other,
    }
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            cfg.allow.push(AllowEntry {
                line_no,
                ..Default::default()
            });
            section = Section::Allow;
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = if name == "lint" {
                Section::Lint
            } else {
                Section::Other
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{line_no}: expected `key = value`"))?;
        let key = key.trim();
        let value = value.trim();
        match section {
            Section::Lint => match key {
                "scan_roots" => cfg.scan_roots = parse_string_array(value, line_no)?,
                "skip" => cfg.skip = parse_string_array(value, line_no)?,
                "exempt" => {
                    // exempt = ["R1:crates/bench/", ...]
                    for item in parse_string_array(value, line_no)? {
                        let (rule, prefix) = item.split_once(':').ok_or_else(|| {
                            format!("lint.toml:{line_no}: exempt items are `RULE:path-prefix`")
                        })?;
                        cfg.exempt.push((rule.to_string(), prefix.to_string()));
                    }
                }
                _ => return Err(format!("lint.toml:{line_no}: unknown [lint] key `{key}`")),
            },
            Section::Allow => {
                let entry = cfg
                    .allow
                    .last_mut()
                    .expect("section Allow implies an entry");
                match key {
                    "rule" => entry.rule = parse_string(value, line_no)?,
                    "path" => entry.path = parse_string(value, line_no)?,
                    "pattern" => entry.pattern = Some(parse_string(value, line_no)?),
                    "reason" => entry.reason = parse_string(value, line_no)?,
                    _ => {
                        return Err(format!(
                            "lint.toml:{line_no}: unknown [[allow]] key `{key}`"
                        ))
                    }
                }
            }
            Section::None | Section::Other => {
                return Err(format!(
                    "lint.toml:{line_no}: key `{key}` outside a recognized section"
                ))
            }
        }
    }

    if cfg.scan_roots.is_empty() {
        cfg.scan_roots = Config::default_roots().scan_roots;
    }
    if cfg.skip.is_empty() {
        cfg.skip = Config::default_roots().skip;
    }
    for entry in &cfg.allow {
        if entry.rule.is_empty() || entry.reason.is_empty() {
            return Err(format!(
                "lint.toml:{}: [[allow]] entries need both `rule` and `reason`",
                entry.line_no
            ));
        }
    }
    Ok(cfg)
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside a quoted string starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line_no: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("lint.toml:{line_no}: expected a quoted string, got `{value}`"))
}

fn parse_string_array(value: &str, line_no: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{line_no}: expected `[\"a\", \"b\"]`, got `{value}`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, line_no))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
            # workspace lint configuration
            [lint]
            scan_roots = ["crates", "tests"]
            skip = ["/fixtures/"]
            exempt = ["R1:crates/bench/"]

            [[allow]]
            rule = "R2"
            path = "crates/kv/src/btree.rs"
            pattern = "node -> node"
            reason = "hand-over-hand locking, ordered by depth"
        "#;
        let cfg = parse(text).unwrap();
        assert_eq!(cfg.scan_roots, vec!["crates", "tests"]);
        assert_eq!(
            cfg.exempt,
            vec![("R1".to_string(), "crates/bench/".to_string())]
        );
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].rule, "R2");
        assert_eq!(cfg.allow[0].pattern.as_deref(), Some("node -> node"));
        assert!(cfg.is_exempt("R1", "crates/bench/benches/fig5.rs"));
        assert!(!cfg.is_exempt("R1", "crates/core/src/userlib.rs"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let text = "[[allow]]\nrule = \"R1\"\npath = \"x\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(parse("[lint]\nbogus = \"x\"\n").is_err());
    }
}
