//! A light structural view over the token stream: bracket depths,
//! `#[cfg(test)]` / `#[test]` regions, and function spans. This is the
//! shared substrate the per-rule passes walk.

use crate::lexer::{Lexed, Token, TokenKind};

/// Token-index span (half-open) of a `{ ... }` block, inclusive of the
/// braces themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// One `fn` item: its name and the token span of its body block.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    pub body: Span,
    pub line: usize,
}

/// Structural facts about one lexed file.
#[derive(Debug)]
pub struct FileModel {
    pub lexed: Lexed,
    /// Brace/bracket/paren depth *before* each token.
    pub depth: Vec<usize>,
    /// Spans of test-only code (`#[cfg(test)]` items, `#[test]` fns).
    pub test_regions: Vec<Span>,
    /// Every function body, in source order (nested fns both appear).
    pub functions: Vec<Function>,
}

impl FileModel {
    pub fn build(lexed: Lexed) -> FileModel {
        let toks = &lexed.tokens;
        let depth = depths(toks);
        let test_regions = find_test_regions(toks);
        let functions = find_functions(toks);
        FileModel {
            lexed,
            depth,
            test_regions,
            functions,
        }
    }

    /// True when token `idx` lies inside test-only code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(idx))
    }
}

fn depths(toks: &[Token]) -> Vec<usize> {
    let mut out = Vec::with_capacity(toks.len());
    let mut d = 0usize;
    for t in toks {
        match t.kind {
            TokenKind::Open(_) => {
                out.push(d);
                d += 1;
            }
            TokenKind::Close(_) => {
                d = d.saturating_sub(1);
                out.push(d);
            }
            _ => out.push(d),
        }
    }
    out
}

/// Finds the matching close for the open bracket at `open`, returning the
/// index one past it.
pub fn matching_close(toks: &[Token], open: usize) -> usize {
    let mut d = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Open(_) => d += 1,
            TokenKind::Close(_) => {
                d -= 1;
                if d == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Is `toks[i..]` the start of an attribute whose contents mark test code
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[tokio::test]`)?
/// Returns the index one past the closing `]` when it is.
fn test_attr_end(toks: &[Token], i: usize) -> Option<usize> {
    if toks[i].kind != TokenKind::Punct('#') {
        return None;
    }
    let open = i + 1;
    if toks.get(open).map(|t| &t.kind) != Some(&TokenKind::Open('[')) {
        return None;
    }
    let end = matching_close(toks, open);
    // `#[test]` alone, or `test` appearing inside a cfg list, marks test
    // code; `#[cfg(not(test))]` is decidedly NOT test code.
    let mut is_test = false;
    for t in &toks[open..end] {
        if let TokenKind::Ident(s) = &t.kind {
            match s.as_str() {
                "test" => is_test = true,
                "not" => return None,
                _ => {}
            }
        }
    }
    if is_test {
        Some(end)
    } else {
        None
    }
}

fn find_test_regions(toks: &[Token]) -> Vec<Span> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(mut after) = test_attr_end(toks, i) {
            // Skip any further attributes stacked on the same item.
            while after < toks.len() && toks[after].kind == TokenKind::Punct('#') {
                let open = after + 1;
                if toks.get(open).map(|t| &t.kind) == Some(&TokenKind::Open('[')) {
                    after = matching_close(toks, open);
                } else {
                    break;
                }
            }
            // The item's body is the next top-level `{ ... }` before a `;`
            // (a `#[cfg(test)] use ...;` has no body — skip it).
            let mut j = after;
            let mut found = None;
            while j < toks.len() {
                match &toks[j].kind {
                    TokenKind::Open('{') => {
                        found = Some(Span {
                            start: i,
                            end: matching_close(toks, j),
                        });
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    TokenKind::Open(_) => j = matching_close(toks, j),
                    _ => j += 1,
                }
            }
            if let Some(span) = found {
                i = span.end;
                out.push(span);
                continue;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    out
}

fn find_functions(toks: &[Token]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident("fn".into()) {
            if let Some(TokenKind::Ident(name)) = toks.get(i + 1).map(|t| t.kind.clone()) {
                // Find the body `{`, skipping the parameter list, return
                // type and where clause. A `;` first means a trait method
                // declaration — no body.
                let mut j = i + 2;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokenKind::Open('{') => {
                            body = Some(Span {
                                start: j,
                                end: matching_close(toks, j),
                            });
                            break;
                        }
                        TokenKind::Punct(';') => break,
                        TokenKind::Open(_) => j = matching_close(toks, j),
                        _ => j += 1,
                    }
                }
                if let Some(body) = body {
                    out.push(Function {
                        name,
                        body,
                        line: toks[i].line,
                    });
                    // Continue *inside* the body too so nested fns and
                    // closures' locks are attributed (to the outer fn is
                    // fine; nested fns also get their own entry).
                    i += 2;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        FileModel::build(lex(src))
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = r#"
            fn prod() { work(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { check(); }
            }
        "#;
        let m = model(src);
        assert_eq!(m.test_regions.len(), 1);
        let work = m
            .lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Ident("work".into()))
            .unwrap();
        let check = m
            .lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Ident("check".into()))
            .unwrap();
        assert!(!m.in_test_code(work));
        assert!(m.in_test_code(check));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let m = model("#[cfg(not(test))] mod prod { fn f() { x(); } }");
        assert!(m.test_regions.is_empty());
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let m = model("#[test]\n#[ignore]\nfn t() { y(); }");
        assert_eq!(m.test_regions.len(), 1);
    }

    #[test]
    fn functions_found_with_generics_and_where() {
        let src = "fn f<T: Clone>(x: T) -> Vec<T> where T: Send { body() }";
        let m = model(src);
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "f");
    }

    #[test]
    fn trait_method_decl_has_no_body() {
        let m = model("trait T { fn a(&self); fn b(&self) { real(); } }");
        let names: Vec<_> = m.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["b"]);
    }
}
