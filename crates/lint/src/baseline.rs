//! Differential baseline mode.
//!
//! `cargo xtask lint --baseline` compares the current findings against
//! a committed `lint.baseline` file and fails only on *new* findings —
//! the ratchet that lets a rule land before every legacy finding is
//! fixed, without letting regressions in.
//!
//! Fingerprints are **line-independent**: FNV-64 over the rule ID, the
//! file path, the trimmed source context and the edge label (for R2).
//! Adding a comment above a finding must not churn the baseline, so the
//! line number is deliberately excluded; identical findings on
//! identical source lines in one file are disambiguated with an
//! occurrence counter.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Field separator so ("ab","c") != ("a","bc").
    h ^= 0xff;
    h.wrapping_mul(FNV_PRIME)
}

fn fingerprint(d: &Diagnostic, occurrence: usize) -> String {
    let mut h = FNV_OFFSET;
    h = fnv(h, d.rule.as_bytes());
    h = fnv(h, d.path.as_bytes());
    h = fnv(h, d.context.as_bytes());
    h = fnv(h, d.edge.as_deref().unwrap_or("").as_bytes());
    h = fnv(h, occurrence.to_string().as_bytes());
    format!("{h:016x}")
}

/// Fingerprint set of a findings list (occurrence-disambiguated).
pub fn compute(diags: &[Diagnostic]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for d in diags {
        let mut occ = 0usize;
        loop {
            let fp = fingerprint(d, occ);
            if out.insert(fp) {
                break;
            }
            occ += 1;
        }
    }
    out
}

/// Serializes a baseline file: sorted hex fingerprints, one per line,
/// with a header explaining regeneration.
pub fn render(set: &BTreeSet<String>) -> String {
    let mut out = String::from(
        "# bypassd-lint baseline: line-independent fingerprints of known findings.\n\
         # Regenerate with `cargo xtask lint --write-baseline` after fixing or\n\
         # allowlisting findings. CI's `--baseline` mode fails only on entries\n\
         # NOT in this file. Sorted; one FNV-64 hex fingerprint per line.\n",
    );
    for fp in set {
        out.push_str(fp);
        out.push('\n');
    }
    out
}

/// Parses a baseline file (ignores comments and blank lines).
pub fn parse(src: &str) -> BTreeSet<String> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Findings not covered by the baseline (the ones that fail the build
/// in `--baseline` mode), plus baseline entries that no longer match
/// anything (stale — reported, and pruned on `--write-baseline`).
pub fn diff(diags: &[Diagnostic], baseline: &BTreeSet<String>) -> (Vec<Diagnostic>, usize) {
    let mut seen_occ: BTreeSet<String> = BTreeSet::new();
    let mut new = Vec::new();
    let mut matched = 0usize;
    for d in diags {
        let mut occ = 0usize;
        let fp = loop {
            let fp = fingerprint(d, occ);
            if seen_occ.insert(fp.clone()) {
                break fp;
            }
            occ += 1;
        };
        if baseline.contains(&fp) {
            matched += 1;
        } else {
            new.push(d.clone());
        }
    }
    let stale = baseline.len().saturating_sub(matched);
    (new, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, line: usize, context: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: "crates/x/src/lib.rs".to_string(),
            line,
            col: 3,
            end_col: 8,
            message: "m".to_string(),
            context: context.to_string(),
            edge: None,
        }
    }

    #[test]
    fn fingerprints_survive_line_shifts() {
        let a = compute(&[diag("R5", 10, "h.write_u64(k)")]);
        let b = compute(&[diag("R5", 99, "h.write_u64(k)")]);
        assert_eq!(a, b, "line number must not churn the baseline");
    }

    #[test]
    fn duplicate_findings_get_distinct_fingerprints() {
        let set = compute(&[diag("R5", 1, "same"), diag("R5", 2, "same")]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn diff_reports_only_new_findings_and_counts_stale() {
        let old = vec![diag("R5", 1, "old finding")];
        let baseline = compute(&old);
        let now = vec![diag("R5", 3, "old finding"), diag("R6", 4, "brand new")];
        let (new, stale) = diff(&now, &baseline);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "R6");
        assert_eq!(stale, 0);
        let (new2, stale2) = diff(&[], &baseline);
        assert!(new2.is_empty());
        assert_eq!(stale2, 1);
    }

    #[test]
    fn render_parse_roundtrip() {
        let set = compute(&[diag("R1", 1, "Instant::now()"), diag("R2", 2, "edge")]);
        assert_eq!(parse(&render(&set)), set);
    }
}
