//! The `xtask` binary: correctness-tooling entry points.
//!
//! ```text
//! cargo xtask lint          # R1–R4 workspace invariant checks
//! cargo xtask loom          # schedule-perturbation model tests (--cfg loom)
//! cargo xtask miri          # Miri over the invariant test files (needs nightly+miri)
//! cargo xtask verify        # lint + loom + miri (miri skipped when unavailable)
//! ```
//!
//! `lint` exits non-zero when any rule fires; `miri` exits zero with a
//! notice when the Miri component is not installed (CI installs it; the
//! offline dev container cannot), or non-zero with `--strict`.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    let strict = args.iter().any(|a| a == "--strict");
    match args.first().map(String::as_str) {
        Some("lint") | None => lint(verbose),
        Some("loom") => loom(),
        Some("miri") => miri(strict),
        Some("verify") => {
            for step in [lint(verbose), loom(), miri(strict)] {
                if step != ExitCode::SUCCESS {
                    return step;
                }
            }
            eprintln!("xtask verify: all gates passed");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}` (try lint | loom | miri | verify)");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| ".".into()),
        Err(_) => ".".into(),
    }
}

fn lint(verbose: bool) -> ExitCode {
    let root = workspace_root();
    let report = match bypassd_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if verbose {
        for (d, allow_line) in &report.suppressed {
            eprintln!("allowed (lint.toml:{allow_line}): {d}");
        }
    }
    for entry in &report.unused_allows {
        eprintln!(
            "warning: lint.toml:{}: allow entry for {} never matched — remove it?",
            entry.line_no, entry.rule
        );
    }
    for d in &report.active {
        eprintln!("{d}");
    }
    eprintln!(
        "xtask lint: {} files scanned, {} violations, {} allowlisted",
        report.files_scanned,
        report.active.len(),
        report.suppressed.len()
    );
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs the loom model tests with `--cfg loom` appended to RUSTFLAGS.
/// Iteration bounds come from `LOOM_MAX_ITER` (the stand-in's knob).
fn loom() -> ExitCode {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("--cfg loom") {
        rustflags.push_str(" --cfg loom");
    }
    run(
        Command::new(cargo())
            .args([
                "test",
                "-p",
                "bypassd-trace",
                "--test",
                "loom_recorder",
                "-p",
                "bypassd-hw",
                "--test",
                "loom_lru",
                "-p",
                "bypassd-sim",
                "--test",
                "loom_mailbox",
            ])
            .env("RUSTFLAGS", rustflags.trim()),
        "loom tests",
    )
}

/// Runs Miri over the two invariant test files with reduced case counts.
/// Skips (successfully) when the component is missing, unless `--strict`.
fn miri(strict: bool) -> ExitCode {
    let available = Command::new(cargo())
        .args(["miri", "--version"])
        .output()
        .is_ok_and(|o| o.status.success());
    if !available {
        if strict {
            eprintln!("xtask miri: cargo-miri not installed (rustup component add miri)");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask miri: cargo-miri not installed; skipping (CI runs it — \
             `rustup +nightly component add miri`)"
        );
        return ExitCode::SUCCESS;
    }
    run(
        Command::new(cargo())
            .args([
                "miri",
                "test",
                "-p",
                "bypassd-bench",
                "--test",
                "proptest_invariants",
                "--test",
                "model_based",
            ])
            // Interleaving exploration is Miri's job here; keep case
            // counts small so the job stays inside the CI budget.
            .env("PROPTEST_CASES", "4")
            .env("BYPASSD_MODEL_CASES", "2"),
        "miri",
    )
}

fn cargo() -> String {
    std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

fn run(cmd: &mut Command, what: &str) -> ExitCode {
    eprintln!("xtask: running {what}: {cmd:?}");
    match cmd.current_dir(workspace_root()).status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("xtask: {what} failed with {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: could not launch {what}: {e}");
            ExitCode::FAILURE
        }
    }
}
