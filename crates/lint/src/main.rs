//! The `xtask` binary: correctness-tooling entry points.
//!
//! ```text
//! cargo xtask lint                  # R1–R6 workspace invariant checks
//! cargo xtask lint --strict         # also fail on unused allow entries
//! cargo xtask lint --baseline       # fail only on findings not in lint.baseline
//! cargo xtask lint --write-baseline # accept current findings as the baseline
//! cargo xtask lint --sarif out.sarif --json out.json   # machine-readable exports
//! cargo xtask lint --budget-ms 10000  # fail if the analyzer exceeds the budget
//! cargo xtask loom                  # schedule-perturbation model tests (--cfg loom)
//! cargo xtask miri                  # Miri over the invariant test files (needs nightly+miri)
//! cargo xtask verify                # lint --strict + loom + miri (miri skipped when unavailable)
//! ```
//!
//! `lint` exits non-zero when any rule fires (in `--baseline` mode: any
//! *new* finding); `miri` exits zero with a notice when the Miri
//! component is not installed (CI installs it; the offline dev container
//! cannot), or non-zero with `--strict`.

use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    match args.first().map(String::as_str) {
        Some("lint") | None => match LintOpts::parse(&args) {
            Ok(opts) => lint(&opts),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::FAILURE
            }
        },
        Some("loom") => loom(),
        Some("miri") => miri(strict),
        Some("verify") => {
            // The full gate always runs the lint strict (unused allow
            // entries are rot); `--strict` additionally makes a missing
            // Miri component fatal (CI).
            let opts = LintOpts {
                strict: true,
                ..LintOpts::default()
            };
            for step in [lint(&opts), loom(), miri(strict)] {
                if step != ExitCode::SUCCESS {
                    return step;
                }
            }
            eprintln!("xtask verify: all gates passed");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}` (try lint | loom | miri | verify)");
            ExitCode::FAILURE
        }
    }
}

#[derive(Debug, Default)]
struct LintOpts {
    verbose: bool,
    /// Unused allow entries become fatal.
    strict: bool,
    /// Differential mode: fail only on findings absent from `lint.baseline`.
    baseline: bool,
    /// Accept the current findings as the new `lint.baseline`.
    write_baseline: bool,
    sarif: Option<PathBuf>,
    json: Option<PathBuf>,
    /// Fail when the analyzer takes longer than this.
    budget_ms: Option<u64>,
}

impl LintOpts {
    fn parse(args: &[String]) -> Result<LintOpts, String> {
        let mut o = LintOpts::default();
        // Skip the `lint` subcommand word when present (plain
        // `cargo xtask -v` also lands here).
        let skip = usize::from(args.first().map(String::as_str) == Some("lint"));
        let mut args_iter = args.iter().skip(skip);
        while let Some(a) = args_iter.next() {
            match a.as_str() {
                "-v" | "--verbose" => o.verbose = true,
                "--strict" => o.strict = true,
                "--baseline" => o.baseline = true,
                "--write-baseline" => o.write_baseline = true,
                "--sarif" => {
                    o.sarif = Some(PathBuf::from(
                        args_iter.next().ok_or("--sarif needs a path")?,
                    ));
                }
                "--json" => {
                    o.json = Some(PathBuf::from(
                        args_iter.next().ok_or("--json needs a path")?,
                    ));
                }
                "--budget-ms" => {
                    o.budget_ms = Some(
                        args_iter
                            .next()
                            .ok_or("--budget-ms needs a value")?
                            .parse()
                            .map_err(|e| format!("--budget-ms: {e}"))?,
                    );
                }
                other => return Err(format!("unknown lint flag `{other}`")),
            }
        }
        if o.baseline && o.write_baseline {
            return Err("--baseline and --write-baseline are mutually exclusive".to_string());
        }
        Ok(o)
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| ".".into()),
        Err(_) => ".".into(),
    }
}

fn lint(opts: &LintOpts) -> ExitCode {
    let root = workspace_root();
    let started = Instant::now();
    let report = match bypassd_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;

    if opts.verbose {
        for (d, allow_line) in &report.suppressed {
            eprintln!("allowed (lint.toml:{allow_line}): {d}");
        }
    }
    let mut failed = false;
    for entry in &report.unused_allows {
        if opts.strict {
            eprintln!(
                "error: lint.toml:{}: allow entry for {} never matched — remove it \
                 (unused entries are fatal under --strict)",
                entry.line_no, entry.rule
            );
            failed = true;
        } else {
            eprintln!(
                "warning: lint.toml:{}: allow entry for {} never matched — remove it?",
                entry.line_no, entry.rule
            );
        }
    }

    // Machine-readable exports always reflect the full active set, even
    // in baseline mode — the artifact is the complete picture.
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, bypassd_lint::sarif::to_sarif(&report.active)) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: SARIF written to {}", path.display());
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, bypassd_lint::sarif::to_json(&report.active)) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let baseline_path = root.join("lint.baseline");
    if opts.write_baseline {
        let set = bypassd_lint::baseline::compute(&report.active);
        let n = set.len();
        if let Err(e) = std::fs::write(&baseline_path, bypassd_lint::baseline::render(&set)) {
            eprintln!("xtask lint: writing lint.baseline: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: wrote lint.baseline with {n} fingerprint(s)");
    } else if opts.baseline {
        let set = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => bypassd_lint::baseline::parse(&s),
            Err(_) => {
                eprintln!(
                    "xtask lint: no lint.baseline found — treating every finding as new \
                     (generate one with --write-baseline)"
                );
                Default::default()
            }
        };
        let (new, stale) = bypassd_lint::baseline::diff(&report.active, &set);
        if stale > 0 {
            eprintln!(
                "xtask lint: {stale} stale baseline entr{} no longer match — \
                 regenerate with --write-baseline",
                if stale == 1 { "y" } else { "ies" }
            );
        }
        for d in &new {
            eprintln!("{d}");
        }
        eprintln!(
            "xtask lint: {} files scanned, {} findings ({} new vs baseline, {} allowlisted) in {}ms",
            report.files_scanned,
            report.active.len(),
            new.len(),
            report.suppressed.len(),
            elapsed_ms
        );
        if !new.is_empty() {
            failed = true;
        }
        return finish(failed, elapsed_ms, opts);
    } else {
        for d in &report.active {
            eprintln!("{d}");
        }
    }

    eprintln!(
        "xtask lint: {} files scanned, {} violations, {} allowlisted in {}ms",
        report.files_scanned,
        report.active.len(),
        report.suppressed.len(),
        elapsed_ms
    );
    if !opts.write_baseline && !report.ok() {
        failed = true;
    }
    finish(failed, elapsed_ms, opts)
}

fn finish(mut failed: bool, elapsed_ms: u64, opts: &LintOpts) -> ExitCode {
    if let Some(budget) = opts.budget_ms {
        if elapsed_ms > budget {
            eprintln!(
                "xtask lint: analyzer took {elapsed_ms}ms, over the {budget}ms budget — \
                 keep the pass fast enough to run on every PR"
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the loom model tests with `--cfg loom` appended to RUSTFLAGS.
/// Iteration bounds come from `LOOM_MAX_ITER` (the stand-in's knob).
fn loom() -> ExitCode {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("--cfg loom") {
        rustflags.push_str(" --cfg loom");
    }
    run(
        Command::new(cargo())
            .args([
                "test",
                "-p",
                "bypassd-trace",
                "--test",
                "loom_recorder",
                "-p",
                "bypassd-hw",
                "--test",
                "loom_lru",
                "-p",
                "bypassd-sim",
                "--test",
                "loom_mailbox",
            ])
            .env("RUSTFLAGS", rustflags.trim()),
        "loom tests",
    )
}

/// Runs Miri over the two invariant test files with reduced case counts.
/// Skips (successfully) when the component is missing, unless `--strict`.
fn miri(strict: bool) -> ExitCode {
    let available = Command::new(cargo())
        .args(["miri", "--version"])
        .output()
        .is_ok_and(|o| o.status.success());
    if !available {
        if strict {
            eprintln!("xtask miri: cargo-miri not installed (rustup component add miri)");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask miri: cargo-miri not installed; skipping (CI runs it — \
             `rustup +nightly component add miri`)"
        );
        return ExitCode::SUCCESS;
    }
    run(
        Command::new(cargo())
            .args([
                "miri",
                "test",
                "-p",
                "bypassd-bench",
                "--test",
                "proptest_invariants",
                "--test",
                "model_based",
            ])
            // Interleaving exploration is Miri's job here; keep case
            // counts small so the job stays inside the CI budget.
            .env("PROPTEST_CASES", "4")
            .env("BYPASSD_MODEL_CASES", "2"),
        "miri",
    )
}

fn cargo() -> String {
    std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string())
}

fn run(cmd: &mut Command, what: &str) -> ExitCode {
    eprintln!("xtask: running {what}: {cmd:?}");
    match cmd.current_dir(workspace_root()).status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(s) => {
            eprintln!("xtask: {what} failed with {s}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: could not launch {what}: {e}");
            ExitCode::FAILURE
        }
    }
}
