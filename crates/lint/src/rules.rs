//! The token-level rules R1, R3 and R4. (R2, the lock-order analysis,
//! lives in [`crate::lockgraph`] because it is a cross-file pass.)
//!
//! Rule catalog:
//!
//! * **R1 — virtual-time determinism.** The simulator is driven by a
//!   virtual clock; wall-clock reads, sleeps and OS randomness anywhere
//!   outside the benchmark crate would break the bit-identical-trace
//!   contract (DESIGN.md §10). Forbidden: `Instant::now`, `SystemTime`,
//!   `thread::sleep`, `rand::thread_rng`.
//! * **R3 — atomic-ordering justification.** Every relaxed/acquire/
//!   release ordering must carry an `// ordering:` comment (same line or
//!   the two lines above) explaining why that ordering suffices. SeqCst
//!   is exempt: it is the conservative default and needs no defense.
//! * **R4 — lock-poisoning policy.** `.lock()/.read()/.write()` results
//!   must not be `.unwrap()`ed in non-test code. parking_lot-style locks
//!   don't poison (nothing to unwrap); for `std::sync` locks, recover the
//!   guard (`unwrap_or_else(PoisonError::into_inner)`) or `.expect()`
//!   with a message naming the invariant that makes poisoning fatal.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// A lexed file plus its workspace-relative path and raw source lines.
pub struct SourceFile {
    pub path: String,
    pub model: FileModel,
    pub lines: Vec<String>,
}

impl SourceFile {
    pub fn new(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            model: FileModel::build(crate::lexer::lex(src)),
            lines: src.lines().map(str::to_string).collect(),
        }
    }

    pub fn context(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    pub(crate) fn diag(
        &self,
        rule: &'static str,
        line: usize,
        col: usize,
        end_col: usize,
        message: String,
        edge: Option<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.path.clone(),
            line,
            col,
            end_col,
            message,
            context: self.context(line),
            edge,
        }
    }

    /// Is token `i` the ident `name`?
    fn is_ident(&self, i: usize, name: &str) -> bool {
        matches!(
            self.model.lexed.tokens.get(i).map(|t| &t.kind),
            Some(TokenKind::Ident(s)) if s == name
        )
    }

    /// Is `i` the start of a `::` path separator?
    fn is_path_sep(&self, i: usize) -> bool {
        let toks = &self.model.lexed.tokens;
        toks.get(i).map(|t| &t.kind) == Some(&TokenKind::Punct(':'))
            && toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Punct(':'))
    }
}

/// R1: virtual-time determinism. Applies to every scanned file; path
/// exemptions (the benchmark crate measures real wall-clock on purpose)
/// come from `lint.toml` `exempt = ["R1:crates/bench/"]`.
pub fn r1(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.model.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        let hit = match name.as_str() {
            "Instant" if file.is_path_sep(i + 1) && file.is_ident(i + 3, "now") => {
                Some("`Instant::now` reads the wall clock")
            }
            "SystemTime" => Some("`SystemTime` reads the wall clock"),
            "thread" if file.is_path_sep(i + 1) && file.is_ident(i + 3, "sleep") => {
                Some("`thread::sleep` blocks on real time")
            }
            "thread_rng" => Some("`thread_rng` is OS-seeded, nondeterministic randomness"),
            _ => None,
        };
        if let Some(why) = hit {
            out.push(file.diag(
                "R1",
                t.line,
                t.col,
                t.col + t.width(),
                format!(
                    "{why}; simulated timing must come from the virtual clock \
                     (bypassd_sim::time) or the seeded Rng so runs stay reproducible"
                ),
                None,
            ));
        }
    }
    out
}

const JUSTIFIED_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// R3: atomic-ordering justification. Library code only (test regions are
/// skipped); the justification comment must contain `ordering:` on the
/// use's line or one of the two lines above it.
pub fn r3(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.model.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !file.is_ident(i, "Ordering") || !file.is_path_sep(i + 1) {
            continue;
        }
        let Some(TokenKind::Ident(ord)) = toks.get(i + 3).map(|t| &t.kind) else {
            continue;
        };
        if !JUSTIFIED_ORDERINGS.contains(&ord.as_str()) || file.model.in_test_code(i) {
            continue;
        }
        let justified = (t.line.saturating_sub(2)..=t.line)
            .any(|l| file.model.lexed.comment_on_line_contains(l, "ordering:"));
        if !justified {
            out.push(file.diag(
                "R3",
                t.line,
                t.col,
                t.col + t.width(),
                format!(
                    "`Ordering::{ord}` without an `// ordering:` justification comment \
                     (same line or the two lines above); state why this ordering is \
                     sufficient, or use SeqCst"
                ),
                None,
            ));
        }
    }
    out
}

/// R4: no `.unwrap()` on lock results in non-test code.
pub fn r4(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.model.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let TokenKind::Ident(m) = &toks[i].kind else {
            continue;
        };
        if !matches!(m.as_str(), "lock" | "read" | "write") {
            continue;
        }
        // `.lock()` with zero args …
        let dotted = i > 0 && toks[i - 1].kind == TokenKind::Punct('.');
        let zero_args = toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Open('('))
            && toks.get(i + 2).map(|t| &t.kind) == Some(&TokenKind::Close(')'));
        if !dotted || !zero_args {
            continue;
        }
        // … immediately followed by `.unwrap()`.
        let unwrapped = toks.get(i + 3).map(|t| &t.kind) == Some(&TokenKind::Punct('.'))
            && file.is_ident(i + 4, "unwrap");
        if unwrapped && !file.model.in_test_code(i) {
            out.push(file.diag(
                "R4",
                toks[i].line,
                toks[i].col,
                toks[i].col + toks[i].width(),
                format!(
                    "`.{m}().unwrap()` on a lock result in non-test code; recover the \
                     guard with `unwrap_or_else(PoisonError::into_inner)` or `.expect()` \
                     naming the invariant that makes poisoning fatal"
                ),
                None,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: fn(&SourceFile) -> Vec<Diagnostic>, src: &str) -> Vec<Diagnostic> {
        rule(&SourceFile::new("crates/x/src/lib.rs", src))
    }

    #[test]
    fn r1_flags_wall_clock_and_randomness() {
        let src = "fn f() { let t = Instant::now(); thread::sleep(d); let r = thread_rng(); }";
        let hits = run(r1, src);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|d| d.rule == "R1"));
    }

    #[test]
    fn r1_ignores_strings_comments_and_unrelated_idents() {
        let src = r#"
            // Instant::now is discussed here
            fn f() { let s = "Instant::now"; instant(); now(); }
        "#;
        assert!(run(r1, src).is_empty());
    }

    #[test]
    fn r3_requires_ordering_comment() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }";
        assert_eq!(run(r3, bad).len(), 1);
        let good = "fn f(a: &AtomicU64) {\n    // ordering: counter, no sync needed\n    a.load(Ordering::Relaxed);\n}";
        assert!(run(r3, good).is_empty());
        let seqcst = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }";
        assert!(run(r3, seqcst).is_empty());
    }

    #[test]
    fn r3_skips_test_modules_and_cmp_ordering() {
        let test_mod = "#[cfg(test)] mod t { fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } }";
        assert!(run(r3, test_mod).is_empty());
        let cmp = "fn f() -> Ordering { Ordering::Less }";
        assert!(run(r3, cmp).is_empty());
    }

    #[test]
    fn r4_flags_lock_unwrap_outside_tests() {
        let bad = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }";
        assert_eq!(run(r4, bad).len(), 1);
        let test_ok = "#[cfg(test)] mod t { fn f(m: &Mutex<u32>) { m.lock().unwrap(); } }";
        assert!(run(r4, test_ok).is_empty());
        // io::Read::read with args is not a lock acquisition.
        let io = "fn f(r: &mut impl Read) { r.read(&mut buf).unwrap(); }";
        assert!(run(r4, io).is_empty());
    }
}
