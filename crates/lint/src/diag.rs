//! Diagnostics and allowlist filtering.

use crate::config::{AllowEntry, Config};

/// Stable rule catalog: IDs never change once shipped (baselines and
/// SARIF consumers key on them). `(id, name, short description)`.
pub const RULES: [(&str, &str, &str); 6] = [
    (
        "R1",
        "wall-clock-free",
        "No wall clock, sleeps or OS randomness outside the benchmark crate",
    ),
    (
        "R2",
        "lock-order",
        "Lock acquisition order must be acyclic, including across calls",
    ),
    (
        "R3",
        "atomic-ordering-justified",
        "Weak atomic orderings need an `// ordering:` justification comment",
    ),
    (
        "R4",
        "no-lock-unwrap",
        "Lock results must not be `.unwrap()`ed in non-test code",
    ),
    (
        "R5",
        "determinism-taint",
        "Nondeterministic values must not flow into fingerprints, virtual time or deadlines",
    ),
    (
        "R6",
        "fleet-port-contract",
        "Cross-lane channels must use declared `ports` constants, not inline ports",
    ),
];

/// Metadata for a rule ID, for SARIF `rules` descriptors.
pub fn rule_meta(id: &str) -> Option<(&'static str, &'static str)> {
    RULES
        .iter()
        .find(|(r, _, _)| *r == id)
        .map(|(_, name, desc)| (*name, *desc))
}

/// One lint finding, printable as `path:line:col: [RULE] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    /// 1-based byte column of the offending token (0 = unknown, for
    /// whole-line findings).
    pub col: usize,
    /// 1-based byte column one past the token (== `col` when unknown).
    pub end_col: usize,
    pub message: String,
    /// The offending source line (trimmed), used for allowlist `pattern`
    /// matching and shown under the diagnostic.
    pub context: String,
    /// For R2: the `from -> to` edge label, matched by allow `pattern`.
    pub edge: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            writeln!(
                f,
                "{}:{}:{}: [{}] {}",
                self.path, self.line, self.col, self.rule, self.message
            )?;
        } else {
            writeln!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )?;
        }
        if !self.context.is_empty() {
            write!(f, "    | {}", self.context)?;
        }
        Ok(())
    }
}

/// Result of filtering raw diagnostics through the allowlist.
#[derive(Debug, Default)]
pub struct Filtered {
    /// Diagnostics that survived (these fail the build).
    pub active: Vec<Diagnostic>,
    /// Diagnostics suppressed by an allow entry (reported with `-v`).
    pub suppressed: Vec<(Diagnostic, usize)>,
    /// Allow entries (by lint.toml line) that never matched anything.
    pub unused_allows: Vec<AllowEntry>,
}

/// Does `entry` suppress `d`?
fn matches(entry: &AllowEntry, d: &Diagnostic) -> bool {
    if entry.rule != d.rule {
        return false;
    }
    if !entry.path.is_empty() && !d.path.starts_with(entry.path.as_str()) {
        return false;
    }
    match (&entry.pattern, &d.edge) {
        (Some(p), Some(edge)) => edge.contains(p.as_str()),
        (Some(p), None) => d.context.contains(p.as_str()),
        (None, _) => true,
    }
}

/// Splits `diags` into active and allowlisted sets.
pub fn filter(diags: Vec<Diagnostic>, cfg: &Config) -> Filtered {
    let mut out = Filtered::default();
    let mut used = vec![false; cfg.allow.len()];
    for d in diags {
        match cfg.allow.iter().position(|e| matches(e, &d)) {
            Some(i) => {
                used[i] = true;
                out.suppressed.push((d, cfg.allow[i].line_no));
            }
            None => out.active.push(d),
        }
    }
    out.unused_allows = cfg
        .allow
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, context: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            col: 0,
            end_col: 0,
            message: "m".to_string(),
            context: context.to_string(),
            edge: None,
        }
    }

    #[test]
    fn allow_filters_by_rule_path_and_pattern() {
        let cfg = crate::config::parse(
            r#"
            [[allow]]
            rule = "R1"
            path = "crates/sim"
            pattern = "Instant"
            reason = "test"
            "#,
        )
        .unwrap();
        let diags = vec![
            diag("R1", "crates/sim/src/a.rs", "Instant::now()"),
            diag("R1", "crates/core/src/b.rs", "Instant::now()"),
            diag("R3", "crates/sim/src/a.rs", "Instant::now()"),
        ];
        let f = filter(diags, &cfg);
        assert_eq!(f.suppressed.len(), 1);
        assert_eq!(f.active.len(), 2);
        assert!(f.unused_allows.is_empty());
    }

    #[test]
    fn unused_allows_are_reported() {
        let cfg =
            crate::config::parse("[[allow]]\nrule = \"R4\"\npath = \"nowhere\"\nreason = \"r\"\n")
                .unwrap();
        let f = filter(vec![], &cfg);
        assert_eq!(f.unused_allows.len(), 1);
    }

    #[test]
    fn every_rule_has_stable_metadata() {
        for id in ["R1", "R2", "R3", "R4", "R5", "R6"] {
            assert!(rule_meta(id).is_some(), "missing metadata for {id}");
        }
        assert_eq!(rule_meta("R5").unwrap().0, "determinism-taint");
    }

    #[test]
    fn display_includes_column_when_known() {
        let mut d = diag("R5", "crates/x/src/lib.rs", "ctx");
        d.col = 9;
        d.end_col = 12;
        assert!(d.to_string().starts_with("crates/x/src/lib.rs:1:9: [R5]"));
    }
}
