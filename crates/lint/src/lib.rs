//! `bypassd-lint`: the workspace invariant checker behind
//! `cargo xtask lint`.
//!
//! BypassD's safety story rests on properties the compiler cannot see:
//! the simulator's virtual clock must stay deterministic (bit-identical
//! traces), the lock-light hot paths must be deadlock-free, and every
//! weakened atomic ordering must be justified. This crate enforces them
//! as machine-checked rules with `file:line` diagnostics:
//!
//! | rule | property | scope |
//! |------|----------|-------|
//! | R1 | virtual-time determinism (no wall clock / OS randomness) | all scanned files, minus `lint.toml` exemptions |
//! | R2 | lock-order discipline (no acquisition-graph cycles) | `crates/*/src` |
//! | R3 | atomic-ordering justification (`// ordering:` comments) | `crates/*/src`, non-test code |
//! | R4 | no `.unwrap()` on lock results (poisoning policy) | `crates/*/src`, non-test code |
//!
//! Exemptions live in `lint.toml` at the workspace root; every entry
//! carries a mandatory `reason`, so the allowlist doubles as the audit
//! log of every place the rules are deliberately bent. Unused entries
//! are reported so the file cannot rot.
//!
//! `syn` is unavailable offline, so the pass runs on a purpose-built
//! lexer ([`lexer`]) plus a light structural model ([`model`]) — see
//! DESIGN.md §11 for the trade-offs.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod lockgraph;
pub mod model;
pub mod rules;

use std::path::{Path, PathBuf};

use config::Config;
use diag::Diagnostic;
use lockgraph::LockGraph;
use rules::SourceFile;

/// Outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that fail the run.
    pub active: Vec<Diagnostic>,
    /// Diagnostics suppressed by `lint.toml` (entry line attached).
    pub suppressed: Vec<(Diagnostic, usize)>,
    /// Allow entries that never matched anything.
    pub unused_allows: Vec<config::AllowEntry>,
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn ok(&self) -> bool {
        self.active.is_empty()
    }
}

/// Lints the workspace rooted at `root` (the directory holding
/// `lint.toml` and `Cargo.toml`).
pub fn run_workspace(root: &Path) -> Result<LintReport, String> {
    let cfg = Config::load(root)?;
    let files = collect_files(root, &cfg)?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut graph = LockGraph::default();
    let mut n = 0;

    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        let file = SourceFile::new(rel, &text);
        n += 1;

        if !cfg.is_exempt("R1", rel) {
            diags.extend(rules::r1(&file));
        }
        if let Some(crate_name) = library_crate(rel) {
            if !cfg.is_exempt("R2", rel) {
                graph.scan_file(&file, crate_name);
            }
            if !cfg.is_exempt("R3", rel) {
                diags.extend(rules::r3(&file));
            }
            if !cfg.is_exempt("R4", rel) {
                diags.extend(rules::r4(&file));
            }
        }
    }

    // R2: apply edge allowlist entries to the graph, then look for cycles.
    let mut r2_used = vec![false; cfg.allow.len()];
    for (i, entry) in cfg.allow.iter().enumerate() {
        if entry.rule == "R2" {
            if let Some(pattern) = &entry.pattern {
                r2_used[i] = graph.allow_edge(pattern, &entry.path);
            }
        }
    }
    diags.extend(graph.cycles());

    let mut filtered = diag::filter(diags, &cfg);
    filtered
        .unused_allows
        .retain(|e| !cfg.allow.iter().zip(&r2_used).any(|(o, u)| *u && o == e));

    Ok(LintReport {
        active: filtered.active,
        suppressed: filtered.suppressed,
        unused_allows: filtered.unused_allows,
        files_scanned: n,
    })
}

/// `crates/<name>/src/...` → `<name>` with any `bypassd-` prefix dropped;
/// everything else (tests, benches, examples) is not library code.
fn library_crate(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    if tail.starts_with("src/") {
        Some(name)
    } else {
        None
    }
}

/// All `.rs` files under the configured scan roots, workspace-relative
/// with `/` separators, sorted for deterministic output.
fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for sr in &cfg.scan_roots {
        let dir = root.join(sr);
        if dir.is_dir() {
            visit(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path: PathBuf = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg
            .skip
            .iter()
            .any(|s| format!("/{rel}/").contains(s.as_str()))
        {
            continue;
        }
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            visit(&path, root, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_crate_classifies_paths() {
        assert_eq!(library_crate("crates/qos/src/arbiter.rs"), Some("qos"));
        assert_eq!(library_crate("crates/qos/tests/t.rs"), None);
        assert_eq!(library_crate("tests/end_to_end.rs"), None);
        assert_eq!(library_crate("examples/quickstart.rs"), None);
        assert_eq!(library_crate("crates/bench/benches/fig5.rs"), None);
    }
}
