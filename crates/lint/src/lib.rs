//! `bypassd-lint`: the workspace invariant checker behind
//! `cargo xtask lint`.
//!
//! BypassD's safety story rests on properties the compiler cannot see:
//! the simulator's virtual clock must stay deterministic (bit-identical
//! traces), the lock-light hot paths must be deadlock-free, and every
//! weakened atomic ordering must be justified. This crate enforces them
//! as machine-checked rules with `file:line:col` diagnostics:
//!
//! | rule | property | scope |
//! |------|----------|-------|
//! | R1 | virtual-time determinism (no wall clock / OS randomness) | all scanned files, minus `lint.toml` exemptions |
//! | R2 | lock-order discipline (no acquisition-graph cycles, incl. across calls) | `crates/*/src` |
//! | R3 | atomic-ordering justification (`// ordering:` comments) | `crates/*/src`, non-test code |
//! | R4 | no `.unwrap()` on lock results (poisoning policy) | `crates/*/src`, non-test code |
//! | R5 | determinism taint (no nondeterministic value reaches a fingerprint/deadline sink) | `crates/*/src`, interprocedural |
//! | R6 | fleet port contract (channels use declared `ports` constants) | `crates/*/src`, non-test code |
//!
//! R2 and R5 are *interprocedural*: all scanned library sources are
//! parsed once into a [`syntax`] model, joined by a workspace
//! [`callgraph`], and analyzed with per-function summaries propagated
//! to fixpoint — a wall-clock read three calls away from a
//! `Simulation::spawn_at` deadline is reported at the spawn site with
//! the full chain.
//!
//! Exemptions live in `lint.toml` at the workspace root; every entry
//! carries a mandatory `reason`, so the allowlist doubles as the audit
//! log of every place the rules are deliberately bent. Unused entries
//! are reported (fatal under `--strict`) so the file cannot rot.
//! `lint.baseline` + `--baseline` give CI a differential mode that
//! fails only on findings new since the committed baseline; [`sarif`]
//! renders the findings machine-readably for artifact upload.
//!
//! `syn` is unavailable offline, so the pass runs on a purpose-built
//! lexer ([`lexer`]) plus a light structural model ([`model`]) — see
//! DESIGN.md §11 and §16 for the trade-offs.

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod lockgraph;
pub mod model;
pub mod portcheck;
pub mod rules;
pub mod sarif;
pub mod syntax;
pub mod taint;

use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use config::Config;
use diag::Diagnostic;
use lockgraph::LockGraph;
use rules::SourceFile;

/// Outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that fail the run.
    pub active: Vec<Diagnostic>,
    /// Diagnostics suppressed by `lint.toml` (entry line attached).
    pub suppressed: Vec<(Diagnostic, usize)>,
    /// Allow entries that never matched anything.
    pub unused_allows: Vec<config::AllowEntry>,
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn ok(&self) -> bool {
        self.active.is_empty()
    }
}

/// Lints the workspace rooted at `root` (the directory holding
/// `lint.toml` and `Cargo.toml`).
pub fn run_workspace(root: &Path) -> Result<LintReport, String> {
    let cfg = Config::load(root)?;
    let rels = collect_files(root, &cfg)?;

    // Parse every file once; the interprocedural passes share the
    // models through the call graph.
    let mut files: Vec<SourceFile> = Vec::with_capacity(rels.len());
    let mut library: Vec<Option<String>> = Vec::with_capacity(rels.len());
    for rel in &rels {
        let text = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        files.push(SourceFile::new(rel, &text));
        library.push(library_crate(rel).map(str::to_string));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();

    // Per-file rules.
    for (i, file) in files.iter().enumerate() {
        if !cfg.is_exempt("R1", &file.path) {
            diags.extend(rules::r1(file));
        }
        if library[i].is_some() {
            if !cfg.is_exempt("R3", &file.path) {
                diags.extend(rules::r3(file));
            }
            if !cfg.is_exempt("R4", &file.path) {
                diags.extend(rules::r4(file));
            }
            if !cfg.is_exempt("R6", &file.path) {
                diags.extend(portcheck::r6(file));
            }
        }
    }

    // Interprocedural passes share one call graph.
    let graph = CallGraph::build(&files, &library);

    // R2: local guard tracking plus call-graph extension, then the
    // edge allowlist, then cycle detection.
    let mut lock = LockGraph::default();
    for (i, file) in files.iter().enumerate() {
        if let Some(crate_name) = &library[i] {
            if !cfg.is_exempt("R2", &file.path) {
                lock.scan_file(file, crate_name);
            }
        }
    }
    lock.extend_with_calls(&files, &graph);
    let mut r2_used = vec![false; cfg.allow.len()];
    for (i, entry) in cfg.allow.iter().enumerate() {
        if entry.rule == "R2" {
            if let Some(pattern) = &entry.pattern {
                r2_used[i] = lock.allow_edge(pattern, &entry.path);
            }
        }
    }
    diags.extend(lock.cycles());

    // R5: determinism taint. Exempt files still contribute summaries
    // (a bench helper returning wall-clock time must taint its
    // callers); only their own sink reports are suppressed.
    diags.extend(
        taint::TaintPass::new(&files, &graph)
            .run(|fi| library[fi].is_some() && !cfg.is_exempt("R5", &files[fi].path)),
    );

    let mut filtered = diag::filter(diags, &cfg);
    filtered
        .unused_allows
        .retain(|e| !cfg.allow.iter().zip(&r2_used).any(|(o, u)| *u && o == e));

    Ok(LintReport {
        active: filtered.active,
        suppressed: filtered.suppressed,
        unused_allows: filtered.unused_allows,
        files_scanned: files.len(),
    })
}

/// `crates/<name>/src/...` → `<name>`; everything else (tests, benches,
/// examples) is not library code.
fn library_crate(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    if tail.starts_with("src/") {
        Some(name)
    } else {
        None
    }
}

/// All `.rs` files under the configured scan roots, workspace-relative
/// with `/` separators, sorted for deterministic output.
fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for sr in &cfg.scan_roots {
        let dir = root.join(sr);
        if dir.is_dir() {
            visit(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path: PathBuf = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg
            .skip
            .iter()
            .any(|s| format!("/{rel}/").contains(s.as_str()))
        {
            continue;
        }
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            visit(&path, root, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_crate_classifies_paths() {
        assert_eq!(library_crate("crates/qos/src/arbiter.rs"), Some("qos"));
        assert_eq!(library_crate("crates/qos/tests/t.rs"), None);
        assert_eq!(library_crate("tests/end_to_end.rs"), None);
        assert_eq!(library_crate("examples/quickstart.rs"), None);
        assert_eq!(library_crate("crates/bench/benches/fig5.rs"), None);
    }
}
