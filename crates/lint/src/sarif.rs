//! Machine-readable exporters: SARIF 2.1.0 and a plain JSON findings
//! array. Hand-rolled (the analyzer is dependency-free by design); the
//! shapes are small enough that string assembly with proper escaping is
//! simpler than a serializer.
//!
//! Stability contract: rule IDs (`R1`..`R6`) and the field names
//! emitted here are part of the tool's interface — CI artifact
//! consumers and the baseline file key on them. Never renumber.

use crate::diag::{Diagnostic, RULES};

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a SARIF 2.1.0 log with one run and one result
/// per finding.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut rules = String::new();
    for (i, (id, name, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!(
            r#"{{"id":"{}","name":"{}","shortDescription":{{"text":"{}"}}}}"#,
            esc(id),
            esc(name),
            esc(desc)
        ));
    }

    let mut results = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let rule_index = RULES
            .iter()
            .position(|(id, _, _)| *id == d.rule)
            .unwrap_or(0);
        let mut region = format!(r#""startLine":{}"#, d.line.max(1));
        if d.col > 0 {
            region.push_str(&format!(
                r#","startColumn":{},"endColumn":{}"#,
                d.col,
                d.end_col.max(d.col)
            ));
        }
        results.push_str(&format!(
            concat!(
                r#"{{"ruleId":"{}","ruleIndex":{},"level":"error","#,
                r#""message":{{"text":"{}"}},"#,
                r#""locations":[{{"physicalLocation":{{"#,
                r#""artifactLocation":{{"uri":"{}"}},"#,
                r#""region":{{{}}}}}}}]}}"#
            ),
            esc(d.rule),
            rule_index,
            esc(&d.message),
            esc(&d.path),
            region
        ));
    }

    format!(
        concat!(
            r#"{{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","#,
            r#""version":"2.1.0","runs":[{{"tool":{{"driver":{{"#,
            r#""name":"bypassd-lint","version":"2.0.0","#,
            r#""informationUri":"https://example.invalid/bypassd-lint","#,
            r#""rules":[{}]}}}},"results":[{}]}}]}}"#
        ),
        rules, results
    )
}

/// Renders findings as a flat JSON array (one object per finding),
/// the `--json` output for scripting.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            r#"{{"rule":"{}","path":"{}","line":{},"col":{},"end_col":{},"message":"{}","context":"{}"{}}}"#,
            esc(d.rule),
            esc(&d.path),
            d.line,
            d.col,
            d.end_col,
            esc(&d.message),
            esc(&d.context),
            match &d.edge {
                Some(e) => format!(r#","edge":"{}""#, esc(e)),
                None => String::new(),
            }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "R5",
            path: "crates/x/src/lib.rs".to_string(),
            line: 4,
            col: 9,
            end_col: 18,
            message: "taint \"flows\"\ninto sink".to_string(),
            context: "h.write_u64(k)".to_string(),
            edge: None,
        }
    }

    #[test]
    fn sarif_has_schema_rules_and_one_result_per_finding() {
        let s = to_sarif(&[diag(), diag()]);
        assert!(s.contains(r#""version":"2.1.0""#));
        assert!(s.contains(r#""name":"bypassd-lint""#));
        // All six stable rule descriptors present.
        for id in ["R1", "R2", "R3", "R4", "R5", "R6"] {
            assert!(s.contains(&format!(r#""id":"{id}""#)), "{id} missing");
        }
        assert_eq!(s.matches(r#""ruleId":"R5""#).count(), 2);
        assert!(s.contains(r#""startLine":4,"startColumn":9,"endColumn":18"#));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let j = to_json(&[diag()]);
        assert!(j.contains(r#"taint \"flows\"\ninto sink"#), "{j}");
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_inputs_are_valid_documents() {
        assert!(to_sarif(&[]).contains(r#""results":[]"#));
        assert_eq!(to_json(&[]), "[]");
    }
}
