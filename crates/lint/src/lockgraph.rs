//! R2 — lock-order discipline.
//!
//! A deadlock needs a cycle in the "lock A held while acquiring lock B"
//! relation. This pass extracts that relation statically:
//!
//! 1. Within every function body, find blocking acquisitions — zero-arg
//!    `.lock()`, `.read()`, `.write()` method calls (`try_lock` can't
//!    block and is ignored).
//! 2. Name each lock by `crate::receiver` where `receiver` is the last
//!    field/variable identifier of the receiver expression
//!    (`self.dev_rings[s].lock()` → `trace::dev_rings`). This collapses
//!    instances into classes — exactly what a lock *hierarchy* wants.
//! 3. Model guard lifetimes: a `let`-bound guard lives to the end of its
//!    enclosing block (or an explicit `drop(g)`); a temporary guard lives
//!    to the end of its statement.
//! 4. Every acquisition performed while another guard is live adds a
//!    directed edge. Cycles (including self-loops: re-acquiring the same
//!    lock class while holding it) across the whole workspace graph are
//!    reported with one example site per edge.
//!
//! **v2 — interprocedural extension.** Per-function pairs miss the
//! classic split deadlock: `flush()` takes `ring` then calls
//! `account()`, which takes `stats` — no single function shows the
//! `ring -> stats` edge. With the workspace call graph we compute each
//! function's *transitive may-acquire set* to fixpoint, and every call
//! made while a guard is held extends the order graph with
//! `held × may_acquire(callee)` edges ([`LockGraph::extend_with_calls`]).
//! Name-keyed call resolution over-approximates, so some of these edges
//! are spurious — the allowlist documents those with reasons.
//!
//! The receiver-name heuristic can produce false positives (two distinct
//! mutexes that happen to share a field name, hand-over-hand traversals
//! ordered by some other key). Those are what `lint.toml` allow entries
//! with `pattern = "from -> to"` are for — each one documents *why* the
//! apparent inversion is safe, which is the auditable artifact we want.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::SourceFile;

/// Where one lock-order edge was observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeSite {
    pub path: String,
    pub line: usize,
    pub func: String,
}

/// Per-function lock facts feeding the interprocedural pass, keyed by
/// `(file path, body start token)` — the same identity the call graph
/// uses for its nodes.
#[derive(Debug, Default)]
pub struct FnLockInfo {
    /// Lock classes this function acquires directly (non-test code),
    /// with one example site each.
    pub local: BTreeMap<String, EdgeSite>,
    /// Call sites executed while guards are held:
    /// `(callee-name token index, held lock classes)`.
    pub held_calls: Vec<(usize, Vec<String>)>,
}

/// The workspace-wide lock-acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `(held, acquired)` → example sites.
    pub edges: BTreeMap<(String, String), Vec<EdgeSite>>,
    /// Per-function facts for [`Self::extend_with_calls`].
    fn_info: BTreeMap<(String, usize), FnLockInfo>,
}

#[derive(Debug)]
struct Guard {
    key: String,
    /// Binding name when `let`-bound (releasable via `drop(name)`).
    binding: Option<String>,
    /// Bracket depth at the acquisition token.
    depth: usize,
    /// Temporary guards die at the end of their statement.
    temporary: bool,
}

impl LockGraph {
    /// Scans `file` (library sources) and records lock-order edges.
    pub fn scan_file(&mut self, file: &SourceFile, crate_name: &str) {
        for func in &file.model.functions {
            self.scan_function(file, crate_name, func);
        }
    }

    fn scan_function(
        &mut self,
        file: &SourceFile,
        crate_name: &str,
        func: &crate::model::Function,
    ) {
        let toks = &file.model.lexed.tokens;
        let depth = &file.model.depth;
        let mut held: Vec<Guard> = Vec::new();
        let mut info = FnLockInfo::default();
        // Depths of `if`/`while` conditions currently being scanned:
        // their temporaries drop before the block runs (unlike `match`
        // scrutinees and — pre-2024 — `if let`, which keep theirs).
        let mut cond_depths: Vec<usize> = Vec::new();

        for i in func.body.start..func.body.end.min(toks.len()) {
            match &toks[i].kind {
                TokenKind::Ident(kw) if kw == "if" || kw == "while" => {
                    let is_let = matches!(toks.get(i + 1).map(|t| &t.kind),
                        Some(TokenKind::Ident(next)) if next == "let");
                    if !is_let {
                        cond_depths.push(depth[i]);
                    }
                }
                TokenKind::Open('{') if cond_depths.last() == Some(&depth[i]) => {
                    // End of an `if`/`while` condition: its temporary
                    // guards are dropped before the block executes.
                    let d = depth[i];
                    cond_depths.pop();
                    held.retain(|g| !(g.temporary && g.depth >= d));
                }
                TokenKind::Punct(';') => {
                    let d = depth[i];
                    held.retain(|g| !(g.temporary && g.depth >= d));
                }
                TokenKind::Close('}') => {
                    // depth[i] is the depth of the *enclosing* block; any
                    // guard born strictly deeper is dead now.
                    let d = depth[i];
                    held.retain(|g| g.depth <= d);
                }
                // `drop(g)` / `mem::drop(g)` releases a named guard.
                TokenKind::Ident(name)
                    if name == "drop"
                        && toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Open('('))
                        && toks.get(i + 3).map(|t| &t.kind) == Some(&TokenKind::Close(')')) =>
                {
                    if let Some(TokenKind::Ident(arg)) = toks.get(i + 2).map(|t| &t.kind) {
                        held.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                    }
                }
                TokenKind::Ident(m) if matches!(m.as_str(), "lock" | "read" | "write") => {
                    if !is_blocking_acquisition(toks, i) || file.model.in_test_code(i) {
                        record_held_call(toks, i, &held, &mut info);
                        continue;
                    }
                    let recv = receiver_name(toks, i);
                    let key = format!("{crate_name}::{recv}");
                    let site = EdgeSite {
                        path: file.path.clone(),
                        line: toks[i].line,
                        func: func.name.clone(),
                    };
                    info.local
                        .entry(key.clone())
                        .or_insert_with(|| site.clone());
                    for g in &held {
                        self.edges
                            .entry((g.key.clone(), key.clone()))
                            .or_default()
                            .push(site.clone());
                    }
                    // A `let` binds the *guard* only when the chain ends
                    // right after the call (`let g = x.lock();`); with
                    // further chaining (`let v = x.lock().get(k);`) the
                    // guard is a temporary that dies at the statement end,
                    // and `let _ = ...` drops immediately.
                    let chain_ends =
                        toks.get(i + 3).map(|t| &t.kind) == Some(&TokenKind::Punct(';'));
                    let binding = if chain_ends {
                        let_binding(toks, i).filter(|b| b != "_")
                    } else {
                        None
                    };
                    held.push(Guard {
                        key,
                        temporary: binding.is_none(),
                        binding,
                        depth: depth[i],
                    });
                }
                TokenKind::Ident(_) => record_held_call(toks, i, &held, &mut info),
                _ => {}
            }
        }
        self.fn_info
            .insert((file.path.clone(), func.body.start), info);
    }

    /// Extends the edge set interprocedurally: computes each function's
    /// transitive may-acquire set over the call graph, then adds
    /// `held × may_acquire(callee)` edges for every call made while
    /// guards are live. `files` must be the same list the graph was
    /// built from (node identity is `(path, body start)`).
    pub fn extend_with_calls(&mut self, files: &[SourceFile], graph: &CallGraph) {
        // Transitive may-acquire per call-graph node, seeded from the
        // per-function scans.
        let mut trans: Vec<BTreeMap<String, EdgeSite>> = graph
            .fns
            .iter()
            .map(|node| {
                let key = (files[node.file].path.clone(), node.body.start);
                self.fn_info
                    .get(&key)
                    .map(|i| i.local.clone())
                    .unwrap_or_default()
            })
            .collect();

        // Fixpoint: merge callee sets into callers (bounded like the
        // call-graph driver; cycles converge because sets only grow).
        for _ in 0..64 {
            let mut changed = false;
            for caller in 0..graph.fns.len() {
                for ci in 0..graph.fns[caller].calls.len() {
                    for &callee in graph.resolve(&graph.fns[caller].calls[ci]) {
                        if callee == caller {
                            continue;
                        }
                        let merged: Vec<(String, EdgeSite)> = trans[callee]
                            .iter()
                            .filter(|(k, _)| !trans[caller].contains_key(*k))
                            .map(|(k, s)| (k.clone(), s.clone()))
                            .collect();
                        if !merged.is_empty() {
                            trans[caller].extend(merged);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Edges: a guard held across a call orders before everything the
        // callee may transitively acquire. The example site is the call
        // itself — that is where the hold must be shortened.
        for (caller, node) in graph.fns.iter().enumerate() {
            if node.in_test {
                continue;
            }
            let file = &files[node.file];
            let key = (file.path.clone(), node.body.start);
            let Some(info) = self.fn_info.get(&key) else {
                continue;
            };
            let mut new_edges: Vec<((String, String), EdgeSite)> = Vec::new();
            for (call_idx, held) in &info.held_calls {
                for call in &node.calls {
                    if call.idx != *call_idx {
                        continue;
                    }
                    for &callee in graph.resolve(call) {
                        if callee == caller {
                            continue;
                        }
                        for (acquired, seed) in &trans[callee] {
                            if std::env::var("LINT_DEBUG_EDGES").is_ok() {
                                eprintln!(
                                    "edge {}:{} {} --call {}--> {} ({}:{}) acquires {} (seeded at {}:{} in {})",
                                    file.path, call.line, node.name, call.name,
                                    graph.fns[callee].name, files[graph.fns[callee].file].path,
                                    graph.fns[callee].line, acquired, seed.path, seed.line, seed.func,
                                );
                            }
                            let site = EdgeSite {
                                path: file.path.clone(),
                                line: call.line,
                                func: format!("{} (via call to {})", node.name, call.name),
                            };
                            for h in held {
                                new_edges.push(((h.clone(), acquired.clone()), site.clone()));
                            }
                        }
                    }
                }
            }
            for (edge, site) in new_edges {
                self.edges.entry(edge).or_default().push(site);
            }
        }
    }

    /// Removes edges an allow entry covers; `pattern` matches the
    /// `from -> to` label and `path` (when set) must prefix a site path.
    pub fn allow_edge(&mut self, pattern: &str, path: &str) -> bool {
        let before = self.edges.len();
        self.edges.retain(|(from, to), sites| {
            let label = format!("{from} -> {to}");
            !(label.contains(pattern)
                && (path.is_empty() || sites.iter().any(|s| s.path.starts_with(path))))
        });
        self.edges.len() != before
    }

    /// Reports every cycle in the graph as diagnostics.
    pub fn cycles(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let nodes: BTreeSet<&String> = self.edges.keys().flat_map(|(a, b)| [a, b]).collect();
        let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            adj.entry(a).or_default().push(b);
        }

        // Self-loops first (a cycle of length 1).
        for ((a, b), sites) in &self.edges {
            if a == b {
                out.push(self.cycle_diag(&[a.clone(), b.clone()], sites));
            }
        }

        // Longer cycles: DFS from each node, smallest-node-first so each
        // cycle is reported once (only when rooted at its minimum node).
        for &root in &nodes {
            let mut stack = vec![(root, vec![root.clone()])];
            let mut visited = BTreeSet::new();
            while let Some((node, trail)) = stack.pop() {
                for &next in adj.get(node).map(Vec::as_slice).unwrap_or_default() {
                    if next == root && trail.len() > 1 {
                        if trail.iter().min() == Some(root) {
                            let mut cyc = trail.clone();
                            cyc.push(root.clone());
                            let sites = &self.edges[&(node.clone(), root.clone())];
                            out.push(self.cycle_diag(&cyc, sites));
                        }
                    } else if next > root && visited.insert(next) {
                        let mut t = trail.clone();
                        t.push(next.clone());
                        stack.push((next, t));
                    }
                }
            }
        }
        out
    }

    fn cycle_diag(&self, cycle: &[String], sites: &[EdgeSite]) -> Diagnostic {
        let site = sites.first().cloned().unwrap_or(EdgeSite {
            path: String::new(),
            line: 0,
            func: String::new(),
        });
        let chain = cycle.join(" -> ");
        let mut detail = String::new();
        for w in cycle.windows(2) {
            if let Some(ss) = self.edges.get(&(w[0].clone(), w[1].clone())) {
                let s = &ss[0];
                detail.push_str(&format!(
                    "\n    | {} -> {} at {}:{} (fn {})",
                    w[0], w[1], s.path, s.line, s.func
                ));
            }
        }
        Diagnostic {
            rule: "R2",
            path: site.path,
            line: site.line,
            col: 0,
            end_col: 0,
            message: format!(
                "lock-order cycle: {chain}; a thread holding one side while another \
                 holds the other deadlocks. Fix the acquisition order or allowlist \
                 the edge with a reason documenting the real ordering key.{detail}"
            ),
            context: format!("in fn {}", site.func),
            edge: Some(chain),
        }
    }
}

/// Records `toks[i]` as a call site made under `held` guards when it
/// looks like one (`name(`), feeding the interprocedural pass.
fn record_held_call(toks: &[crate::lexer::Token], i: usize, held: &[Guard], info: &mut FnLockInfo) {
    if held.is_empty() {
        return;
    }
    if toks.get(i + 1).map(|t| &t.kind) != Some(&TokenKind::Open('(')) {
        return;
    }
    info.held_calls
        .push((i, held.iter().map(|g| g.key.clone()).collect()));
}

/// `.lock()` / `.read()` / `.write()` with zero args, called as a method.
fn is_blocking_acquisition(toks: &[crate::lexer::Token], i: usize) -> bool {
    i > 0
        && toks[i - 1].kind == TokenKind::Punct('.')
        && toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Open('('))
        && toks.get(i + 2).map(|t| &t.kind) == Some(&TokenKind::Close(')'))
}

/// Walks backwards from the `.` before the method name to find the last
/// identifier of the receiver expression, skipping index/call groups:
/// `self.dev_rings[shard]` → `dev_rings`, `ring` → `ring`.
pub(crate) fn receiver_name(toks: &[crate::lexer::Token], method_idx: usize) -> String {
    let mut j = method_idx as isize - 2;
    while j >= 0 {
        match &toks[j as usize].kind {
            TokenKind::Close(c) => {
                // Skip back over the bracketed group.
                let open = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                let mut d = 1;
                j -= 1;
                while j >= 0 && d > 0 {
                    match &toks[j as usize].kind {
                        TokenKind::Close(_) => d += 1,
                        TokenKind::Open(k) if *k == open && d == 1 => d = 0,
                        TokenKind::Open(_) => d -= 1,
                        _ => {}
                    }
                    if d > 0 {
                        j -= 1;
                    }
                }
                j -= 1;
            }
            TokenKind::Ident(name) => return name.clone(),
            TokenKind::Punct('.') => j -= 1,
            _ => break,
        }
    }
    "<expr>".to_string()
}

/// If the statement containing the acquisition starts with
/// `let [mut] NAME =`, returns `NAME` (the guard binding).
fn let_binding(toks: &[crate::lexer::Token], method_idx: usize) -> Option<String> {
    // Walk back to the statement/expression boundary.
    let mut j = method_idx as isize - 1;
    let mut depth = 0;
    while j >= 0 {
        match &toks[j as usize].kind {
            TokenKind::Close(_) => depth += 1,
            TokenKind::Open(_) if depth > 0 => depth -= 1,
            TokenKind::Open(_) => break,
            TokenKind::Punct(';') | TokenKind::Punct(',') if depth == 0 => break,
            _ => {}
        }
        j -= 1;
    }
    let start = (j + 1) as usize;
    match toks.get(start).map(|t| &t.kind) {
        Some(TokenKind::Ident(kw)) if kw == "let" => {}
        _ => return None,
    }
    let mut k = start + 1;
    if let Some(TokenKind::Ident(m)) = toks.get(k).map(|t| &t.kind) {
        if m == "mut" {
            k += 1;
        }
    }
    let name = match toks.get(k).map(|t| &t.kind) {
        Some(TokenKind::Ident(name)) => name.clone(),
        _ => return None,
    };
    // The initializer must be a plain receiver chain (`let g = a.b.lock();`).
    // A leading `*` (`let st = *x.lock();`) deref-copies the protected
    // value — the guard itself is a temporary, not bound to `st`.
    if toks.get(k + 1).map(|t| &t.kind) != Some(&TokenKind::Punct('=')) {
        return None;
    }
    match toks.get(k + 2).map(|t| &t.kind) {
        Some(TokenKind::Ident(_)) => Some(name),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> LockGraph {
        let mut g = LockGraph::default();
        g.scan_file(&SourceFile::new("crates/x/src/lib.rs", src), "x");
        g
    }

    #[test]
    fn nested_let_guards_make_an_edge() {
        let g = graph_of(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); use_(a, b); }",
        );
        assert!(g.edges.contains_key(&("x::alpha".into(), "x::beta".into())));
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let g = graph_of("fn f(&self) { self.alpha.lock().push(1); self.beta.lock().push(2); }");
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let g = graph_of(
            "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); b.x(); }",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn block_scope_releases_guard() {
        let g = graph_of(
            "fn f(&self) { { let a = self.alpha.lock(); a.x(); } let b = self.beta.lock(); b.x(); }",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn inversion_across_functions_is_a_cycle() {
        let g = graph_of(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); u(a, b); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); u(a, b); }",
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].edge.as_deref().unwrap().contains("alpha"));
        assert!(cycles[0].edge.as_deref().unwrap().contains("beta"));
    }

    #[test]
    fn self_loop_is_reported() {
        let g = graph_of(
            "fn f(&self, o: &S) { let a = self.node.lock(); let b = o.node.lock(); u(a, b); }",
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edge.as_deref(), Some("x::node -> x::node"));
    }

    #[test]
    fn allowed_edge_breaks_the_cycle() {
        let mut g = graph_of(
            "fn f(&self, o: &S) { let a = self.node.lock(); let b = o.node.lock(); u(a, b); }",
        );
        assert!(g.allow_edge("x::node -> x::node", ""));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn receiver_name_skips_index_groups() {
        let g = graph_of(
            "fn f(&self) { let a = self.rings[i].lock(); let b = self.other[j].lock(); u(a, b); }",
        );
        assert!(g
            .edges
            .contains_key(&("x::rings".into(), "x::other".into())));
    }

    #[test]
    fn let_of_chained_result_is_not_a_guard_binding() {
        // `cached` binds the Option, not the guard: the guard dies at the
        // statement end, so the second acquisition is not nested.
        let g = graph_of(
            "fn f(&self) { let cached = self.cache.lock().get(k); let e = self.cache.lock().insert(k, v); u(cached, e); }",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn let_of_deref_copy_is_not_a_guard_binding() {
        // `st` is a copy of the protected value; the guard is a temporary.
        let g = graph_of(
            "fn f(&self) { let st = *self.state.lock(); let s = self.state.lock(); u(st, s); }",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn let_underscore_drops_immediately() {
        let g = graph_of(
            "fn f(&self) { let _ = self.shared.lock(); let b = self.shared.lock(); b.x(); }",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn try_lock_is_ignored() {
        let g = graph_of(
            "fn f(&self) { let a = self.alpha.try_lock(); let b = self.beta.lock(); u(a, b); }",
        );
        assert!(g.edges.is_empty());
    }

    fn graph_v2(src: &str) -> LockGraph {
        let files = vec![SourceFile::new("crates/x/src/lib.rs", src)];
        let lib = vec![Some("x".to_string())];
        let cg = CallGraph::build(&files, &lib);
        let mut g = LockGraph::default();
        g.scan_file(&files[0], "x");
        g.extend_with_calls(&files, &cg);
        g
    }

    #[test]
    fn if_condition_temporary_drops_before_the_block() {
        // Rust drops the condition's temporary guard before entering the
        // block, so the body's acquisition is not nested.
        let g = graph_of(
            "fn f(&self) { if self.pending.lock().len() > 4 { let b = self.other.lock(); b.x(); } }",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn if_condition_call_is_not_made_under_the_guard() {
        let g = graph_v2(
            "fn f(&self) { if self.pending.lock().len() > 4 { grab(); } }\n\
             fn grab(&self) { let p = self.pending.lock(); p.x(); }",
        );
        assert!(
            !g.edges
                .contains_key(&("x::pending".into(), "x::pending".into())),
            "{:?}",
            g.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn hold_across_call_extends_the_order_graph() {
        // flush holds `ring` while calling account, which takes `stats`:
        // no single function shows the pair, but the order edge exists.
        let g = graph_v2(
            "fn flush(&self) { let r = self.ring.lock(); account(&r); }\n\
             fn account(&self, r: &Ring) { let s = self.stats.lock(); s.add(r); }",
        );
        assert!(
            g.edges.contains_key(&("x::ring".into(), "x::stats".into())),
            "{:?}",
            g.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn interprocedural_inversion_is_a_cycle() {
        let g = graph_v2(
            "fn flush(&self) { let r = self.ring.lock(); account(&r); }\n\
             fn account(&self, r: &Ring) { let s = self.stats.lock(); s.add(r); }\n\
             fn report(&self) { let s = self.stats.lock(); let r = self.ring.lock(); u(s, r); }",
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        let edge = cycles[0].edge.as_deref().unwrap();
        assert!(edge.contains("ring") && edge.contains("stats"), "{edge}");
    }

    #[test]
    fn transitive_may_acquire_reaches_two_hops() {
        // flush -> mid -> deep: deep's lock is visible to flush's hold.
        let g = graph_v2(
            "fn flush(&self) { let r = self.ring.lock(); mid(); }\n\
             fn mid(&self) { deep(); }\n\
             fn deep(&self) { let s = self.stats.lock(); s.x(); }",
        );
        assert!(
            g.edges.contains_key(&("x::ring".into(), "x::stats".into())),
            "{:?}",
            g.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn call_after_guard_release_adds_no_edge() {
        let g = graph_v2(
            "fn flush(&self) { { let r = self.ring.lock(); r.x(); } account(); }\n\
             fn account(&self) { let s = self.stats.lock(); s.x(); }",
        );
        assert!(
            !g.edges.contains_key(&("x::ring".into(), "x::stats".into())),
            "{:?}",
            g.edges.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn three_cycle_detected_once() {
        let g = graph_of(
            "fn f(&self) { let a = self.a.lock(); let b = self.b.lock(); u(a, b); }\n\
             fn g(&self) { let b = self.b.lock(); let c = self.c.lock(); u(b, c); }\n\
             fn h(&self) { let c = self.c.lock(); let a = self.a.lock(); u(c, a); }",
        );
        assert_eq!(g.cycles().len(), 1);
    }
}
