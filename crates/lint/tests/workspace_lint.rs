//! Workspace-level tests of the lint engine and the `xtask` binary:
//! the real repository must be clean under the committed `lint.toml`
//! and `lint.baseline`, and the CLI's `--strict` / `--baseline` modes
//! must fail for the right reasons (exercised against throwaway mini
//! workspaces under the target temp dir).

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The acceptance gate: a full-workspace run under the committed
/// config has zero active findings and no rotted allow entries.
#[test]
fn workspace_is_clean_under_committed_config() {
    let report = bypassd_lint::run_workspace(&repo_root()).expect("workspace lints");
    assert!(
        report.active.is_empty(),
        "workspace findings: {:#?}",
        report.active
    );
    assert!(
        report.unused_allows.is_empty(),
        "rotted allow entries: {:#?}",
        report.unused_allows
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// The committed baseline must describe exactly the current findings
/// (an empty workspace ⇒ an empty baseline) — a stale file here would
/// make CI's differential mode silently mask regressions.
#[test]
fn committed_baseline_matches_workspace_findings() {
    let report = bypassd_lint::run_workspace(&repo_root()).expect("workspace lints");
    let current = bypassd_lint::baseline::compute(&report.active);
    let committed = std::fs::read_to_string(repo_root().join("lint.baseline"))
        .map(|s| bypassd_lint::baseline::parse(&s))
        .expect("lint.baseline committed");
    assert_eq!(
        current, committed,
        "run `cargo xtask lint --write-baseline`"
    );
}

/// A scratch mini-workspace for CLI-behavior tests. Lives under this
/// crate's target-adjacent temp dir; recreated from scratch per test.
fn scratch(name: &str, lint_toml: &str, lib_rs: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bypassd-lint-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/x/src")).expect("scratch dirs");
    std::fs::write(dir.join("lint.toml"), lint_toml).expect("lint.toml");
    std::fs::write(dir.join("crates/x/src/lib.rs"), lib_rs).expect("lib.rs");
    dir
}

/// Runs the real `xtask` binary against a scratch root. The binary
/// resolves its root from `CARGO_MANIFEST_DIR`, which we clear so it
/// falls back to the working directory.
fn xtask(root: &Path, args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .current_dir(root)
        .env_remove("CARGO_MANIFEST_DIR")
        .output()
        .expect("xtask runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const CLEAN_LIB: &str = "pub fn add(a: u64, b: u64) -> u64 { a + b }\n";

const WALL_CLOCK_LIB: &str =
    "pub fn t() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n";

#[test]
fn unused_allow_entry_warns_by_default_and_fails_strict() {
    let toml = r#"
[lint]
scan_roots = ["crates"]

[[allow]]
rule = "R2"
path = "crates/x/"
pattern = "never -> matches"
reason = "entry planted by the workspace_lint test"
"#;
    let root = scratch("unused-allow", toml, CLEAN_LIB);

    let (ok, err) = xtask(&root, &["lint"]);
    assert!(ok, "unused allow must only warn by default:\n{err}");
    assert!(err.contains("never matched"), "{err}");

    let (ok, err) = xtask(&root, &["lint", "--strict"]);
    assert!(!ok, "unused allow must be fatal under --strict:\n{err}");
    assert!(err.contains("never matched"), "{err}");
    assert!(err.contains("--strict"), "{err}");
}

#[test]
fn baseline_mode_fails_only_on_new_findings() {
    let root = scratch(
        "baseline",
        "[lint]\nscan_roots = [\"crates\"]\n",
        WALL_CLOCK_LIB,
    );

    // Default mode fails on the planted wall-clock read.
    let (ok, err) = xtask(&root, &["lint"]);
    assert!(!ok, "planted violation must fail:\n{err}");
    assert!(err.contains("[R1]"), "{err}");

    // Accept it as the baseline; differential mode is then green.
    let (ok, err) = xtask(&root, &["lint", "--write-baseline"]);
    assert!(ok, "--write-baseline must succeed:\n{err}");
    let (ok, err) = xtask(&root, &["lint", "--baseline"]);
    assert!(ok, "baselined finding must not fail:\n{err}");
    assert!(err.contains("0 new vs baseline"), "{err}");

    // A *new* finding in another file still fails, and the report names
    // only the new one.
    std::fs::write(
        root.join("crates/x/src/fresh.rs"),
        "pub fn r() -> u64 { rand::thread_rng().gen() }\n",
    )
    .expect("fresh.rs");
    let (ok, err) = xtask(&root, &["lint", "--baseline"]);
    assert!(!ok, "new finding must fail baseline mode:\n{err}");
    assert!(err.contains("fresh.rs"), "{err}");
    assert!(err.contains("1 new vs baseline"), "{err}");
    assert!(
        !err.contains("lib.rs:1"),
        "baselined finding re-reported:\n{err}"
    );
}

#[test]
fn sarif_and_json_exports_reflect_the_active_findings() {
    let root = scratch(
        "exports",
        "[lint]\nscan_roots = [\"crates\"]\n",
        WALL_CLOCK_LIB,
    );
    let (ok, err) = xtask(
        &root,
        &["lint", "--sarif", "out.sarif", "--json", "out.json"],
    );
    assert!(!ok, "violations still fail the run:\n{err}");

    let sarif = std::fs::read_to_string(root.join("out.sarif")).expect("sarif written");
    assert!(sarif.contains(r#""name":"bypassd-lint""#), "{sarif}");
    assert!(sarif.contains(r#""ruleId":"R1""#), "{sarif}");
    assert!(sarif.contains(r#""uri":"crates/x/src/lib.rs""#), "{sarif}");

    let json = std::fs::read_to_string(root.join("out.json")).expect("json written");
    assert!(json.contains(r#""rule":"R1""#), "{json}");
}

/// The CI wall-clock budget flag: an absurdly small budget fails even a
/// clean run, a generous one passes.
#[test]
fn budget_flag_gates_analyzer_wall_clock() {
    let root = scratch("budget", "[lint]\nscan_roots = [\"crates\"]\n", CLEAN_LIB);
    let (ok, _) = xtask(&root, &["lint", "--budget-ms", "600000"]);
    assert!(ok);
    // A zero budget must fail any measurable run; use the real repo so
    // the scan takes >0 ms (a two-file scratch rounds down to zero).
    let (ok, err) = xtask(&repo_root(), &["lint", "--budget-ms", "0"]);
    assert!(!ok, "zero budget must fail:\n{err}");
    assert!(err.contains("budget"), "{err}");
}
