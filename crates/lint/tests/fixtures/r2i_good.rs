// Interprocedural lock-order fixture (negative): the same call
// structure, but `drain` drops its guard before calling back into the
// sched side, so the call-graph-extended lock graph stays acyclic.
pub struct Lanes {
    sched: Mutex<u32>,
    model: Mutex<u32>,
}

impl Lanes {
    pub fn step(&self) {
        let s = self.sched.lock();
        self.touch_model(s);
    }

    fn touch_model(&self, s: Guard) {
        let m = self.model.lock();
        use_one(s, m);
    }

    pub fn drain(&self) {
        let m = self.model.lock();
        drop(m);
        self.touch_sched();
    }

    fn touch_sched(&self) {
        let s = self.sched.lock();
        use_one(s, ());
    }
}
