// R1 fixture (positive): wall-clock and OS randomness in library code.
use std::time::{Instant, SystemTime};

pub fn measure() -> u128 {
    let start = Instant::now(); // line 5: Instant::now
    std::thread::sleep(std::time::Duration::from_millis(1)); // line 6: thread::sleep
    let _stamp = SystemTime::now(); // line 7: SystemTime
    let _r = rand::thread_rng(); // line 8: thread_rng
    start.elapsed().as_nanos()
}
