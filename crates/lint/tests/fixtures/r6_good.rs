// Port-contract fixture (negative): every channel references a port
// constant declared in a `ports` module, so each lookahead promise is
// reviewed in one place.
pub fn wire(t: &mut Topology) {
    t.add_channel(LANE_A, LANE_B, ports::QOS_REQ, None);
    t.add_channel(LANE_B, LANE_A, ports::QOS_RSP, None);
}
