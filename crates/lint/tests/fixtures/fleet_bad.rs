// Fleet fixture (positive): the two mistakes a sharded executor must
// not make. A worker that consults the host clock breaks worker-count
// invariance (R1), and locking sched/model in opposite orders across
// the step and quiesce paths deadlocks two workers (R2).
pub struct Lanes {
    sched: Mutex<u32>,
    model: Mutex<u32>,
}

impl Lanes {
    pub fn step(&self) {
        let s = self.sched.lock(); // sched held ...
        let started = Instant::now(); // R1: wall clock inside a lane step
        let m = self.model.lock(); // ... while acquiring model
        use_both(s, m, started);
    }

    pub fn quiesce(&self) {
        let m = self.model.lock(); // model held ...
        let s = self.sched.lock(); // R2: ... while acquiring sched
        use_both(s, m, ());
    }
}

// R6: a raw cross-lane send. The channel's port (and therefore its
// lookahead promise) is whatever the caller happened to pass in —
// nothing a reviewer of `ports.rs` ever sees.
pub fn wire(t: &mut Topology, opaque: Port) {
    t.add_channel(0, 1, opaque, None);
}
