// Fleet fixture (negative): the real lane-step idiom. Virtual time
// comes from envelopes and promises, never the host clock; randomness
// is seeded per driver; and both paths take sched before model, so the
// lock graph has one direction only.
use bypassd_sim::rng::Rng;
use bypassd_sim::time::Nanos;

pub struct Lanes {
    sched: Mutex<u32>,
    model: Mutex<u32>,
}

impl Lanes {
    pub fn step(&self, horizon: Nanos) {
        let s = self.sched.lock(); // sched first ...
        let m = self.model.lock(); // ... then model, everywhere
        let mut rng = Rng::new(0xF1EE_7);
        let jitter = Nanos(200 + rng.gen_range(800));
        use_both(s, m, horizon.saturating_add(jitter));
    }

    pub fn quiesce(&self) {
        let s = self.sched.lock(); // same order on the shutdown path
        let m = self.model.lock();
        use_both(s, m, ());
    }
}

// Cross-lane sends reference a declared port constant, so the hop's
// lookahead is a reviewed, static contract.
pub fn wire(t: &mut Topology) {
    t.add_channel(0, 1, ports::LANE_HOP, None);
}
