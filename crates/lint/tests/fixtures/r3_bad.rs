// R3 fixture (positive): weakened orderings without justification.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed); // line 5: no comment
    c.load(Ordering::Acquire) // line 6: no comment
}
