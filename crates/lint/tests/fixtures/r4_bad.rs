// R4 fixture (positive): unwrap on lock results in library code.
use std::sync::{Mutex, RwLock};

pub fn poisonable(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    let a = *m.lock().unwrap(); // line 5: lock().unwrap()
    let b = *rw.read().unwrap(); // line 6: read().unwrap()
    *rw.write().unwrap() = a + b; // line 7: write().unwrap()
    a + b
}
