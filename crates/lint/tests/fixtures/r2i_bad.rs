// Interprocedural lock-order fixture (positive): neither function
// locks both mutexes directly — the inversion only exists through the
// call graph. `step` holds sched across `touch_model`, which acquires
// model; `drain` holds model across `touch_sched`, which acquires
// sched. The PR 4 per-function scan saw four one-lock functions.
pub struct Lanes {
    sched: Mutex<u32>,
    model: Mutex<u32>,
}

impl Lanes {
    pub fn step(&self) {
        let s = self.sched.lock();
        self.touch_model(s);
    }

    fn touch_model(&self, s: Guard) {
        let m = self.model.lock();
        use_both(s, m);
    }

    pub fn drain(&self) {
        let m = self.model.lock();
        self.touch_sched(m);
    }

    fn touch_sched(&self, m: Guard) {
        let s = self.sched.lock();
        use_both(s, m);
    }
}
