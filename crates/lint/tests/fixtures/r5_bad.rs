// Determinism-taint fixture (positive): a wall-clock value laundered
// through two helpers into a simulation deadline, plus an unordered
// map iteration folded into an FNV fingerprint. Neither function
// containing a sink mentions `Instant` or `HashMap` directly — only
// the interprocedural pass can connect them.
use std::collections::HashMap;
use std::time::Instant;

pub fn stamp() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

pub fn jitter() -> u64 {
    stamp() / 3
}

pub fn schedule(sim: &Simulation) {
    let at = jitter();
    sim.spawn_at(Nanos(at), "lane", step);
}

pub struct Registry {
    lanes: HashMap<u64, u64>,
}

impl Registry {
    pub fn digest(&self, h: &mut Fnv64) {
        for k in self.lanes.keys() {
            h.write_u64(*k);
        }
    }
}
