// R2 fixture (negative): consistent order, scoped guards, explicit drop.
pub struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        use_both(a, b);
    }

    pub fn also_forward(&self) {
        // Same alpha -> beta order: an edge, but no cycle.
        let a = self.alpha.lock();
        drop(a);
        let b = self.beta.lock();
        use_one(b);
    }

    pub fn sequential(&self) {
        // Temporary guards die at each statement: no nesting at all.
        *self.beta.lock() += 1;
        *self.alpha.lock() += 1;
    }
}
