// Determinism-taint fixture (negative): the blessed idioms. Deadlines
// derive from seeded arithmetic, and the unordered map is drained
// through a sort before anything order-sensitive consumes it.
use std::collections::HashMap;

pub fn base(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9)
}

pub fn schedule(sim: &Simulation) {
    let at = base(7);
    sim.spawn_at(Nanos(at), "lane", step);
}

pub struct Registry {
    lanes: HashMap<u64, u64>,
}

impl Registry {
    pub fn digest(&self, h: &mut Fnv64) {
        let mut keys: Vec<u64> = self.lanes.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            h.write_u64(k);
        }
    }
}
