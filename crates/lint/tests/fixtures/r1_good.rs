// R1 fixture (negative): virtual time and seeded randomness only.
use bypassd_sim::rng::Rng;
use bypassd_sim::time::Nanos;

pub fn measure(ctx: &mut ActorCtx) -> Nanos {
    let start = ctx.now();
    ctx.delay(Nanos(500));
    // Mentioning Instant::now in a comment or "thread::sleep" in a
    // string is fine; only real token uses count.
    let _docs = "SystemTime::now";
    let mut rng = Rng::new(42);
    let _ = rng.gen_range(10);
    ctx.now().saturating_sub(start)
}
