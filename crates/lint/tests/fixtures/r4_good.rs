// R4 fixture (negative): poison-recovery, expect with invariant, tests.
use std::sync::{Mutex, PoisonError, RwLock};

pub fn recovered(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    // Recover the guard: these counters stay consistent even if a
    // panicking thread poisoned the lock.
    let a = *m.lock().unwrap_or_else(PoisonError::into_inner);
    let b = *rw.read().unwrap_or_else(PoisonError::into_inner);
    a + b
}

pub fn with_invariant(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("metadata lock: holders never panic mid-update")
}

pub fn io_read_is_not_a_lock(r: &mut impl std::io::Read, buf: &mut [u8]) {
    // `.read(&mut buf)` takes arguments: not a lock acquisition.
    r.read(buf).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let m = Mutex::new(1);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
