// R2 fixture (positive): a two-lock order inversion across functions.
pub struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    pub fn forward(&self) {
        let a = self.alpha.lock(); // alpha held ...
        let b = self.beta.lock(); // line 10: ... while acquiring beta
        use_both(a, b);
    }

    pub fn backward(&self) {
        let b = self.beta.lock(); // beta held ...
        let a = self.alpha.lock(); // line 16: ... while acquiring alpha
        use_both(a, b);
    }
}
