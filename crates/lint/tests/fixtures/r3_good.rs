// R3 fixture (negative): justified weak orderings, exempt SeqCst, tests.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // ordering: Relaxed — pure counter, read only for stats.
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::SeqCst)
}

pub fn same_line(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // ordering: stats snapshot, no sync needed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let c = AtomicU64::new(0);
        c.store(7, Ordering::Relaxed);
        assert_eq!(bump(&c), 8);
    }
}
