// Port-contract fixture (positive): lane wiring that hides timing
// contracts. An inline `Port::new` buries an unreviewed lookahead in
// wiring code, and an opaque `Port` variable makes the channel's
// conservative-lookahead promise invisible to review.
pub fn wire(t: &mut Topology, opaque: Port) {
    t.add_channel(LANE_A, LANE_B, Port::new("qos.req", Nanos(250)), None);
    t.add_channel(LANE_A, LANE_B, opaque, None);
}
