//! Fixture-based tests of the lint rules: each rule has one positive
//! fixture (every planted violation must be reported at its exact line)
//! and one negative fixture (zero diagnostics). The fixtures live under
//! `tests/fixtures/` — a directory the workspace scanner skips, so the
//! planted violations never fail `cargo xtask lint` itself.

use bypassd_lint::diag::Diagnostic;
use bypassd_lint::lockgraph::LockGraph;
use bypassd_lint::rules::{self, SourceFile};

fn fixture(name: &str) -> SourceFile {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    // Present the fixture as library code so src-only rules apply.
    SourceFile::new(&format!("crates/fixture/src/{name}"), &text)
}

fn lines(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .map(|d| {
            assert_eq!(d.rule, rule, "unexpected rule in {d}");
            d.line
        })
        .collect()
}

#[test]
fn r1_bad_reports_each_wall_clock_use() {
    let diags = rules::r1(&fixture("r1_bad.rs"));
    // Line 2 is the `use` of SystemTime: importing a wall-clock type is
    // itself a violation, so intent is caught before the first call site.
    assert_eq!(lines(&diags, "R1"), vec![2, 5, 6, 7, 8], "{diags:#?}");
    assert!(diags[0].message.contains("SystemTime"));
    assert!(diags[1].message.contains("Instant::now"));
    assert!(diags[2].message.contains("thread::sleep"));
    assert!(diags[3].message.contains("SystemTime"));
    assert!(diags[4].message.contains("thread_rng"));
}

#[test]
fn r1_good_is_clean() {
    assert_eq!(rules::r1(&fixture("r1_good.rs")), vec![]);
}

#[test]
fn r2_bad_reports_the_inversion_cycle() {
    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("r2_bad.rs"), "fixture");
    let diags = graph.cycles();
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "R2");
    assert_eq!(
        d.edge.as_deref(),
        Some("fixture::alpha -> fixture::beta -> fixture::alpha")
    );
    // The reported site is the acquisition that closes the cycle.
    assert_eq!(
        (d.line, d.path.as_str()),
        (16, "crates/fixture/src/r2_bad.rs")
    );
    assert!(d.message.contains("fn backward"), "{}", d.message);
    assert!(d.message.contains("fn forward"), "{}", d.message);
}

#[test]
fn r2_good_has_edges_but_no_cycle() {
    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("r2_good.rs"), "fixture");
    assert!(
        graph
            .edges
            .contains_key(&("fixture::alpha".into(), "fixture::beta".into())),
        "the consistent alpha -> beta edge should be recorded: {:?}",
        graph.edges
    );
    assert_eq!(graph.cycles(), vec![]);
}

#[test]
fn r3_bad_reports_each_unjustified_ordering() {
    let diags = rules::r3(&fixture("r3_bad.rs"));
    assert_eq!(lines(&diags, "R3"), vec![5, 6], "{diags:#?}");
    assert!(diags[0].message.contains("Ordering::Relaxed"));
    assert!(diags[1].message.contains("Ordering::Acquire"));
}

#[test]
fn r3_good_is_clean() {
    assert_eq!(rules::r3(&fixture("r3_good.rs")), vec![]);
}

#[test]
fn r4_bad_reports_each_lock_unwrap() {
    let diags = rules::r4(&fixture("r4_bad.rs"));
    assert_eq!(lines(&diags, "R4"), vec![5, 6, 7], "{diags:#?}");
    assert!(diags[0].message.contains(".lock()"));
    assert!(diags[1].message.contains(".read()"));
    assert!(diags[2].message.contains(".write()"));
}

#[test]
fn r4_good_is_clean() {
    assert_eq!(rules::r4(&fixture("r4_good.rs")), vec![]);
}

/// Fleet executor idiom, wrong on both axes: a worker loop that reads
/// the host clock (which would make virtual-time results depend on the
/// worker count) and a sched/model lock inversion between the step and
/// quiesce paths (the exact two-thread deadlock a sharded scheduler
/// risks).
#[test]
fn fleet_bad_reports_wall_clock_and_lock_inversion() {
    let diags = rules::r1(&fixture("fleet_bad.rs"));
    assert_eq!(lines(&diags, "R1"), vec![13], "{diags:#?}");
    assert!(diags[0].message.contains("Instant::now"));

    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("fleet_bad.rs"), "fleet");
    let cycles = graph.cycles();
    assert_eq!(cycles.len(), 1, "{cycles:#?}");
    assert_eq!(
        cycles[0].edge.as_deref(),
        Some("fleet::model -> fleet::sched -> fleet::model")
    );
    assert!(
        cycles[0].message.contains("fn quiesce"),
        "{}",
        cycles[0].message
    );
}

/// The real lane-step idiom: envelope-driven virtual time, per-driver
/// seeded rngs, and one global sched-before-model lock order.
#[test]
fn fleet_good_is_clean_under_r1_and_r2() {
    assert_eq!(rules::r1(&fixture("fleet_good.rs")), vec![]);
    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("fleet_good.rs"), "fleet");
    assert!(
        graph
            .edges
            .contains_key(&("fleet::sched".into(), "fleet::model".into())),
        "the sched -> model edge should be recorded: {:?}",
        graph.edges
    );
    assert_eq!(graph.cycles(), vec![]);
}

/// End-to-end: violations surface through the allowlist filter with the
/// exact `path:line: [RULE]` rendering the CI log shows.
#[test]
fn diagnostics_render_with_path_line_and_rule() {
    let diags = rules::r1(&fixture("r1_bad.rs"));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/fixture/src/r1_bad.rs:2: [R1]"),
        "{rendered}"
    );
}
