//! Fixture-based tests of the lint rules: each rule has one positive
//! fixture (every planted violation must be reported at its exact line)
//! and one negative fixture (zero diagnostics). The fixtures live under
//! `tests/fixtures/` — a directory the workspace scanner skips, so the
//! planted violations never fail `cargo xtask lint` itself.

use bypassd_lint::callgraph::CallGraph;
use bypassd_lint::diag::Diagnostic;
use bypassd_lint::lockgraph::LockGraph;
use bypassd_lint::rules::{self, SourceFile};
use bypassd_lint::taint::TaintPass;
use bypassd_lint::{portcheck, sarif};

fn fixture(name: &str) -> SourceFile {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    // Present the fixture as library code so src-only rules apply.
    SourceFile::new(&format!("crates/fixture/src/{name}"), &text)
}

/// Runs the R5 taint pass over one fixture presented as a library file.
fn taint_diags(name: &str) -> Vec<Diagnostic> {
    let files = vec![fixture(name)];
    let lib = vec![Some("fixture".to_string())];
    let graph = CallGraph::build(&files, &lib);
    TaintPass::new(&files, &graph).run(|_| true)
}

/// Runs the call-graph-extended R2 pass over one fixture.
fn interproc_cycles(name: &str) -> Vec<Diagnostic> {
    let files = vec![fixture(name)];
    let lib = vec![Some("fixture".to_string())];
    let graph = CallGraph::build(&files, &lib);
    let mut lock = LockGraph::default();
    lock.scan_file(&files[0], "fixture");
    lock.extend_with_calls(&files, &graph);
    lock.cycles()
}

fn lines(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags
        .iter()
        .map(|d| {
            assert_eq!(d.rule, rule, "unexpected rule in {d}");
            d.line
        })
        .collect()
}

#[test]
fn r1_bad_reports_each_wall_clock_use() {
    let diags = rules::r1(&fixture("r1_bad.rs"));
    // Line 2 is the `use` of SystemTime: importing a wall-clock type is
    // itself a violation, so intent is caught before the first call site.
    assert_eq!(lines(&diags, "R1"), vec![2, 5, 6, 7, 8], "{diags:#?}");
    assert!(diags[0].message.contains("SystemTime"));
    assert!(diags[1].message.contains("Instant::now"));
    assert!(diags[2].message.contains("thread::sleep"));
    assert!(diags[3].message.contains("SystemTime"));
    assert!(diags[4].message.contains("thread_rng"));
}

#[test]
fn r1_good_is_clean() {
    assert_eq!(rules::r1(&fixture("r1_good.rs")), vec![]);
}

#[test]
fn r2_bad_reports_the_inversion_cycle() {
    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("r2_bad.rs"), "fixture");
    let diags = graph.cycles();
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "R2");
    assert_eq!(
        d.edge.as_deref(),
        Some("fixture::alpha -> fixture::beta -> fixture::alpha")
    );
    // The reported site is the acquisition that closes the cycle.
    assert_eq!(
        (d.line, d.path.as_str()),
        (16, "crates/fixture/src/r2_bad.rs")
    );
    assert!(d.message.contains("fn backward"), "{}", d.message);
    assert!(d.message.contains("fn forward"), "{}", d.message);
}

#[test]
fn r2_good_has_edges_but_no_cycle() {
    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("r2_good.rs"), "fixture");
    assert!(
        graph
            .edges
            .contains_key(&("fixture::alpha".into(), "fixture::beta".into())),
        "the consistent alpha -> beta edge should be recorded: {:?}",
        graph.edges
    );
    assert_eq!(graph.cycles(), vec![]);
}

#[test]
fn r3_bad_reports_each_unjustified_ordering() {
    let diags = rules::r3(&fixture("r3_bad.rs"));
    assert_eq!(lines(&diags, "R3"), vec![5, 6], "{diags:#?}");
    assert!(diags[0].message.contains("Ordering::Relaxed"));
    assert!(diags[1].message.contains("Ordering::Acquire"));
}

#[test]
fn r3_good_is_clean() {
    assert_eq!(rules::r3(&fixture("r3_good.rs")), vec![]);
}

#[test]
fn r4_bad_reports_each_lock_unwrap() {
    let diags = rules::r4(&fixture("r4_bad.rs"));
    assert_eq!(lines(&diags, "R4"), vec![5, 6, 7], "{diags:#?}");
    assert!(diags[0].message.contains(".lock()"));
    assert!(diags[1].message.contains(".read()"));
    assert!(diags[2].message.contains(".write()"));
}

#[test]
fn r4_good_is_clean() {
    assert_eq!(rules::r4(&fixture("r4_good.rs")), vec![]);
}

/// Fleet executor idiom, wrong on both axes: a worker loop that reads
/// the host clock (which would make virtual-time results depend on the
/// worker count) and a sched/model lock inversion between the step and
/// quiesce paths (the exact two-thread deadlock a sharded scheduler
/// risks).
#[test]
fn fleet_bad_reports_wall_clock_and_lock_inversion() {
    let diags = rules::r1(&fixture("fleet_bad.rs"));
    assert_eq!(lines(&diags, "R1"), vec![13], "{diags:#?}");
    assert!(diags[0].message.contains("Instant::now"));

    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("fleet_bad.rs"), "fleet");
    let cycles = graph.cycles();
    assert_eq!(cycles.len(), 1, "{cycles:#?}");
    assert_eq!(
        cycles[0].edge.as_deref(),
        Some("fleet::model -> fleet::sched -> fleet::model")
    );
    assert!(
        cycles[0].message.contains("fn quiesce"),
        "{}",
        cycles[0].message
    );
}

/// The real lane-step idiom: envelope-driven virtual time, per-driver
/// seeded rngs, and one global sched-before-model lock order.
#[test]
fn fleet_good_is_clean_under_r1_and_r2() {
    assert_eq!(rules::r1(&fixture("fleet_good.rs")), vec![]);
    let mut graph = LockGraph::default();
    graph.scan_file(&fixture("fleet_good.rs"), "fleet");
    assert!(
        graph
            .edges
            .contains_key(&("fleet::sched".into(), "fleet::model".into())),
        "the sched -> model edge should be recorded: {:?}",
        graph.edges
    );
    assert_eq!(graph.cycles(), vec![]);
}

/// R6 on the fleet fixtures: the bad variant wires a raw (non-port)
/// cross-lane channel, the good variant references a declared constant.
#[test]
fn fleet_bad_reports_raw_cross_lane_channel() {
    let diags = portcheck::r6(&fixture("fleet_bad.rs"));
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!((diags[0].rule, diags[0].line, diags[0].col), ("R6", 29, 7));
    assert!(diags[0].message.contains("undeclared port"));
}

#[test]
fn fleet_good_channel_references_a_declared_port() {
    assert_eq!(portcheck::r6(&fixture("fleet_good.rs")), vec![]);
}

/// R5 positive fixture: three planted flows, each asserted at its exact
/// file:line:col span. The two line-19 findings are the laundered
/// wall-clock deadline (`spawn_at` + the `Nanos` construction inside
/// it); line 29 is the unordered-map fingerprint fold.
#[test]
fn r5_bad_reports_each_flow_with_exact_spans() {
    let diags = taint_diags("r5_bad.rs");
    let spans: Vec<(usize, usize, usize)> =
        diags.iter().map(|d| (d.line, d.col, d.end_col)).collect();
    assert_eq!(
        spans,
        vec![(19, 9, 17), (19, 18, 23), (29, 15, 24)],
        "{diags:#?}"
    );
    for d in &diags {
        assert_eq!(d.rule, "R5");
        assert_eq!(d.path, "crates/fixture/src/r5_bad.rs");
    }
    // The sink function never mentions Instant — the chain must cross
    // stamp() -> jitter() -> schedule().
    assert!(
        diags[0].message.contains("simulation deadline"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("wall clock"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("calls tainted"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[2].message.contains("FNV fingerprint"),
        "{}",
        diags[2].message
    );
    assert!(
        diags[2].message.contains("unordered"),
        "{}",
        diags[2].message
    );
}

#[test]
fn r5_good_sorted_drain_and_seeded_deadline_are_clean() {
    assert_eq!(taint_diags("r5_good.rs"), vec![]);
}

/// R6 positive fixture: an inline `Port::new` and an opaque port
/// variable, each at its exact span.
#[test]
fn r6_bad_reports_inline_port_and_undeclared_channel() {
    let diags = portcheck::r6(&fixture("r6_bad.rs"));
    let spans: Vec<(usize, usize, usize)> =
        diags.iter().map(|d| (d.line, d.col, d.end_col)).collect();
    assert_eq!(spans, vec![(6, 41, 44), (7, 7, 18)], "{diags:#?}");
    assert!(diags[0].message.contains("inline `Port::new`"));
    assert!(diags[1].message.contains("undeclared port"));
}

#[test]
fn r6_good_declared_port_constants_are_clean() {
    assert_eq!(portcheck::r6(&fixture("r6_good.rs")), vec![]);
}

/// Interprocedural R2 positive fixture: four one-lock functions whose
/// inversion exists only through the call graph.
#[test]
fn r2i_bad_reports_the_call_graph_inversion() {
    let diags = interproc_cycles("r2i_bad.rs");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.rule, "R2");
    assert_eq!(
        d.edge.as_deref(),
        Some("fixture::model -> fixture::sched -> fixture::model")
    );
    // The reported site is the held call that closes the cycle.
    assert_eq!(
        (d.path.as_str(), d.line),
        ("crates/fixture/src/r2i_bad.rs", 14)
    );
    assert!(
        d.message.contains("via call to touch_model"),
        "{}",
        d.message
    );
    assert!(
        d.message.contains("via call to touch_sched"),
        "{}",
        d.message
    );
}

#[test]
fn r2i_good_guard_dropped_before_call_is_clean() {
    assert_eq!(interproc_cycles("r2i_good.rs"), vec![]);
}

/// SARIF export over real fixture findings: schema pointer, driver
/// identity, all six rule descriptors, and a region per finding.
#[test]
fn sarif_shape_over_fixture_findings() {
    let mut diags = taint_diags("r5_bad.rs");
    diags.extend(portcheck::r6(&fixture("r6_bad.rs")));
    let s = sarif::to_sarif(&diags);
    assert!(s.contains(r#""$schema":"https://json.schemastore.org/sarif-2.1.0.json""#));
    assert!(s.contains(r#""version":"2.1.0""#));
    assert!(s.contains(r#""name":"bypassd-lint""#));
    for id in ["R1", "R2", "R3", "R4", "R5", "R6"] {
        assert!(
            s.contains(&format!(r#""id":"{id}""#)),
            "{id} descriptor missing"
        );
    }
    assert_eq!(s.matches(r#""ruleId":"R5""#).count(), 3, "{s}");
    assert_eq!(s.matches(r#""ruleId":"R6""#).count(), 2, "{s}");
    // Exact region for the fingerprint-fold finding.
    assert!(
        s.contains(r#""region":{"startLine":29,"startColumn":15,"endColumn":24}"#),
        "{s}"
    );
    assert!(s.contains(r#""uri":"crates/fixture/src/r5_bad.rs""#));
}

/// End-to-end: violations surface through the allowlist filter with the
/// exact `path:line:col: [RULE]` rendering the CI log shows.
#[test]
fn diagnostics_render_with_path_line_col_and_rule() {
    let diags = rules::r1(&fixture("r1_bad.rs"));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/fixture/src/r1_bad.rs:2:"),
        "{rendered}"
    );
    assert!(rendered.contains(": [R1]"), "{rendered}");
    // Column is 1-based and points at the flagged token.
    assert!(
        diags[0].col > 0 && diags[0].end_col > diags[0].col,
        "{diags:#?}"
    );
}
