//! Executor-level contracts: bit-identical results across worker
//! counts, promise-violation trapping, and quiescence.

use std::sync::Arc;

use bypassd_fleet::{Event, Executor, Lane, LaneHandle, Topology};
use bypassd_sim::rng::{Fnv64, Rng};
use bypassd_sim::{Nanos, Port};
use parking_lot::Mutex;

/// A ring of lanes, each with a jittery producer actor sending tokens
/// to the next lane plus a report edge into lane 0; every lane logs
/// `(channel, at, payload)` in handler order. The fingerprint covers
/// the logs (including merge order at lane 0, which has multiple
/// inbound channels) and each lane's final virtual time.
fn ring_fingerprint(lanes: usize, tokens: u64, seed: u64, workers: usize) -> (u64, u64) {
    let mut topo = Topology::new();
    let ids: Vec<_> = (0..lanes).map(|_| topo.add_lane()).collect();
    let ring: Vec<_> = (0..lanes)
        .map(|i| {
            topo.add_channel(
                ids[i],
                ids[(i + 1) % lanes],
                Port::new("token", Nanos(345)),
                None, // producer actors never react to inputs
            )
        })
        .collect();
    let report: Vec<_> = (1..lanes)
        .map(|i| topo.add_channel(ids[i], ids[0], Port::new("report", Nanos(345)), None))
        .collect();

    let logs: Vec<Arc<Mutex<Vec<(u32, u64, u64)>>>> = (0..lanes)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let mut models: Vec<Box<dyn bypassd_fleet::LaneModel<u64>>> = Vec::new();
    for i in 0..lanes {
        let log = Arc::clone(&logs[i]);
        let lane = Lane::new(move |ev: Event<u64>, _h: &LaneHandle<u64>| {
            let ch = ev.channel.map_or(u32::MAX, |c| c.0);
            log.lock().push((ch, ev.at.0, ev.msg));
        });
        let handle = lane.handle();
        let out_ring = ring[i];
        let out_report = (i > 0).then(|| report[i - 1]);
        lane.sim().spawn("producer", move |ctx| {
            let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for k in 0..tokens {
                ctx.delay(Nanos(50 + rng.gen_range(400)));
                handle.send(ctx.now(), out_ring, (i as u64) << 32 | k);
                if let Some(rep) = out_report {
                    if k % 3 == 0 {
                        handle.send(ctx.now(), rep, k);
                    }
                }
            }
        });
        models.push(Box::new(lane));
    }

    let mut exec = Executor::new(topo, models);
    let stats = exec.run(workers);
    let mut fp = Fnv64::new();
    for log in &logs {
        let log = log.lock();
        fp.write_u64(log.len() as u64);
        for &(ch, at, msg) in log.iter() {
            fp.write_u64(u64::from(ch));
            fp.write_u64(at);
            fp.write_u64(msg);
        }
    }
    (fp.finish(), stats.delivered)
}

#[test]
fn ring_results_identical_across_worker_counts() {
    let (fp1, d1) = ring_fingerprint(4, 40, 0xF1EE7, 1);
    let (fp2, d2) = ring_fingerprint(4, 40, 0xF1EE7, 2);
    let (fp8, d8) = ring_fingerprint(4, 40, 0xF1EE7, 8);
    assert_eq!(fp1, fp2, "1 vs 2 workers diverged");
    assert_eq!(fp1, fp8, "1 vs 8 workers diverged");
    // Real message counts are deterministic too (scheduling counters
    // are not, and are deliberately not compared).
    assert_eq!(d1, d2);
    assert_eq!(d1, d8);
    // 4 ring tokens per producer per round... sanity: every token and
    // every third report token arrived.
    let expected = 4 * 40 + 3 * ((40 + 2) / 3);
    assert_eq!(d1, expected);
}

#[test]
fn ring_rerun_is_bit_identical() {
    assert_eq!(
        ring_fingerprint(3, 25, 42, 2),
        ring_fingerprint(3, 25, 42, 2)
    );
}

#[test]
fn seed_changes_results() {
    assert_ne!(
        ring_fingerprint(3, 25, 1, 1).0,
        ring_fingerprint(3, 25, 2, 1).0
    );
}

#[test]
#[should_panic(expected = "promise violation")]
fn undeclared_reaction_is_trapped() {
    let mut topo = Topology::new();
    let a = topo.add_lane();
    let b = topo.add_lane();
    let ab = topo.add_channel(a, b, Port::new("req", Nanos(345)), None);
    // b declares it reacts no sooner than 500ns after an input...
    let ba = topo.add_channel(b, a, Port::new("resp", Nanos(345)), Some(Nanos(500)));

    let lane_a = Lane::new(|_ev: Event<u64>, _h: &LaneHandle<u64>| {});
    let ha = lane_a.handle();
    lane_a.sim().spawn("kick", move |ctx| {
        ha.send(ctx.now(), ab, 7);
    });
    // ...but replies instantly, undercutting the promise its clock made.
    let lane_b = Lane::new(move |ev: Event<u64>, h: &LaneHandle<u64>| {
        h.send(ev.at, ba, ev.msg);
    });

    let mut exec = Executor::new(topo, vec![Box::new(lane_a), Box::new(lane_b)]);
    exec.run(2);
}

#[test]
fn empty_fleet_quiesces_immediately() {
    let mut topo = Topology::new();
    let a = topo.add_lane();
    let b = topo.add_lane();
    topo.add_channel(a, b, Port::new("quiet", Nanos(1)), None);
    let models: Vec<Box<dyn bypassd_fleet::LaneModel<()>>> = vec![
        Box::new(Lane::new(|_ev: Event<()>, _h: &LaneHandle<()>| {})),
        Box::new(Lane::new(|_ev: Event<()>, _h: &LaneHandle<()>| {})),
    ];
    let mut exec = Executor::new(topo, models);
    let stats = exec.run(4);
    assert_eq!(stats.delivered, 0);
}

#[test]
fn inboxes_are_sealed_after_run() {
    // A lane that tries to arm a timer after finalization is trapped by
    // the sealed mailbox; here we just verify the run seals cleanly and
    // lanes can be recovered.
    let mut topo = Topology::new();
    let a = topo.add_lane();
    let b = topo.add_lane();
    let ab = topo.add_channel(a, b, Port::new("once", Nanos(10)), None);
    let got = Arc::new(Mutex::new(Vec::new()));
    let g = Arc::clone(&got);
    let lane_a = Lane::new(|_ev: Event<u64>, _h: &LaneHandle<u64>| {});
    let ha = lane_a.handle();
    lane_a.sim().spawn("send-one", move |ctx| {
        ctx.delay(Nanos(5));
        ha.send(ctx.now(), ab, 99);
    });
    let lane_b = Lane::new(move |ev: Event<u64>, _h: &LaneHandle<u64>| {
        g.lock().push((ev.at.0, ev.msg));
    });
    let mut exec = Executor::new(topo, vec![Box::new(lane_a), Box::new(lane_b)]);
    exec.run(1);
    assert_eq!(*got.lock(), vec![(15, 99)]);
    let models = exec.into_models();
    assert_eq!(models.len(), 2);
}
