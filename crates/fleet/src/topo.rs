//! Fleet topology: lanes and the channels that connect them.
//!
//! A *lane* is an independently clocked shard of the simulation (in
//! BypassD terms: one device plus the processes driving it, or a
//! control-plane shard). A *channel* is a directed cross-lane edge over
//! a [`Port`] — doorbell rings, completion posts, IOMMU shootdowns, QoS
//! pressure bits. The topology is static: every way an event can cross
//! a shard boundary must be declared up front, because the conservative
//! scheduler derives each lane's safe horizon from the channel set.

use bypassd_sim::{Nanos, Port};

/// Index of a lane within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId(pub u32);

/// Index of a channel within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

/// One directed cross-lane edge.
#[derive(Debug, Clone, Copy)]
pub struct ChannelSpec {
    /// Sending lane.
    pub src: LaneId,
    /// Receiving lane.
    pub dst: LaneId,
    /// Port (name + lookahead) this edge crosses.
    pub port: Port,
    /// Input-to-output reaction bound for the sending lane on this
    /// channel: if the lane's sends on this edge can be *triggered by
    /// its own inputs* (e.g. a completion post triggered by a doorbell),
    /// this is a lower bound on that input→send delay, and the lane's
    /// clock promise includes `input_horizon + reaction`.
    ///
    /// `None` declares that sends on this edge are never caused by
    /// inputs — they are driven purely by the lane's own timers and
    /// actors. That is what breaks promise cycles between mutually
    /// connected lanes: such an edge promises up to the lane's next
    /// locally scheduled event regardless of what its neighbours do. A
    /// handler receiving an input on a `None`-reaction lane must not
    /// send on that edge, nor wake an actor/timer earlier than the
    /// lane's current next event; the executor traps (panics) if a send
    /// ever undercuts a promise.
    pub reaction: Option<Nanos>,
}

/// Static lane/channel graph for one fleet run.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    lanes: u32,
    channels: Vec<ChannelSpec>,
}

impl Topology {
    /// An empty topology with no lanes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a lane and returns its id.
    pub fn add_lane(&mut self) -> LaneId {
        let id = LaneId(self.lanes);
        self.lanes += 1;
        id
    }

    /// Adds a directed channel; see [`ChannelSpec`] for the `reaction`
    /// contract.
    ///
    /// # Panics
    /// Panics on unknown lanes, self-edges (same-lane traffic never
    /// needs a channel), or a zero reaction bound (an input-coupled
    /// edge with no modeled delay would pin the receiver's clock to the
    /// sender's).
    pub fn add_channel(
        &mut self,
        src: LaneId,
        dst: LaneId,
        port: Port,
        reaction: Option<Nanos>,
    ) -> ChannelId {
        assert!(src.0 < self.lanes, "channel src {src:?} is not a lane");
        assert!(dst.0 < self.lanes, "channel dst {dst:?} is not a lane");
        assert_ne!(
            src, dst,
            "self-channels are not allowed: lane-local events stay in the lane"
        );
        if let Some(r) = reaction {
            assert!(
                r.0 >= 1,
                "input-coupled channels need a positive reaction bound"
            );
        }
        let id = ChannelId(self.channels.len() as u32);
        // The executor uses the channel index as the u32 merge-key
        // component, and reserves u32::MAX for lane-local timers.
        assert!(id.0 < u32::MAX, "too many channels");
        self.channels.push(ChannelSpec {
            src,
            dst,
            port,
            reaction,
        });
        id
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes as usize
    }

    /// All channels, indexed by [`ChannelId`].
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_lanes_and_channels() {
        let mut t = Topology::new();
        let a = t.add_lane();
        let b = t.add_lane();
        let p = Port::new("doorbell", Nanos(345));
        let c = t.add_channel(a, b, p, None);
        assert_eq!(c, ChannelId(0));
        assert_eq!(t.lane_count(), 2);
        assert_eq!(t.channels()[0].dst, b);
    }

    #[test]
    #[should_panic(expected = "self-channels")]
    fn rejects_self_edges() {
        let mut t = Topology::new();
        let a = t.add_lane();
        t.add_channel(a, a, Port::new("loop", Nanos(1)), None);
    }

    #[test]
    #[should_panic(expected = "positive reaction")]
    fn rejects_zero_reaction() {
        let mut t = Topology::new();
        let a = t.add_lane();
        let b = t.add_lane();
        t.add_channel(a, b, Port::new("cq", Nanos(345)), Some(Nanos::ZERO));
    }
}
