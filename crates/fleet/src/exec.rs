//! The conservative parallel scheduler.
//!
//! Each lane advances its own virtual timeline; the executor computes,
//! per lane, a *safe horizon* — the minimum clock over its inbound
//! channels — and lets worker threads step any lane whose horizon has
//! moved past its committed time. Channel clocks are Chandy–Misra style
//! promises: after a lane steps to horizon `H`, each of its outbound
//! channels promises
//!
//! ```text
//! clock = min(next_local_event, H + reaction) + lookahead
//! ```
//!
//! where `reaction` is the declared input→send bound for the edge
//! (absent for edges never triggered by inputs — see
//! [`ChannelSpec::reaction`]). Because every lookahead is positive,
//! there is always a lane whose horizon exceeds its committed time, so
//! the fleet cannot stall (the classic conservative-progress argument);
//! the executor still carries a sweep-then-trap backstop for model
//! bugs.
//!
//! **Determinism.** A lane's evolution depends only on the merged
//! `(deliver_at, channel, seq)` order of its inputs, never on when in
//! wall-clock time they were posted or how the steps were chunked:
//! sequence numbers are assigned per channel in virtual send order,
//! horizons only decide *chunking*, and the lane runtime replays the
//! merge deterministically (see `lane.rs`). Hence 1, 2, or N workers
//! produce bit-identical virtual-time results. Scheduling counters
//! ([`ExecStats`]) are *not* deterministic — step counts depend on how
//! horizons happened to advance — and must never be fingerprinted.

use std::collections::VecDeque;

use bypassd_sim::{Envelope, Mailbox, Nanos};
use parking_lot::{Condvar, Mutex};

use crate::topo::{ChannelId, ChannelSpec, LaneId, Topology};

/// Merge-key channel value reserved for lane-local timers.
pub const SELF_CHANNEL: u32 = u32::MAX;

/// One outbound message produced during a lane step.
#[derive(Debug, Clone)]
pub struct OutMsg<M> {
    /// Virtual time at which the lane decided to send. Must lie within
    /// the step window `[committed, horizon)` and be nondecreasing per
    /// channel.
    pub sent_at: Nanos,
    /// Channel to send on (must originate at the stepping lane).
    pub channel: ChannelId,
    /// Payload; delivered at `sent_at + port.lookahead`.
    pub msg: M,
}

/// A shard of the simulation, driven by the executor.
///
/// Contract for [`LaneModel::step`]`(inbox, horizon, out)`:
/// * drain and handle every inbox envelope with `at < horizon`,
///   interleaved with local activity in `(at, channel, seq)` order;
/// * advance all local activity through `horizon - 1` inclusive;
/// * push sends into `out` in virtual send order.
///
/// [`LaneModel::next_event`] reports the earliest *future* local event
/// (timer or actor wakeup), which after a step is always `>= horizon`.
pub trait LaneModel<M>: Send {
    /// Advance the lane below `horizon`; see the trait docs.
    fn step(&mut self, inbox: &Mailbox<M>, horizon: Nanos, out: &mut Vec<OutMsg<M>>);
    /// Earliest pending local event, if any.
    fn next_event(&self) -> Option<Nanos>;
    /// Called once after the fleet quiesces (in lane order).
    fn finalize(&mut self) {}
}

/// Diagnostic counters for one executor run.
///
/// `steps` (and to a lesser degree the null-message bookkeeping behind
/// it) depends on worker scheduling and is **not** deterministic;
/// `delivered` counts real model messages and is.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Lane steps executed (includes pure horizon-advance steps).
    pub steps: u64,
    /// Cross-lane envelopes delivered.
    pub delivered: u64,
}

struct ChanState {
    spec: ChannelSpec,
    /// Promise: every future envelope on this channel is delivered at
    /// or after this time. Monotone.
    clock: Nanos,
    /// Next per-channel sequence number (virtual send order).
    next_seq: u64,
}

struct LaneSched {
    committed: Nanos,
    next_event: Option<Nanos>,
    running: bool,
    queued: bool,
}

struct Sched {
    chan: Vec<ChanState>,
    lane: Vec<LaneSched>,
    ready: VecDeque<usize>,
    active: usize,
    done: bool,
    stats: ExecStats,
}

struct LaneSlot<M> {
    model: Mutex<Box<dyn LaneModel<M>>>,
    inbox: Mailbox<M>,
    in_channels: Vec<u32>,
    out_channels: Vec<u32>,
}

/// Wakes the whole fleet on a worker panic so `thread::scope` can join
/// and propagate instead of hanging the remaining workers.
struct PanicFence<'a> {
    sched: &'a Mutex<Sched>,
    cv: &'a Condvar,
}

impl Drop for PanicFence<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.sched.lock().done = true;
            self.cv.notify_all();
        }
    }
}

/// The sharded parallel executor.
pub struct Executor<M: Send + 'static> {
    topo: Topology,
    slots: Vec<LaneSlot<M>>,
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl<M: Send + 'static> Executor<M> {
    /// Builds an executor over `topo`; `models[i]` is the model for
    /// `LaneId(i)`.
    ///
    /// # Panics
    /// Panics if the model count does not match the topology.
    pub fn new(topo: Topology, models: Vec<Box<dyn LaneModel<M>>>) -> Self {
        assert_eq!(
            models.len(),
            topo.lane_count(),
            "one model per topology lane"
        );
        let n = topo.lane_count();
        let mut slots: Vec<LaneSlot<M>> = models
            .into_iter()
            .map(|model| LaneSlot {
                model: Mutex::new(model),
                inbox: Mailbox::new(),
                in_channels: Vec::new(),
                out_channels: Vec::new(),
            })
            .collect();
        for (idx, spec) in topo.channels().iter().enumerate() {
            slots[spec.dst.0 as usize].in_channels.push(idx as u32);
            slots[spec.src.0 as usize].out_channels.push(idx as u32);
        }
        let lane = (0..n)
            .map(|i| LaneSched {
                committed: Nanos::ZERO,
                next_event: slots[i].model.lock().next_event(),
                running: false,
                queued: false,
            })
            .collect::<Vec<_>>();
        // Initial promises: nothing has run, so the input horizon of
        // every lane is zero.
        let chan = topo
            .channels()
            .iter()
            .map(|spec| {
                let ne = lane[spec.src.0 as usize].next_event;
                ChanState {
                    spec: *spec,
                    clock: promise(ne, Nanos::ZERO, spec),
                    next_seq: 0,
                }
            })
            .collect();
        Executor {
            topo,
            slots,
            sched: Mutex::new(Sched {
                chan,
                lane,
                ready: VecDeque::new(),
                active: 0,
                done: false,
                stats: ExecStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Runs the fleet to quiescence on `workers` threads (clamped to at
    /// least 1), seals every mailbox, finalizes every lane in order, and
    /// returns the (diagnostic) counters.
    ///
    /// # Panics
    /// Propagates lane panics; traps on promise violations and on
    /// executor stalls (both indicate a broken `reaction`/lookahead
    /// declaration).
    pub fn run(&mut self, workers: usize) -> ExecStats {
        let workers = workers.max(1);
        {
            // Seed the ready queue with every lane that has work.
            let mut s = self.sched.lock();
            for l in 0..self.slots.len() {
                self.maybe_enqueue(&mut s, l);
            }
            self.check_done(&mut s);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    std::thread::Builder::new()
                        .name(format!("fleet-worker-{w}"))
                        .spawn_scoped(scope, || self.worker())
                        .expect("failed to spawn fleet worker")
                })
                .collect();
            // Join by hand so a lane panic propagates with its own
            // payload (auto-join would replace it with a generic one).
            let mut first_panic = None;
            for h in handles {
                if let Err(p) = h.join() {
                    first_panic.get_or_insert(p);
                }
            }
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
        });
        let stats = {
            let s = self.sched.lock();
            assert!(s.done, "fleet workers exited before quiescence");
            s.stats
        };
        for slot in &self.slots {
            slot.inbox.seal();
        }
        for slot in &mut self.slots {
            slot.model.get_mut().finalize();
        }
        stats
    }

    /// Consumes the executor, returning the lane models (in lane order)
    /// for result extraction.
    pub fn into_models(self) -> Vec<Box<dyn LaneModel<M>>> {
        self.slots
            .into_iter()
            .map(|s| s.model.into_inner())
            .collect()
    }

    fn worker(&self) {
        let _fence = PanicFence {
            sched: &self.sched,
            cv: &self.cv,
        };
        let mut s = self.sched.lock();
        loop {
            if s.done {
                return;
            }
            let Some(l) = s.ready.pop_front() else {
                if s.active == 0 {
                    // Nothing queued and nothing running: either the
                    // fleet is quiesced, or progress stalled. Sweep all
                    // lanes; conservative theory says the sweep finds
                    // work whenever the fleet is not done, so an empty
                    // sweep here is a model bug (bad lookahead or
                    // reaction declaration).
                    self.check_done(&mut s);
                    if s.done {
                        return;
                    }
                    let mut found = false;
                    for l in 0..self.slots.len() {
                        found |= self.maybe_enqueue(&mut s, l);
                    }
                    if !found {
                        panic!(
                            "fleet executor stalled: no lane is runnable but the fleet \
                             has pending work (inconsistent lookahead/reaction model?)"
                        );
                    }
                } else {
                    self.cv.wait(&mut s);
                }
                continue;
            };
            s.lane[l].queued = false;
            if s.lane[l].running {
                continue;
            }
            let horizon = self.horizon_of(&s, l);
            let committed = s.lane[l].committed;
            let due_msg = self.slots[l].inbox.next_at().is_some_and(|t| t < horizon);
            if horizon <= committed && !due_msg {
                continue; // stale queue entry
            }
            s.lane[l].running = true;
            s.active += 1;
            drop(s);

            let mut out = Vec::new();
            let ne = {
                let mut model = self.slots[l].model.lock();
                model.step(&self.slots[l].inbox, horizon, &mut out);
                model.next_event()
            };
            if let Some(t) = ne {
                assert!(
                    t >= horizon,
                    "lane {l} reported next_event {t} below its stepped horizon {horizon}"
                );
            }

            s = self.sched.lock();
            s.stats.steps += 1;
            s.lane[l].running = false;
            s.active -= 1;
            s.lane[l].committed = committed.max(horizon);
            s.lane[l].next_event = ne;
            for m in out {
                self.deliver(&mut s, l, committed, horizon, m);
            }
            self.refresh_promises(&mut s, l, horizon);
            self.maybe_enqueue(&mut s, l);
            self.check_done(&mut s);
        }
    }

    /// Safe horizon of lane `l`: minimum inbound channel clock
    /// (`Nanos::MAX` for a pure source lane).
    fn horizon_of(&self, s: &Sched, l: usize) -> Nanos {
        self.slots[l]
            .in_channels
            .iter()
            .map(|&c| s.chan[c as usize].clock)
            .min()
            .unwrap_or(Nanos::MAX)
    }

    /// Validates and delivers one outbound message, assigning its
    /// per-channel sequence number in virtual send order.
    fn deliver(&self, s: &mut Sched, src: usize, committed: Nanos, horizon: Nanos, m: OutMsg<M>) {
        let c = m.channel.0 as usize;
        assert!(c < s.chan.len(), "send on unknown channel {:?}", m.channel);
        let spec = s.chan[c].spec;
        assert_eq!(
            spec.src,
            LaneId(src as u32),
            "lane {src} sent on channel {:?} it does not own",
            m.channel
        );
        assert!(
            m.sent_at >= committed && m.sent_at < horizon,
            "lane {src} sent at {} outside its step window [{committed}, {horizon})",
            m.sent_at
        );
        let deliver_at = m.sent_at.saturating_add(spec.port.lookahead);
        assert!(
            deliver_at >= s.chan[c].clock,
            "promise violation on channel {:?} ({}): delivery at {deliver_at} undercuts \
             the promised clock {} — reaction/lookahead declaration is wrong",
            m.channel,
            spec.port.name,
            s.chan[c].clock
        );
        let seq = s.chan[c].next_seq;
        s.chan[c].next_seq += 1;
        let accepted = self.slots[spec.dst.0 as usize].inbox.post(Envelope {
            at: deliver_at,
            channel: m.channel.0,
            seq,
            msg: m.msg,
        });
        assert!(accepted, "delivery into a sealed inbox (executor bug)");
        s.stats.delivered += 1;
        self.maybe_enqueue(s, spec.dst.0 as usize);
    }

    /// Recomputes the promises of `src`'s outbound channels after a
    /// step to `horizon`, waking receivers whose horizon grew.
    fn refresh_promises(&self, s: &mut Sched, src: usize, horizon: Nanos) {
        let ne = s.lane[src].next_event;
        for i in 0..self.slots[src].out_channels.len() {
            let c = self.slots[src].out_channels[i] as usize;
            let p = promise(ne, horizon, &s.chan[c].spec);
            if p > s.chan[c].clock {
                s.chan[c].clock = p;
                let dst = s.chan[c].spec.dst.0 as usize;
                self.maybe_enqueue(s, dst);
            }
        }
    }

    /// Queues lane `l` if it has work (horizon beyond committed time, or
    /// a due message). Returns whether it was queued.
    fn maybe_enqueue(&self, s: &mut Sched, l: usize) -> bool {
        if s.lane[l].queued || s.lane[l].running {
            return false;
        }
        let horizon = self.horizon_of(s, l);
        let due_msg = self.slots[l].inbox.next_at().is_some_and(|t| t < horizon);
        if horizon > s.lane[l].committed || due_msg {
            s.lane[l].queued = true;
            s.ready.push_back(l);
            self.cv.notify_one();
            true
        } else {
            false
        }
    }

    /// The fleet is done when nothing runs, no lane has a pending local
    /// event, and every inbox is empty. The ready queue is deliberately
    /// ignored: promise refreshes re-queue lanes for pure horizon
    /// advancement, and if no lane anywhere holds an event, that null
    /// work can never create one — waiting for the queue to drain would
    /// instead creep every clock toward `Nanos::MAX` forever.
    fn check_done(&self, s: &mut Sched) {
        if s.done || s.active > 0 {
            return;
        }
        let idle = s.lane.iter().all(|l| l.next_event.is_none())
            && self.slots.iter().all(|slot| slot.inbox.is_empty());
        if idle {
            s.done = true;
            self.cv.notify_all();
        }
    }

    /// The topology this executor runs.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

/// The Chandy–Misra output promise for one channel after a step:
/// earliest possible future send is bounded by the lane's next local
/// event and (for input-coupled edges) its input horizon plus the
/// declared reaction; delivery adds the port lookahead.
fn promise(next_event: Option<Nanos>, input_horizon: Nanos, spec: &ChannelSpec) -> Nanos {
    let ne = next_event.unwrap_or(Nanos::MAX);
    let reaction = spec
        .reaction
        .map_or(Nanos::MAX, |r| input_horizon.saturating_add(r));
    ne.min(reaction).saturating_add(spec.port.lookahead)
}
