//! Sim-backed lane runtime.
//!
//! [`Lane`] wraps a [`Simulation`] (the lane's private timeline, with
//! its own actors) plus a self-timer queue and a message handler, and
//! implements [`LaneModel`] so the executor can drive it. It owns the
//! deterministic merge: inbound envelopes and due self-timers are
//! dispatched one at a time in `(at, channel, seq)` order — self-timers
//! use the reserved channel [`SELF_CHANNEL`], so at equal times real
//! channel traffic is handled first, then timers in arm order — and
//! before each dispatch the inner simulation is advanced *through* the
//! event time. The inner engine therefore sees the exact same event
//! sequence no matter how the executor chunks horizons, which is what
//! makes worker count invisible to virtual-time results.

use std::sync::Arc;

use bypassd_sim::{Envelope, Mailbox, Nanos, Simulation};
use parking_lot::Mutex;

use crate::exec::{LaneModel, OutMsg, SELF_CHANNEL};
use crate::topo::ChannelId;

/// One dispatched lane event: a cross-lane message or a self-timer.
#[derive(Debug)]
pub struct Event<M> {
    /// Virtual time of the event on the lane's timeline.
    pub at: Nanos,
    /// Originating channel, or `None` for a self-timer.
    pub channel: Option<ChannelId>,
    /// Payload.
    pub msg: M,
}

struct HandleState<M> {
    sends: Vec<OutMsg<M>>,
    timer_seq: u64,
}

struct HandleInner<M> {
    timers: Mailbox<M>,
    state: Mutex<HandleState<M>>,
}

/// Cloneable handle through which handlers *and lane actors* arm
/// self-timers and send cross-lane messages.
///
/// Safe to use from actor threads: the lane's conductor runs exactly
/// one actor at a time, so arm/send order is virtual-time order and
/// stays deterministic.
pub struct LaneHandle<M> {
    inner: Arc<HandleInner<M>>,
}

impl<M> Clone for LaneHandle<M> {
    fn clone(&self) -> Self {
        LaneHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send> LaneHandle<M> {
    /// Schedules `msg` to be dispatched to the lane's handler at `at`.
    /// `at` must not lie in the lane's past.
    pub fn arm(&self, at: Nanos, msg: M) {
        let seq = {
            let mut st = self.inner.state.lock();
            let s = st.timer_seq;
            st.timer_seq += 1;
            s
        };
        let accepted = self.inner.timers.post(Envelope {
            at,
            channel: SELF_CHANNEL,
            seq,
            msg,
        });
        assert!(accepted, "self-timer armed after lane finalization");
    }

    /// Queues a cross-lane send decided at `sent_at`, which must be the
    /// *current* time — an actor passes `ctx.now()`, a handler passes
    /// the event time. To send later, [`LaneHandle::arm`] a self-timer
    /// and send when it fires: a future `sent_at` could cross the step
    /// horizon, and the executor traps sends outside the step window.
    /// Delivery happens at `sent_at + lookahead` of the channel's port.
    pub fn send(&self, sent_at: Nanos, channel: ChannelId, msg: M) {
        self.inner.state.lock().sends.push(OutMsg {
            sent_at,
            channel,
            msg,
        });
    }
}

/// A lane whose local world is a private [`Simulation`].
pub struct Lane<M: Send + 'static> {
    sim: Simulation,
    handle: LaneHandle<M>,
    #[allow(clippy::type_complexity)]
    handler: Box<dyn FnMut(Event<M>, &LaneHandle<M>) + Send>,
}

impl<M: Send + 'static> Lane<M> {
    /// Creates a lane with the given cross-lane/timer event handler.
    /// Spawn lane actors on [`Lane::sim`] before handing the lane to
    /// the executor.
    pub fn new<F>(handler: F) -> Self
    where
        F: FnMut(Event<M>, &LaneHandle<M>) + Send + 'static,
    {
        Lane {
            sim: Simulation::new(),
            handle: LaneHandle {
                inner: Arc::new(HandleInner {
                    timers: Mailbox::new(),
                    state: Mutex::new(HandleState {
                        sends: Vec::new(),
                        timer_seq: 0,
                    }),
                }),
            },
            handler: Box::new(handler),
        }
    }

    /// The lane's private simulation (for spawning actors).
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// A handle for arming timers and sending across lanes.
    pub fn handle(&self) -> LaneHandle<M> {
        self.handle.clone()
    }
}

impl<M: Send + 'static> LaneModel<M> for Lane<M> {
    fn step(&mut self, inbox: &Mailbox<M>, horizon: Nanos, out: &mut Vec<OutMsg<M>>) {
        loop {
            // Earliest due event across the inbox and self-timers, in
            // (at, channel, seq) merge order. Re-peeked every iteration:
            // a handler may arm a timer at the current time, and the
            // conservative horizon guarantees no *new* inbox envelope
            // below `horizon` can appear mid-step.
            let next_in = inbox.peek_key().filter(|k| k.0 < horizon);
            let next_tm = self
                .handle
                .inner
                .timers
                .peek_key()
                .filter(|k| k.0 < horizon);
            let take_timer = match (next_in, next_tm) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(i), Some(t)) => t < i,
            };
            let env = if take_timer {
                self.handle.inner.timers.drain_next_below(horizon)
            } else {
                inbox.drain_next_below(horizon)
            }
            .expect("peeked envelope vanished");
            // Local activity up to and including the event time runs
            // first, so the handler observes a lane state independent
            // of horizon chunking.
            self.sim.run_until(env.at);
            let channel = if env.channel == SELF_CHANNEL {
                None
            } else {
                Some(ChannelId(env.channel))
            };
            (self.handler)(
                Event {
                    at: env.at,
                    channel,
                    msg: env.msg,
                },
                &self.handle,
            );
        }
        // Events at exactly `horizon` belong to the next step (a
        // message may still arrive at that instant), so local activity
        // stops one nanosecond short.
        self.sim.run_until(horizon.saturating_sub(Nanos(1)));
        out.append(&mut self.handle.inner.state.lock().sends);
    }

    fn next_event(&self) -> Option<Nanos> {
        match (self.sim.next_wake(), self.handle.inner.timers.next_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    fn finalize(&mut self) {
        self.handle.inner.timers.seal();
        let status = self.sim.run_until(Nanos::MAX);
        assert!(
            status.quiesced(),
            "lane failed to quiesce at finalization: {status:?}"
        );
        self.sim.join_finished();
    }
}
