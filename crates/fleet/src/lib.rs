//! # bypassd-fleet
//!
//! Sharded parallel discrete-event execution for fleet-scale BypassD
//! scenarios: the simulation is partitioned into per-device (or
//! per-control-plane) *event lanes*, each advancing its own virtual
//! timeline on a worker thread, with conservative-lookahead
//! synchronization (Chandy–Misra style null messages) at explicitly
//! declared cross-shard ports — doorbell rings, completion posts, IOMMU
//! shootdowns, QoS pressure bits. The natural lookahead floor is the
//! modeled PCIe round trip (~345 ns): nothing crosses a shard boundary
//! faster than the link the real hardware would use.
//!
//! Determinism is load-bearing: for a fixed seed, virtual-time results
//! and report fingerprints are bit-identical whether the fleet runs on
//! 1, 2, or N workers. See `DESIGN.md` §15 for the lane partition, the
//! lookahead proof sketch, and the determinism argument.
//!
//! ## Pieces
//!
//! * [`Topology`] — static lanes + lookahead-annotated channels.
//! * [`Executor`] — the conservative scheduler (worker pool, channel
//!   clocks, promise validation, quiescence detection).
//! * [`Lane`] — a [`LaneModel`] whose local world is a private
//!   `bypassd_sim::Simulation` with its own actors and self-timers.
//!
//! The full-stack fleet scenario (10k+ `UserProcess`es over multiple
//! simulated SSDs with QoS) lives in `bypassd::fleet`; this crate is
//! scenario-agnostic.
//!
//! ## Example: a deterministic two-lane ping-pong
//!
//! Sends always carry the *current* event time; anything later is
//! expressed as a self-timer (`arm`), which the executor folds into the
//! lane's clock promises. Here each side reacts to a ping 100 ns after
//! receiving it (hence `reaction = 100ns` on both edges):
//!
//! ```rust
//! use bypassd_fleet::{Event, Executor, Lane, LaneHandle, Topology};
//! use bypassd_sim::{Nanos, Port};
//!
//! let mut topo = Topology::new();
//! let a = topo.add_lane();
//! let b = topo.add_lane();
//! let ab = topo.add_channel(a, b, Port::new("ping", Nanos(345)), Some(Nanos(100)));
//! let ba = topo.add_channel(b, a, Port::new("pong", Nanos(345)), Some(Nanos(100)));
//!
//! let bounce = move |out| {
//!     move |ev: Event<u32>, h: &LaneHandle<u32>| match ev.channel {
//!         // Inbound ping: schedule our reply 100 ns from now.
//!         Some(_) if ev.msg > 0 => h.arm(ev.at + Nanos(100), ev.msg),
//!         Some(_) => {}
//!         // Reply timer due: send at the current time.
//!         None => h.send(ev.at, out, ev.msg - 1),
//!     }
//! };
//! let lane_a = Lane::new(bounce(ab));
//! let lane_b = Lane::new(bounce(ba));
//! lane_a.handle().arm(Nanos::ZERO, 5u32); // kick off: first ping carries 4
//!
//! let mut exec = Executor::new(topo, vec![Box::new(lane_a), Box::new(lane_b)]);
//! let stats = exec.run(2);
//! assert_eq!(stats.delivered, 5); // counters 4,3,2,1,0 then silence
//! ```

pub mod exec;
pub mod lane;
pub mod topo;

pub use exec::{ExecStats, Executor, LaneModel, OutMsg, SELF_CHANNEL};
pub use lane::{Event, Lane, LaneHandle};
pub use topo::{ChannelId, ChannelSpec, LaneId, Topology};

/// Worker-thread count for fleet runs: `BYPASSD_FLEET_WORKERS` if set
/// (clamped to at least 1), else `default`.
///
/// Reading an env var is configuration, not simulated time — results
/// are bit-identical for every value; only wall-clock changes.
pub fn workers_from_env(default: usize) -> usize {
    match std::env::var("BYPASSD_FLEET_WORKERS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(default).max(1),
        Err(_) => default.max(1),
    }
}
