//! # bypassd-fio
//!
//! A fio-style workload generator (the paper uses fio [8] for all of
//! §6.3's microbenchmarks): synchronous jobs at queue depth 1, random or
//! sequential, read/write/mixed, with per-op latency histograms and
//! aggregate throughput. Multiple jobs — possibly different backends and
//! processes — run in **one** simulation so they contend for the device,
//! which is what the sharing experiments (Figs. 10–12) measure.

use std::sync::Arc;

use parking_lot::Mutex;

use bypassd::System;
use bypassd_backends::BackendFactory;
use bypassd_sim::rng::Rng;
use bypassd_sim::stats::Throughput;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use bypassd_trace::Histogram;

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RwMode {
    /// Sequential reads.
    Read,
    /// Sequential writes.
    Write,
    /// Uniform-random reads.
    RandRead,
    /// Uniform-random writes.
    RandWrite,
    /// Random mix; the field is the read fraction.
    RandRw(f64),
}

impl RwMode {
    fn is_read(self, rng: &mut Rng) -> bool {
        match self {
            RwMode::Read | RwMode::RandRead => true,
            RwMode::Write | RwMode::RandWrite => false,
            RwMode::RandRw(p) => rng.gen_bool(p),
        }
    }

    fn is_random(self) -> bool {
        matches!(
            self,
            RwMode::RandRead | RwMode::RandWrite | RwMode::RandRw(_)
        )
    }
}

/// One fio job (one process; `threads` workers inside it).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Label for reports.
    pub name: String,
    /// Access pattern.
    pub mode: RwMode,
    /// Block size in bytes.
    pub block_size: u64,
    /// File path; with `per_thread_files`, `-<tid>` is appended.
    pub file: String,
    /// File size in bytes.
    pub file_size: u64,
    /// Worker threads.
    pub threads: usize,
    /// Measured operations per thread.
    pub ops_per_thread: u64,
    /// Unmeasured warm-up operations per thread.
    pub warmup_ops: u64,
    /// Give each thread its own file (the paper's multi-writer setup).
    pub per_thread_files: bool,
    /// RNG seed.
    pub seed: u64,
    /// Start offset into virtual time (staggered arrivals).
    pub start_at: Nanos,
}

impl JobSpec {
    /// A 4 KB random-read job with sane defaults.
    pub fn randread_4k(file: &str, file_size: u64) -> Self {
        JobSpec {
            name: "randread-4k".into(),
            mode: RwMode::RandRead,
            block_size: 4096,
            file: file.into(),
            file_size,
            threads: 1,
            ops_per_thread: 2000,
            warmup_ops: 32,
            per_thread_files: false,
            seed: 42,
            start_at: Nanos::ZERO,
        }
    }
}

/// Aggregated result of one job.
#[derive(Debug)]
pub struct JobResult {
    /// The job's label plus backend name.
    pub label: String,
    /// Per-op completion latency.
    pub latency: Histogram,
    /// Ops/bytes completed (measured ops only).
    pub throughput: Throughput,
    /// Wall (virtual) time of the measured phase across threads.
    pub elapsed: Nanos,
}

impl JobResult {
    /// Mean latency.
    pub fn mean_latency(&self) -> Nanos {
        self.latency.mean()
    }

    /// Bandwidth in GB/s.
    pub fn gbps(&self) -> f64 {
        self.throughput.gb_per_sec(self.elapsed)
    }

    /// Bandwidth in MB/s.
    pub fn mbps(&self) -> f64 {
        self.throughput.mb_per_sec(self.elapsed)
    }

    /// Thousands of IOPS.
    pub fn kiops(&self) -> f64 {
        self.throughput.kops_per_sec(self.elapsed)
    }
}

struct ThreadOutcome {
    hist: Histogram,
    tp: Throughput,
    start: Nanos,
    end: Nanos,
}

/// Runs several jobs concurrently in one simulation. Files are created
/// and populated (untimed) before the clock starts.
pub fn run_jobs(system: &System, jobs: Vec<(Arc<dyn BackendFactory>, JobSpec)>) -> Vec<JobResult> {
    // A fresh simulation starts at t=0: drop any previous run's device
    // backlog.
    system.reset_virtual_time();
    // Setup: populate every file.
    for (_, spec) in &jobs {
        let paths: Vec<String> = if spec.per_thread_files {
            (0..spec.threads)
                .map(|t| format!("{}-{t}", spec.file))
                .collect()
        } else {
            vec![spec.file.clone()]
        };
        for p in paths {
            system
                .fs()
                .populate(&p, spec.file_size, 0x5A)
                .expect("populate failed");
        }
    }

    let sim = Simulation::new();
    let mut collectors: Vec<(String, Arc<Mutex<Vec<ThreadOutcome>>>)> = Vec::new();
    for (job_idx, (factory, spec)) in jobs.into_iter().enumerate() {
        let label = format!("{}/{}", factory.kind().label(), spec.name);
        let sink: Arc<Mutex<Vec<ThreadOutcome>>> = Arc::new(Mutex::new(Vec::new()));
        collectors.push((label, Arc::clone(&sink)));
        for tid in 0..spec.threads {
            let factory = Arc::clone(&factory);
            let spec = spec.clone();
            let sink = Arc::clone(&sink);
            let name = format!("j{job_idx}t{tid}");
            sim.spawn_at(spec.start_at, &name, move |ctx| {
                let mut backend = factory.make_thread();
                let path = if spec.per_thread_files {
                    format!("{}-{tid}", spec.file)
                } else {
                    spec.file.clone()
                };
                let writable = !matches!(spec.mode, RwMode::Read | RwMode::RandRead);
                let h = backend
                    .open(ctx, &path, writable)
                    .expect("backend open failed");
                let mut rng = Rng::new(spec.seed ^ (0x9E3779B9 * (tid as u64 + 1)));
                let blocks = (spec.file_size / spec.block_size).max(1);
                let mut buf = vec![0u8; spec.block_size as usize];
                let mut hist = Histogram::new();
                let mut tp = Throughput::new();
                let mut seq = 0u64;
                let mut start = Nanos::ZERO;
                for op in 0..spec.warmup_ops + spec.ops_per_thread {
                    if op == spec.warmup_ops {
                        start = ctx.now();
                    }
                    let idx = if spec.mode.is_random() {
                        rng.gen_range(blocks)
                    } else {
                        let i = seq % blocks;
                        seq += 1;
                        i
                    };
                    let offset = idx * spec.block_size;
                    let t0 = ctx.now();
                    if spec.mode.is_read(&mut rng) {
                        backend
                            .pread(ctx, h, &mut buf, offset)
                            .expect("pread failed");
                    } else {
                        buf.fill(op as u8);
                        backend.pwrite(ctx, h, &buf, offset).expect("pwrite failed");
                    }
                    if op >= spec.warmup_ops {
                        hist.record(ctx.now() - t0);
                        tp.record(spec.block_size);
                    }
                }
                let end = ctx.now();
                let _ = backend.close(ctx, h);
                sink.lock().push(ThreadOutcome {
                    hist,
                    tp,
                    start,
                    end,
                });
            });
        }
    }
    sim.run();

    collectors
        .into_iter()
        .map(|(label, sink)| {
            let outcomes = sink.lock();
            let mut latency = Histogram::new();
            let mut throughput = Throughput::new();
            let mut first = Nanos::MAX;
            let mut last = Nanos::ZERO;
            for o in outcomes.iter() {
                latency.merge(&o.hist);
                throughput.merge(&o.tp);
                first = first.min(o.start);
                last = last.max(o.end);
            }
            JobResult {
                label,
                latency,
                throughput,
                elapsed: last.saturating_sub(first),
            }
        })
        .collect()
}

/// Convenience: one job, one backend.
pub fn run_job(system: &System, factory: Arc<dyn BackendFactory>, spec: JobSpec) -> JobResult {
    run_jobs(system, vec![(factory, spec)])
        .into_iter()
        .next()
        .expect("job produced no result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bypassd_backends::{make_factory, BackendKind};

    fn sys() -> System {
        System::builder().capacity(2 << 30).build()
    }

    fn spec(mode: RwMode, bs: u64, threads: usize, ops: u64) -> JobSpec {
        JobSpec {
            name: "t".into(),
            mode,
            block_size: bs,
            file: "/fio".into(),
            file_size: 64 << 20,
            threads,
            ops_per_thread: ops,
            warmup_ops: 8,
            per_thread_files: false,
            seed: 7,
            start_at: Nanos::ZERO,
        }
    }

    #[test]
    fn op_counts_and_bytes_add_up() {
        let s = sys();
        let f = make_factory(BackendKind::Bypassd, &s, 0, 0);
        let r = run_job(&s, f, spec(RwMode::RandRead, 4096, 2, 50));
        assert_eq!(r.throughput.ops, 100);
        assert_eq!(r.throughput.bytes, 100 * 4096);
        assert_eq!(r.latency.count(), 100);
        assert!(r.elapsed > Nanos::ZERO);
    }

    #[test]
    fn bypassd_faster_than_sync_in_one_run() {
        let s = sys();
        let r_sync = run_job(
            &s,
            make_factory(BackendKind::Sync, &s, 0, 0),
            spec(RwMode::RandRead, 4096, 1, 200),
        );
        let r_byp = run_job(
            &s,
            make_factory(BackendKind::Bypassd, &s, 0, 0),
            spec(RwMode::RandRead, 4096, 1, 200),
        );
        assert!(r_byp.mean_latency() < r_sync.mean_latency());
        assert!(r_byp.kiops() > r_sync.kiops());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let s = sys();
            let f = make_factory(BackendKind::Bypassd, &s, 0, 0);
            let r = run_job(&s, f, spec(RwMode::RandRw(0.5), 4096, 2, 64));
            (r.throughput.ops, r.mean_latency(), r.elapsed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_process_sharing_is_fair() {
        let s = sys();
        let mut jobs = Vec::new();
        for i in 0..4 {
            let mut sp = spec(RwMode::RandWrite, 4096, 1, 150);
            sp.file = format!("/w{i}");
            sp.name = format!("w{i}");
            jobs.push((make_factory(BackendKind::Bypassd, &s, 0, 0), sp));
        }
        let results = run_jobs(&s, jobs);
        let rates: Vec<f64> = results.iter().map(|r| r.kiops()).collect();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.3,
            "unfair sharing across processes: {rates:?}"
        );
    }

    #[test]
    fn sequential_mode_walks_the_file() {
        let s = sys();
        let f = make_factory(BackendKind::Sync, &s, 0, 0);
        let r = run_job(&s, f, spec(RwMode::Read, 131_072, 1, 64));
        assert_eq!(r.throughput.ops, 64);
        // 128KB sequential reads: bandwidth should be well above the 4KB
        // point.
        assert!(r.gbps() > 1.0, "seq 128KB bandwidth = {}", r.gbps());
    }

    #[test]
    fn per_thread_files_created() {
        let s = sys();
        let mut sp = spec(RwMode::RandWrite, 4096, 3, 20);
        sp.per_thread_files = true;
        sp.file = "/ptf".into();
        let f = make_factory(BackendKind::Sync, &s, 0, 0);
        let r = run_job(&s, f, sp);
        assert_eq!(r.throughput.ops, 60);
        assert!(s.fs().lookup("/ptf-0").is_ok());
        assert!(s.fs().lookup("/ptf-2").is_ok());
    }
}
