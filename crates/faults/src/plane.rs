//! The fault plane: a deterministic interposer on a device's media writes.
//!
//! A [`FaultPlane`] sits between the NVMe command processor and the backing
//! sector store. Every write — timed queue I/O, maintenance `write_raw`,
//! zeroing — passes through [`FaultPlane::on_write`], which assigns it a
//! monotone **sequence number**, tracks the virtual-time high-water mark,
//! optionally records it into a schedule, and returns a verdict: persist,
//! drop (power already out), or persist only a subset of its sectors (a
//! torn write).
//!
//! ## Crash model
//!
//! A [`Cut`] describes one power-loss scenario relative to the global write
//! sequence:
//!
//! * every write with `seq >= cut_seq` is lost (power is out from there on);
//! * `drop_before` lists additional earlier writes that were still sitting
//!   in the device's volatile write cache and are lost too (reordering) —
//!   the campaign enumerator only picks seqs after the last flush barrier,
//!   matching a cache that is empty after every FLUSH completes;
//! * `tear` optionally tears one write at sector granularity: a prefix, or
//!   a seeded scatter of its sectors, persists.
//!
//! The **durable horizon** of a cut is the sequence number below which every
//! write persisted. Workloads record [`FaultPlane::mark`] checkpoints (e.g.
//! after each `fsync` returns) and recovery checks may assert exactly the
//! marks below the horizon — the fsync contract under power loss.
//!
//! ## Legacy `Ext4::crash()` shim
//!
//! The old coarse crash switch let journal writes persist while dropping
//! home-location writes. `persist_ranges` reproduces that: LBA ranges that
//! keep persisting even after the cut fires.

use std::sync::atomic::{AtomicBool, Ordering};

use bypassd_hw::types::Lba;
use bypassd_sim::rng::fnv1a_64;
use bypassd_sim::time::Nanos;
use parking_lot::Mutex;

/// Which device path issued a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// A timed queue command (Write / WriteZeroes data path).
    Timed,
    /// Maintenance path (`write_raw`): journal, superblock, inode table.
    Raw,
    /// Maintenance zeroing (`zero_raw`): newly allocated blocks.
    Zeroes,
    /// A FLUSH barrier (no data; bounds reorder windows).
    Flush,
}

/// One observed write, as recorded into a campaign schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEvent {
    /// Global sequence number (all kinds share one counter).
    pub seq: u64,
    /// First sector written (zero for [`WriteKind::Flush`]).
    pub lba: Lba,
    /// Sector count (zero for [`WriteKind::Flush`]).
    pub sectors: u32,
    /// Virtual-time high-water mark when the write was observed. Raw
    /// writes carry no time of their own; they inherit the mark.
    pub time: Nanos,
    /// Issuing path.
    pub kind: WriteKind,
}

/// Partial-persistence plan for a single torn write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tear {
    /// Sequence number of the write to tear.
    pub seq: u64,
    /// How many of its sectors persist.
    pub keep_sectors: u32,
    /// Zero: the persisted sectors are a prefix (head made it to media).
    /// Non-zero: a seeded scatter — `keep_sectors` sectors chosen by
    /// hashing `(salt, sector_index)` persist, modelling out-of-order
    /// media programming within one command.
    pub scatter_salt: u64,
}

impl Tear {
    /// True if sector `i` of an `n`-sector write survives this tear.
    pub fn keeps(&self, i: u32, n: u32) -> bool {
        if self.scatter_salt == 0 {
            return i < self.keep_sectors;
        }
        // Rank sectors by hash; the `keep_sectors` smallest survive. O(n²)
        // over at most a few hundred sectors, on the cold failure path.
        let h = |j: u32| fnv1a_64(self.scatter_salt ^ (u64::from(j) << 32));
        let mine = h(i);
        let mut rank = 0u32;
        for j in 0..n {
            let hj = h(j);
            if hj < mine || (hj == mine && j < i) {
                rank += 1;
            }
        }
        rank < self.keep_sectors
    }
}

/// A fully-specified power-loss scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cut {
    /// First sequence number that does NOT persist; power is out from here.
    pub cut_seq: u64,
    /// Additional earlier seqs (sorted) lost from the volatile write cache.
    pub drop_before: Vec<u64>,
    /// At most one torn write.
    pub tear: Option<Tear>,
    /// Sector ranges `[start, end)` whose writes persist even after the
    /// cut fires (legacy `Ext4::crash()` journal-survives semantics).
    pub persist_ranges: Vec<(Lba, Lba)>,
}

impl Cut {
    /// A clean prefix cut: everything before `seq` persists, nothing after.
    pub fn at_seq(seq: u64) -> Cut {
        Cut {
            cut_seq: seq,
            ..Cut::default()
        }
    }

    /// The durable horizon: all writes with `seq < horizon` persisted
    /// completely.
    pub fn horizon(&self) -> u64 {
        let mut h = self.cut_seq;
        if let Some(&d) = self.drop_before.first() {
            h = h.min(d);
        }
        if let Some(t) = &self.tear {
            h = h.min(t.seq);
        }
        h
    }

    fn in_persist_range(&self, lba: Lba, sectors: u32) -> bool {
        self.persist_ranges
            .iter()
            .any(|&(s, e)| lba >= s && Lba(lba.0 + u64::from(sectors)) <= e)
    }
}

/// Verdict for one write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteVerdict {
    /// Apply all sectors.
    Persist,
    /// Apply nothing.
    Drop,
    /// Apply exactly the sectors whose mask bit is `true`.
    Partial(Vec<bool>),
}

/// Counters describing what the plane did, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Writes observed (all kinds, including flush barriers).
    pub writes_seen: u64,
    /// Writes fully dropped.
    pub writes_dropped: u64,
    /// Writes partially persisted.
    pub writes_torn: u64,
    /// Transient media errors injected into reads.
    pub read_errors: u64,
    /// Transient media errors injected into writes.
    pub write_errors: u64,
    /// Completions swallowed.
    pub completions_dropped: u64,
    /// True once a cut has fired (power went out at least once).
    pub cut_fired: bool,
}

#[derive(Debug, Default)]
struct PlaneInner {
    seq: u64,
    vtime: Nanos,
    powered_off: bool,
    cut: Option<Cut>,
    cut_at_time: Option<Nanos>,
    recording: bool,
    schedule: Vec<WriteEvent>,
    marks: Vec<(u64, u64)>, // (value, seq at mark time)
    horizon: Option<u64>,
    // Media-error / completion-drop injection: sorted nth-occurrence lists
    // against the matching counters.
    fail_reads: Vec<u64>,
    fail_writes: Vec<u64>,
    drop_completions: Vec<u64>,
    reads_seen: u64,
    timed_writes_seen: u64,
    completions_seen: u64,
    stats: FaultStats,
}

impl PlaneInner {
    fn fire_cut(&mut self) {
        self.powered_off = true;
        self.stats.cut_fired = true;
    }
}

/// Deterministic fault interposer for one device. See the module docs.
///
/// Cheap when idle: an inactive plane costs one relaxed atomic load per
/// write and takes no locks, so the default configuration perturbs neither
/// timing nor allocation behaviour of the hot path.
#[derive(Debug, Default)]
pub struct FaultPlane {
    active: AtomicBool,
    inner: Mutex<PlaneInner>,
}

impl FaultPlane {
    /// Creates an idle plane.
    pub fn new() -> FaultPlane {
        FaultPlane::default()
    }

    /// True if any fault machinery is engaged. The device checks this
    /// before taking the plane lock.
    #[inline]
    pub fn is_active(&self) -> bool {
        // ordering: Relaxed — gates an optional observation path only;
        // guarded state sits behind `inner`'s mutex, activation precedes I/O.
        self.active.load(Ordering::Relaxed)
    }

    /// Engages the plane: writes are sequence-numbered and verdicts apply.
    pub fn activate(&self) {
        // ordering: Relaxed — see `is_active`.
        self.active.store(true, Ordering::Relaxed);
    }

    /// Clears all state (sequence counter, schedule, marks, cut, injection
    /// plans, stats) and leaves the plane active. Campaign iterations call
    /// this before rebuilding the system so sequence numbers align across
    /// the record and replay passes.
    pub fn reset(&self) {
        *self.inner.lock() = PlaneInner::default();
        self.activate();
    }

    // ---------------------------------------------------------------- cuts

    /// Arms a cut. Panics if `drop_before` is unsorted (campaign code
    /// builds it sorted; determinism depends on a canonical form).
    pub fn arm(&self, cut: Cut) {
        assert!(
            cut.drop_before.windows(2).all(|w| w[0] < w[1]),
            "drop_before must be strictly sorted"
        );
        self.activate();
        let mut g = self.inner.lock();
        g.horizon = Some(cut.horizon());
        g.cut = Some(cut);
    }

    /// Cuts power the next time the virtual-time high-water mark reaches
    /// `t`. Everything from that write on is lost.
    pub fn cut_at_time(&self, t: Nanos) {
        self.activate();
        let mut g = self.inner.lock();
        g.cut_at_time = Some(t);
        if g.vtime >= t {
            g.horizon = Some(g.seq);
            g.fire_cut();
        }
    }

    /// Cuts power immediately, except writes inside `persist_ranges`
    /// keep persisting — the legacy `Ext4::crash()` semantics (journal
    /// region survives, home-location writes vanish).
    pub fn cut_now_except(&self, persist_ranges: Vec<(Lba, Lba)>) {
        self.activate();
        let mut g = self.inner.lock();
        g.horizon = Some(g.seq);
        g.cut = Some(Cut {
            cut_seq: g.seq,
            drop_before: Vec::new(),
            tear: None,
            persist_ranges,
        });
        g.fire_cut();
    }

    /// Restores power: disarms any cut and lets writes persist again.
    /// Recording, marks, the horizon, the schedule, and stats survive so
    /// recovery checks can still interrogate the crash. `Ext4::mount`
    /// calls this — remounting implies a power cycle.
    pub fn power_restore(&self) {
        if !self.is_active() {
            return;
        }
        let mut g = self.inner.lock();
        g.powered_off = false;
        g.cut = None;
        g.cut_at_time = None;
    }

    /// True once a cut actually dropped power.
    pub fn cut_fired(&self) -> bool {
        self.inner.lock().stats.cut_fired
    }

    /// The armed/fired cut's durable horizon, if any.
    pub fn horizon(&self) -> Option<u64> {
        self.inner.lock().horizon
    }

    // ----------------------------------------------------------- recording

    /// Starts recording the write schedule (from the current seq).
    pub fn start_recording(&self) {
        self.activate();
        let mut g = self.inner.lock();
        g.recording = true;
        g.schedule.clear();
    }

    /// Stops recording and returns the schedule.
    pub fn take_schedule(&self) -> Vec<WriteEvent> {
        let mut g = self.inner.lock();
        g.recording = false;
        std::mem::take(&mut g.schedule)
    }

    /// Records a workload checkpoint (e.g. "fsync #k returned"). A mark is
    /// durable under a cut iff every write issued before it persisted,
    /// i.e. its recorded seq is at or below the durable horizon.
    pub fn mark(&self, value: u64) {
        let mut g = self.inner.lock();
        let seq = g.seq;
        g.marks.push((value, seq));
    }

    /// Mark values whose preceding writes all persisted. With no cut
    /// armed, every mark is durable.
    pub fn durable_marks(&self) -> Vec<u64> {
        let g = self.inner.lock();
        match g.horizon {
            None => g.marks.iter().map(|&(v, _)| v).collect(),
            Some(h) => g
                .marks
                .iter()
                .filter(|&&(_, s)| s <= h)
                .map(|&(v, _)| v)
                .collect(),
        }
    }

    /// Current global write sequence number.
    pub fn seq(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> FaultStats {
        self.inner.lock().stats
    }

    // ------------------------------------------------------- device hooks

    /// Observes one write and decides its fate. `now` is `Some` for timed
    /// queue commands and `None` for maintenance writes (which inherit the
    /// virtual-time high-water mark).
    pub fn on_write(
        &self,
        lba: Lba,
        sectors: u32,
        now: Option<Nanos>,
        kind: WriteKind,
    ) -> WriteVerdict {
        let mut g = self.inner.lock();
        let seq = g.seq;
        g.seq += 1;
        if let Some(t) = now {
            g.vtime = g.vtime.max(t);
        }
        let time = g.vtime;
        if g.recording {
            g.schedule.push(WriteEvent {
                seq,
                lba,
                sectors,
                time,
                kind,
            });
        }
        g.stats.writes_seen += 1;

        // A time-armed cut converts to a seq cut at the first write at or
        // past the deadline.
        if let Some(t) = g.cut_at_time {
            if g.vtime >= t && !g.powered_off {
                g.horizon = Some(seq);
                g.fire_cut();
                g.cut_at_time = None;
                g.cut = Some(Cut::at_seq(seq));
            }
        }

        if kind == WriteKind::Flush {
            return WriteVerdict::Persist; // no data; barrier only
        }

        let verdict = match &g.cut {
            None => {
                if g.powered_off {
                    WriteVerdict::Drop
                } else {
                    WriteVerdict::Persist
                }
            }
            Some(cut) => {
                if seq >= cut.cut_seq {
                    if !g.powered_off {
                        g.fire_cut();
                    }
                    if g.cut
                        .as_ref()
                        .is_some_and(|c| c.in_persist_range(lba, sectors))
                    {
                        WriteVerdict::Persist
                    } else {
                        WriteVerdict::Drop
                    }
                } else if cut.drop_before.binary_search(&seq).is_ok() {
                    WriteVerdict::Drop
                } else if let Some(t) = cut.tear.filter(|t| t.seq == seq) {
                    let mask: Vec<bool> = (0..sectors).map(|i| t.keeps(i, sectors)).collect();
                    WriteVerdict::Partial(mask)
                } else {
                    WriteVerdict::Persist
                }
            }
        };
        match &verdict {
            WriteVerdict::Drop => g.stats.writes_dropped += 1,
            WriteVerdict::Partial(_) => g.stats.writes_torn += 1,
            WriteVerdict::Persist => {}
        }
        verdict
    }

    /// Observes a FLUSH barrier: everything issued before it is on media
    /// (unless a cut already intervened), so reorder windows close here.
    pub fn note_flush(&self, now: Nanos) {
        // Recorded as a zero-length event so campaign enumeration can see
        // barrier positions in the schedule.
        let _ = self.on_write(Lba(0), 0, Some(now), WriteKind::Flush);
    }

    /// Observes an untimed ordering barrier (e.g. the journal's
    /// commit→checkpoint wait): closes the reorder window like
    /// [`FaultPlane::note_flush`] but without advancing the virtual-time
    /// high-water mark.
    pub fn note_barrier(&self) {
        let _ = self.on_write(Lba(0), 0, None, WriteKind::Flush);
    }

    /// Advances the virtual-time high-water mark without a write.
    pub fn note_time(&self, now: Nanos) {
        let mut g = self.inner.lock();
        g.vtime = g.vtime.max(now);
        if let Some(t) = g.cut_at_time {
            if g.vtime >= t && !g.powered_off {
                g.horizon = Some(g.seq);
                g.fire_cut();
                g.cut_at_time = None;
                let seq = g.seq;
                g.cut = Some(Cut::at_seq(seq));
            }
        }
    }

    // --------------------------------------------- media errors and drops

    /// Arms transient media errors on the nth, mth, … timed **read**
    /// commands (0-based, counted from now). Must be sorted.
    pub fn fail_reads(&self, nths: Vec<u64>) {
        self.activate();
        let mut g = self.inner.lock();
        g.reads_seen = 0;
        g.fail_reads = nths;
    }

    /// Arms transient media errors on timed **write** commands.
    pub fn fail_writes(&self, nths: Vec<u64>) {
        self.activate();
        let mut g = self.inner.lock();
        g.timed_writes_seen = 0;
        g.fail_writes = nths;
    }

    /// Arms completion drops on the nth, … queue submissions.
    pub fn drop_completions(&self, nths: Vec<u64>) {
        self.activate();
        let mut g = self.inner.lock();
        g.completions_seen = 0;
        g.drop_completions = nths;
    }

    /// Called per timed data command; true if this one fails with a media
    /// error.
    pub fn take_io_error(&self, is_write: bool) -> bool {
        let mut g = self.inner.lock();
        let (n, plan) = if is_write {
            g.timed_writes_seen += 1;
            (g.timed_writes_seen - 1, &g.fail_writes)
        } else {
            g.reads_seen += 1;
            (g.reads_seen - 1, &g.fail_reads)
        };
        let hit = plan.binary_search(&n).is_ok();
        if hit {
            if is_write {
                g.stats.write_errors += 1;
            } else {
                g.stats.read_errors += 1;
            }
        }
        hit
    }

    /// Called per queue submission after processing; true if the
    /// completion should be swallowed (never posted).
    pub fn take_completion_drop(&self) -> bool {
        let mut g = self.inner.lock();
        g.completions_seen += 1;
        let hit = g
            .drop_completions
            .binary_search(&(g.completions_seen - 1))
            .is_ok();
        if hit {
            g.stats.completions_dropped += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(plane: &FaultPlane, lba: u64, sectors: u32) -> WriteVerdict {
        plane.on_write(Lba(lba), sectors, None, WriteKind::Raw)
    }

    #[test]
    fn inactive_plane_persists_everything() {
        let p = FaultPlane::new();
        assert!(!p.is_active());
        assert_eq!(ev(&p, 0, 8), WriteVerdict::Persist);
    }

    #[test]
    fn clean_cut_drops_suffix() {
        let p = FaultPlane::new();
        p.reset();
        p.arm(Cut::at_seq(2));
        assert_eq!(ev(&p, 0, 8), WriteVerdict::Persist); // seq 0
        assert_eq!(ev(&p, 8, 8), WriteVerdict::Persist); // seq 1
        assert_eq!(ev(&p, 16, 8), WriteVerdict::Drop); // seq 2: power out
        assert_eq!(ev(&p, 0, 8), WriteVerdict::Drop); // still out
        assert!(p.cut_fired());
        assert_eq!(p.horizon(), Some(2));
    }

    #[test]
    fn tear_prefix_masks_sectors() {
        let p = FaultPlane::new();
        p.reset();
        p.arm(Cut {
            cut_seq: 1,
            drop_before: Vec::new(),
            tear: Some(Tear {
                seq: 0,
                keep_sectors: 3,
                scatter_salt: 0,
            }),
            persist_ranges: Vec::new(),
        });
        match ev(&p, 0, 8) {
            WriteVerdict::Partial(mask) => {
                assert_eq!(
                    mask,
                    vec![true, true, true, false, false, false, false, false]
                );
            }
            other => panic!("expected partial, got {other:?}"),
        }
        assert_eq!(p.horizon(), Some(0));
    }

    #[test]
    fn tear_scatter_keeps_exactly_k_deterministically() {
        let t = Tear {
            seq: 0,
            keep_sectors: 5,
            scatter_salt: 0xDEAD,
        };
        let kept: Vec<u32> = (0..16).filter(|&i| t.keeps(i, 16)).collect();
        assert_eq!(kept.len(), 5);
        let kept2: Vec<u32> = (0..16).filter(|&i| t.keeps(i, 16)).collect();
        assert_eq!(kept, kept2);
        // Not a plain prefix for this salt.
        assert_ne!(kept, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reorder_drops_selected_earlier_writes() {
        let p = FaultPlane::new();
        p.reset();
        p.arm(Cut {
            cut_seq: 4,
            drop_before: vec![1, 3],
            tear: None,
            persist_ranges: Vec::new(),
        });
        assert_eq!(ev(&p, 0, 8), WriteVerdict::Persist); // 0
        assert_eq!(ev(&p, 8, 8), WriteVerdict::Drop); // 1 in cache
        assert_eq!(ev(&p, 16, 8), WriteVerdict::Persist); // 2
        assert_eq!(ev(&p, 24, 8), WriteVerdict::Drop); // 3 in cache
        assert_eq!(ev(&p, 32, 8), WriteVerdict::Drop); // 4: cut
        assert_eq!(p.horizon(), Some(1));
    }

    #[test]
    fn persist_ranges_survive_cut() {
        let p = FaultPlane::new();
        p.reset();
        p.cut_now_except(vec![(Lba(100), Lba(200))]);
        assert_eq!(ev(&p, 0, 8), WriteVerdict::Drop);
        assert_eq!(ev(&p, 100, 8), WriteVerdict::Persist);
        assert_eq!(ev(&p, 196, 8), WriteVerdict::Drop); // straddles end
        assert_eq!(ev(&p, 192, 8), WriteVerdict::Persist);
    }

    #[test]
    fn power_restore_resumes_persistence_and_keeps_marks() {
        let p = FaultPlane::new();
        p.reset();
        let _ = ev(&p, 0, 8);
        p.mark(1);
        p.arm(Cut::at_seq(1));
        let _ = ev(&p, 8, 8); // dropped
        p.mark(2);
        p.power_restore();
        assert_eq!(ev(&p, 16, 8), WriteVerdict::Persist);
        assert_eq!(p.durable_marks(), vec![1]);
        assert!(p.cut_fired());
    }

    #[test]
    fn time_cut_fires_on_high_water_mark() {
        let p = FaultPlane::new();
        p.reset();
        p.cut_at_time(Nanos(1000));
        assert_eq!(
            p.on_write(Lba(0), 8, Some(Nanos(500)), WriteKind::Timed),
            WriteVerdict::Persist
        );
        // Raw write inherits the 500 ns mark: still before the cut.
        assert_eq!(ev(&p, 8, 8), WriteVerdict::Persist);
        assert_eq!(
            p.on_write(Lba(16), 8, Some(Nanos(1200)), WriteKind::Timed),
            WriteVerdict::Drop
        );
        // All later writes, raw included, are gone.
        assert_eq!(ev(&p, 24, 8), WriteVerdict::Drop);
        assert!(p.cut_fired());
    }

    #[test]
    fn recording_captures_schedule_and_flush_barriers() {
        let p = FaultPlane::new();
        p.reset();
        p.start_recording();
        let _ = p.on_write(Lba(0), 8, Some(Nanos(10)), WriteKind::Timed);
        p.note_flush(Nanos(20));
        let _ = ev(&p, 8, 8);
        let sched = p.take_schedule();
        assert_eq!(sched.len(), 3);
        assert_eq!(sched[0].kind, WriteKind::Timed);
        assert_eq!(sched[1].kind, WriteKind::Flush);
        assert_eq!(sched[2].kind, WriteKind::Raw);
        assert_eq!(sched[2].time, Nanos(20), "raw write inherits hwm");
        assert_eq!(
            sched.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn media_error_plan_is_counted_per_kind() {
        let p = FaultPlane::new();
        p.reset();
        p.fail_reads(vec![1]);
        assert!(!p.take_io_error(false)); // read 0
        assert!(p.take_io_error(false)); // read 1 fails
        assert!(!p.take_io_error(false));
        assert!(!p.take_io_error(true)); // writes unaffected
        assert_eq!(p.stats().read_errors, 1);
    }

    #[test]
    fn completion_drop_plan() {
        let p = FaultPlane::new();
        p.reset();
        p.drop_completions(vec![0, 2]);
        assert!(p.take_completion_drop());
        assert!(!p.take_completion_drop());
        assert!(p.take_completion_drop());
        assert_eq!(p.stats().completions_dropped, 2);
    }

    #[test]
    fn reset_realigns_sequence_numbers() {
        let p = FaultPlane::new();
        p.reset();
        let _ = ev(&p, 0, 8);
        let _ = ev(&p, 8, 8);
        assert_eq!(p.seq(), 2);
        p.reset();
        assert_eq!(p.seq(), 0);
        assert!(p.is_active());
    }
}
