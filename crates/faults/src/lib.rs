//! # bypassd-faults
//!
//! Deterministic fault injection for the BypassD reproduction.
//!
//! The write/crash story is the least-exercised part of a kernel-bypass
//! stack: the paper's direct path is only safe if the fallback and recovery
//! paths hold under failure (§3.6 revocation, §4's metadata-only-journal
//! ext4 configuration). This crate provides the machinery to search that
//! space exhaustively inside the deterministic simulator:
//!
//! * [`plane::FaultPlane`] — a per-device interposer that observes every
//!   sector write in global order, stamps it with a sequence number and the
//!   virtual-time high-water mark, and can **cut power** at an arbitrary
//!   point (clean prefix cut, mid-write sector tear, or reorder cut that
//!   drops a seeded subset of un-flushed writes), inject transient media
//!   errors, and drop completions. Everything is bit-reproducible from a
//!   seed because the only inputs are the (deterministic) write schedule
//!   and explicit arm calls.
//! * [`campaign`] — a campaign runner: record a workload's write schedule
//!   once, enumerate crash points across every inter-write boundary plus
//!   sampled mid-write tears and reorder windows, re-execute the workload
//!   under each cut, and shrink any failure to a minimal reproducer.
//!
//! The crate deliberately depends only on `bypassd-sim` and `bypassd-hw`
//! so the device model (`bypassd-ssd`) can embed a plane without a
//! dependency cycle; filesystem-aware harnesses (mount + fsck + data
//! integrity) live upstack in `bypassd` (`CrashLab`) and implement
//! [`campaign::FaultHarness`].

pub mod campaign;
pub mod plane;

pub use campaign::{CampaignConfig, CampaignFailure, CampaignReport, CrashPoint, FaultHarness};
pub use plane::{Cut, FaultPlane, FaultStats, Tear, WriteEvent, WriteKind, WriteVerdict};
