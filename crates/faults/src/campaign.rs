//! Crash-point campaign runner: record, sweep, shrink.
//!
//! A campaign runs a workload once with recording on to learn its write
//! schedule, then re-executes it under a family of power cuts derived from
//! that schedule:
//!
//! * a **clean cut** before every write event — this covers every
//!   journal-commit boundary and every inter-write instant, because each
//!   commit record and each home-location write is its own event;
//! * sampled **mid-write tears** of multi-sector events (prefix and
//!   scattered-sector variants);
//! * **reorder cuts** that additionally drop a seeded subset of the writes
//!   issued since the last FLUSH barrier, modelling a volatile write cache
//!   that loses un-flushed data out of order.
//!
//! After each cut the harness recovers (power-cycle, remount, fsck, data
//! integrity checks) and reports pass/fail. Failures are shrunk: first the
//! point is simplified to a clean cut, then binary search finds the
//! earliest failing clean cut — a minimal reproducer to hand a human.
//!
//! Everything is derived from `CampaignConfig::seed` plus the recorded
//! schedule, so a campaign is bit-reproducible: running it twice yields
//! byte-identical reports (asserted via [`CampaignReport::fingerprint`]).

use std::fmt;
use std::sync::Arc;

use bypassd_sim::rng::{Fnv64, Rng};

use crate::plane::{Cut, FaultPlane, Tear, WriteEvent, WriteKind};

/// Harness contract: how to run one workload iteration under the plane.
///
/// The runner guarantees the call order per iteration:
/// `plane.reset()` → `prepare` → (arm cut) → `run` → `plane.power_restore()`
/// → `recover_and_check`. `prepare` must build a fresh system *sharing the
/// given plane* (so sequence numbers align across iterations) and do any
/// setup whose writes should not be crash candidates; `run` executes the
/// workload; `recover_and_check` remounts, runs fsck and data-integrity
/// checks, and describes any violation.
pub trait FaultHarness {
    /// Builds fresh state on the shared plane. Writes issued here are
    /// observed (they advance the sequence counter identically in every
    /// iteration) but are not crash-point candidates.
    fn prepare(&self, plane: &Arc<FaultPlane>);
    /// Runs the workload to completion (the plane decides what persists).
    fn run(&self, plane: &Arc<FaultPlane>);
    /// Recovers after the (possible) cut and verifies every invariant.
    fn recover_and_check(&self, plane: &Arc<FaultPlane>) -> Result<(), String>;
}

/// One crash scenario in a campaign, derived from the recorded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPoint {
    /// Clean power cut immediately before write `seq`.
    Clean { seq: u64 },
    /// Cut at `seq` where the write itself partially persists.
    Torn {
        seq: u64,
        keep_sectors: u32,
        scatter_salt: u64,
    },
    /// Cut at `cut_seq` that also loses `drop` (sorted, all after the last
    /// flush barrier) from the volatile cache.
    Reorder { cut_seq: u64, drop: Vec<u64> },
}

impl CrashPoint {
    /// The cut this point arms.
    pub fn to_cut(&self) -> Cut {
        match self {
            CrashPoint::Clean { seq } => Cut::at_seq(*seq),
            CrashPoint::Torn {
                seq,
                keep_sectors,
                scatter_salt,
            } => Cut {
                cut_seq: seq + 1,
                drop_before: Vec::new(),
                tear: Some(Tear {
                    seq: *seq,
                    keep_sectors: *keep_sectors,
                    scatter_salt: *scatter_salt,
                }),
                persist_ranges: Vec::new(),
            },
            CrashPoint::Reorder { cut_seq, drop } => Cut {
                cut_seq: *cut_seq,
                drop_before: drop.clone(),
                tear: None,
                persist_ranges: Vec::new(),
            },
        }
    }

    /// The sequence number the point cuts at (for shrinking/ordering).
    pub fn seq(&self) -> u64 {
        match self {
            CrashPoint::Clean { seq } | CrashPoint::Torn { seq, .. } => *seq,
            CrashPoint::Reorder { cut_seq, .. } => *cut_seq,
        }
    }

    fn absorb(&self, h: &mut Fnv64) {
        match self {
            CrashPoint::Clean { seq } => {
                h.write_u64(1);
                h.write_u64(*seq);
            }
            CrashPoint::Torn {
                seq,
                keep_sectors,
                scatter_salt,
            } => {
                h.write_u64(2);
                h.write_u64(*seq);
                h.write_u64(u64::from(*keep_sectors));
                h.write_u64(*scatter_salt);
            }
            CrashPoint::Reorder { cut_seq, drop } => {
                h.write_u64(3);
                h.write_u64(*cut_seq);
                for d in drop {
                    h.write_u64(*d);
                }
            }
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashPoint::Clean { seq } => write!(f, "clean cut before seq {seq}"),
            CrashPoint::Torn {
                seq,
                keep_sectors,
                scatter_salt,
            } => write!(
                f,
                "torn write at seq {seq} (keep {keep_sectors} sectors, salt {scatter_salt:#x})"
            ),
            CrashPoint::Reorder { cut_seq, drop } => {
                write!(f, "reorder cut at seq {cut_seq} dropping {drop:?}")
            }
        }
    }
}

/// Campaign parameters. All enumeration and sampling derives from `seed`.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for tear sampling, reorder subsets, and scatter salts.
    pub seed: u64,
    /// Budget: at most this many points run (deterministic stride
    /// subsample when enumeration yields more).
    pub max_points: usize,
    /// Tear variants sampled per multi-sector write event.
    pub tears_per_write: usize,
    /// Emit a reorder point at every Nth eligible write event (0 = none).
    pub reorder_stride: usize,
    /// Extra iterations allowed for shrinking each failure.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xB17_FA17,
            max_points: 400,
            tears_per_write: 2,
            reorder_stride: 4,
            shrink_budget: 12,
        }
    }
}

/// One surviving failure, with its shrunk reproducer.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The point that failed during the sweep.
    pub point: CrashPoint,
    /// The harness's description of the violation.
    pub error: String,
    /// A simpler point that still fails, if shrinking found one.
    pub shrunk: Option<CrashPoint>,
}

/// Outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the campaign derives from.
    pub seed: u64,
    /// Write events (incl. flush barriers) in the recorded schedule.
    pub schedule_len: usize,
    /// Points the enumerator produced before the budget subsample.
    pub points_enumerated: usize,
    /// Points actually executed.
    pub points_run: usize,
    /// Executed points by kind: clean cuts.
    pub clean_points: usize,
    /// Executed points by kind: mid-write tears.
    pub torn_points: usize,
    /// Executed points by kind: reorder cuts.
    pub reorder_points: usize,
    /// Failures (empty on a passing campaign).
    pub failures: Vec<CampaignFailure>,
    /// FNV digest of (seed, schedule, every point, every outcome):
    /// byte-identical across reruns of the same seed+workload.
    pub fingerprint: u64,
}

impl CampaignReport {
    /// True if every crash point recovered cleanly.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary (used by tests and EXPERIMENTS.md).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "campaign seed={:#x}: {} points ({} clean, {} torn, {} reorder) over {} write events: {}",
            self.seed,
            self.points_run,
            self.clean_points,
            self.torn_points,
            self.reorder_points,
            self.schedule_len,
            if self.passed() { "PASS" } else { "FAIL" },
        );
        for f in &self.failures {
            s.push_str(&format!("\n  FAIL at {}: {}", f.point, f.error));
            if let Some(m) = &f.shrunk {
                s.push_str(&format!("\n    shrunk to {m}"));
            }
        }
        s
    }
}

/// Enumerates crash points from a recorded schedule. Pure and
/// deterministic in (schedule, cfg).
pub fn enumerate_points(schedule: &[WriteEvent], cfg: &CampaignConfig) -> Vec<CrashPoint> {
    let mut rng = Rng::new(cfg.seed);
    let mut points = Vec::new();
    let mut last_flush_seq = schedule.first().map_or(0, |e| e.seq);
    let mut eligible = 0usize;
    for e in schedule {
        if e.kind == WriteKind::Flush {
            // Cut *at* the barrier with a seeded subset of the window
            // lost: a crash during the flush, after the device's volatile
            // cache internally reordered the un-flushed writes. This is
            // the async-commit scenario journal checksums exist for (a
            // commit record persists while a journaled block before it is
            // lost).
            if cfg.reorder_stride > 0 {
                let drop: Vec<u64> = schedule
                    .iter()
                    .filter(|w| {
                        w.kind != WriteKind::Flush && w.seq >= last_flush_seq && w.seq < e.seq
                    })
                    .map(|w| w.seq)
                    .filter(|_| rng.gen_bool(0.25))
                    .collect();
                if !drop.is_empty() {
                    points.push(CrashPoint::Reorder {
                        cut_seq: e.seq,
                        drop,
                    });
                }
            }
            last_flush_seq = e.seq + 1;
            continue;
        }
        points.push(CrashPoint::Clean { seq: e.seq });
        if e.sectors > 1 {
            let variants = cfg.tears_per_write.min(e.sectors as usize - 1);
            for v in 0..variants {
                let keep = 1 + rng.gen_range(u64::from(e.sectors) - 1) as u32;
                // Alternate prefix tears and scattered tears.
                let salt = if v % 2 == 0 { 0 } else { rng.next_u64() | 1 };
                points.push(CrashPoint::Torn {
                    seq: e.seq,
                    keep_sectors: keep,
                    scatter_salt: salt,
                });
            }
        }
        eligible += 1;
        if cfg.reorder_stride > 0 && eligible.is_multiple_of(cfg.reorder_stride) {
            // Volatile-cache loss: drop a seeded subset of the writes since
            // the last flush barrier (exclusive of the cut write itself).
            let window: Vec<u64> = schedule
                .iter()
                .filter(|w| w.kind != WriteKind::Flush && w.seq >= last_flush_seq && w.seq < e.seq)
                .map(|w| w.seq)
                .collect();
            let drop: Vec<u64> = window
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            if !drop.is_empty() {
                points.push(CrashPoint::Reorder {
                    cut_seq: e.seq,
                    drop,
                });
            }
        }
    }
    points
}

/// Deterministic stride subsample down to `max` points, preserving order.
fn subsample(points: Vec<CrashPoint>, max: usize) -> Vec<CrashPoint> {
    if points.len() <= max || max == 0 {
        return points;
    }
    let n = points.len();
    (0..max).map(|i| points[i * n / max].clone()).collect()
}

fn run_point<H: FaultHarness>(
    h: &H,
    plane: &Arc<FaultPlane>,
    cut: Option<Cut>,
) -> Result<(), String> {
    plane.reset();
    h.prepare(plane);
    if let Some(cut) = cut {
        plane.arm(cut);
    }
    h.run(plane);
    plane.power_restore();
    h.recover_and_check(plane)
}

/// Shrinks a failing point: simplify to a clean cut, then binary-search
/// the earliest failing clean-cut seq. Returns the simplest point found
/// to still fail (paired with its error), if any.
fn shrink<H: FaultHarness>(
    h: &H,
    plane: &Arc<FaultPlane>,
    point: &CrashPoint,
    error: &str,
    budget: usize,
) -> Option<(CrashPoint, String)> {
    let mut remaining = budget;

    let try_point = |p: CrashPoint, remaining: &mut usize| -> Option<String> {
        if *remaining == 0 {
            return None;
        }
        *remaining -= 1;
        run_point(h, plane, Some(p.to_cut())).err()
    };

    // Step 1: does the plain clean cut at the same seq already fail?
    let mut hi = point.seq();
    let mut best = if matches!(point, CrashPoint::Clean { .. }) {
        Some((point.clone(), error.to_owned()))
    } else {
        match try_point(CrashPoint::Clean { seq: hi }, &mut remaining) {
            Some(err) => Some((CrashPoint::Clean { seq: hi }, err)),
            None => return None, // complexity is essential; keep original
        }
    };
    // Step 2: binary descent towards the earliest failing clean cut.
    let mut lo = 0u64;
    while lo < hi && remaining > 0 {
        let mid = lo + (hi - lo) / 2;
        match try_point(CrashPoint::Clean { seq: mid }, &mut remaining) {
            Some(err) => {
                hi = mid;
                best = Some((CrashPoint::Clean { seq: mid }, err));
            }
            None => lo = mid + 1,
        }
    }
    best
}

/// Runs a full campaign. See the module docs for the protocol.
pub fn run_campaign<H: FaultHarness>(
    h: &H,
    plane: &Arc<FaultPlane>,
    cfg: &CampaignConfig,
) -> CampaignReport {
    // Pass 0: record the schedule with no fault armed; this doubles as the
    // baseline (a workload that cannot recover without a crash is a
    // harness bug, reported as a failure at seq u64::MAX).
    plane.reset();
    h.prepare(plane);
    plane.start_recording();
    h.run(plane);
    let schedule = plane.take_schedule();
    let baseline = h.recover_and_check(plane);

    let enumerated = enumerate_points(&schedule, cfg);
    let points_enumerated = enumerated.len();
    let points = subsample(enumerated, cfg.max_points);

    let mut fp = Fnv64::new();
    fp.write_u64(cfg.seed);
    fp.write_u64(schedule.len() as u64);
    for e in &schedule {
        fp.write_u64(e.seq);
        fp.write_u64(e.lba.0);
        fp.write_u64(u64::from(e.sectors));
        fp.write_u64(e.time.as_nanos());
    }

    let mut failures = Vec::new();
    if let Err(e) = baseline {
        failures.push(CampaignFailure {
            point: CrashPoint::Clean { seq: u64::MAX },
            error: format!("baseline (no fault) failed: {e}"),
            shrunk: None,
        });
    }

    let (mut clean, mut torn, mut reorder) = (0usize, 0usize, 0usize);
    let points_run = points.len();
    for p in &points {
        match p {
            CrashPoint::Clean { .. } => clean += 1,
            CrashPoint::Torn { .. } => torn += 1,
            CrashPoint::Reorder { .. } => reorder += 1,
        }
        let outcome = run_point(h, plane, Some(p.to_cut()));
        p.absorb(&mut fp);
        match &outcome {
            Ok(()) => fp.write_u64(0),
            Err(e) => {
                fp.write_u64(1);
                fp.write(e.as_bytes());
            }
        }
        if let Err(error) = outcome {
            let shrunk = shrink(h, plane, p, &error, cfg.shrink_budget).map(|(sp, _)| sp);
            failures.push(CampaignFailure {
                point: p.clone(),
                error,
                shrunk,
            });
        }
    }

    CampaignReport {
        seed: cfg.seed,
        schedule_len: schedule.len(),
        points_enumerated,
        points_run,
        clean_points: clean,
        torn_points: torn,
        reorder_points: reorder,
        failures,
        fingerprint: fp.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bypassd_hw::types::Lba;
    use bypassd_sim::time::Nanos;
    use parking_lot::Mutex;

    fn sched(n: u64, sectors: u32) -> Vec<WriteEvent> {
        (0..n)
            .map(|i| WriteEvent {
                seq: i,
                lba: Lba(i * 8),
                sectors,
                time: Nanos(i * 100),
                kind: WriteKind::Raw,
            })
            .collect()
    }

    #[test]
    fn enumeration_is_deterministic() {
        let s = sched(20, 8);
        let cfg = CampaignConfig::default();
        assert_eq!(enumerate_points(&s, &cfg), enumerate_points(&s, &cfg));
    }

    #[test]
    fn enumeration_covers_every_event_with_a_clean_cut() {
        let s = sched(20, 8);
        let cfg = CampaignConfig::default();
        let pts = enumerate_points(&s, &cfg);
        for e in &s {
            assert!(
                pts.iter()
                    .any(|p| matches!(p, CrashPoint::Clean { seq } if *seq == e.seq)),
                "no clean cut for seq {}",
                e.seq
            );
        }
        assert!(pts.iter().any(|p| matches!(p, CrashPoint::Torn { .. })));
        assert!(pts.iter().any(|p| matches!(p, CrashPoint::Reorder { .. })));
    }

    #[test]
    fn reorder_windows_respect_flush_barriers() {
        let mut s = sched(12, 8);
        s[6] = WriteEvent {
            seq: 6,
            lba: Lba(0),
            sectors: 0,
            time: Nanos(600),
            kind: WriteKind::Flush,
        };
        let cfg = CampaignConfig {
            reorder_stride: 1,
            ..CampaignConfig::default()
        };
        for p in enumerate_points(&s, &cfg) {
            if let CrashPoint::Reorder { cut_seq, drop } = p {
                for d in drop {
                    assert!(d < cut_seq);
                    // Nothing from before the barrier may be dropped when
                    // cutting after it.
                    if cut_seq > 6 {
                        assert!(d > 6, "drop {d} crosses flush barrier (cut {cut_seq})");
                    }
                }
            }
        }
    }

    #[test]
    fn subsample_respects_budget_and_keeps_order() {
        let s = sched(100, 8);
        let cfg = CampaignConfig {
            max_points: 17,
            ..CampaignConfig::default()
        };
        let pts = subsample(enumerate_points(&s, &cfg), cfg.max_points);
        assert_eq!(pts.len(), 17);
        let seqs: Vec<u64> = pts.iter().map(CrashPoint::seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    /// A harness over a toy "filesystem": an in-memory array where the
    /// workload writes a checksum-protected pair of cells per step, with a
    /// deliberate bug mode (non-atomic pair) the campaign must catch.
    struct ToyHarness {
        buggy: bool,
        cells: Mutex<Vec<(u64, u64)>>, // (value, checksum)
    }

    impl ToyHarness {
        fn new(buggy: bool) -> Self {
            ToyHarness {
                buggy,
                cells: Mutex::new(Vec::new()),
            }
        }
    }

    impl FaultHarness for ToyHarness {
        fn prepare(&self, _plane: &Arc<FaultPlane>) {
            *self.cells.lock() = vec![(0, 0); 8];
        }

        fn run(&self, plane: &Arc<FaultPlane>) {
            for step in 1..=8u64 {
                let idx = (step - 1) as usize;
                if self.buggy {
                    // Value and checksum written as two separate writes: a
                    // cut between them leaves a torn pair.
                    if plane.on_write(Lba(idx as u64 * 8), 8, None, WriteKind::Raw)
                        == WriteVerdict::Persist
                    {
                        self.cells.lock()[idx].0 = step;
                    }
                    if plane.on_write(Lba(idx as u64 * 8 + 4), 8, None, WriteKind::Raw)
                        == WriteVerdict::Persist
                    {
                        self.cells.lock()[idx].1 = step ^ 0xFF;
                    }
                } else {
                    // Atomic pair: one write.
                    if plane.on_write(Lba(idx as u64 * 8), 8, None, WriteKind::Raw)
                        == WriteVerdict::Persist
                    {
                        self.cells.lock()[idx] = (step, step ^ 0xFF);
                    }
                }
            }
        }

        fn recover_and_check(&self, _plane: &Arc<FaultPlane>) -> Result<(), String> {
            for (i, &(v, c)) in self.cells.lock().iter().enumerate() {
                if v == 0 && c == 0 {
                    continue; // never written: fine
                }
                if c != v ^ 0xFF {
                    return Err(format!("cell {i} torn: value {v} checksum {c}"));
                }
            }
            Ok(())
        }
    }

    use crate::plane::WriteVerdict;

    #[test]
    fn campaign_passes_on_atomic_workload() {
        let plane = Arc::new(FaultPlane::new());
        let report = run_campaign(&ToyHarness::new(false), &plane, &CampaignConfig::default());
        assert!(report.passed(), "{}", report.summary());
        assert!(report.points_run >= 8);
    }

    #[test]
    fn campaign_catches_torn_pair_and_shrinks() {
        let plane = Arc::new(FaultPlane::new());
        let report = run_campaign(&ToyHarness::new(true), &plane, &CampaignConfig::default());
        assert!(!report.passed());
        let f = &report.failures[0];
        let shrunk = f.shrunk.as_ref().expect("shrinker found reproducer");
        // Earliest failing clean cut is between the first pair's writes.
        assert_eq!(shrunk, &CrashPoint::Clean { seq: 1 });
    }

    #[test]
    fn campaign_is_bit_reproducible() {
        let plane = Arc::new(FaultPlane::new());
        let cfg = CampaignConfig::default();
        let a = run_campaign(&ToyHarness::new(true), &plane, &cfg);
        let b = run_campaign(&ToyHarness::new(true), &plane, &cfg);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.summary(), b.summary());
        let c = run_campaign(
            &ToyHarness::new(true),
            &plane,
            &CampaignConfig { seed: 999, ..cfg },
        );
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
