//! Shared machinery for the table/figure harnesses.
//!
//! Every `cargo bench` target in this crate regenerates one table or
//! figure from the paper's evaluation (§6), printing measured values next
//! to the paper's reported ones. Absolute magnitudes are calibrated (the
//! latency constants come from the paper itself); the claim under test is
//! the *shape*: orderings, ratios, crossovers.
//!
//! Set `BYPASSD_BENCH=full` for larger sweeps (more ops, more threads,
//! the 16 GB fmap point); the default quick mode finishes each figure in
//! seconds.

pub mod hostinfo;

use std::sync::Arc;

use parking_lot::Mutex;

use bypassd::System;
use bypassd_backends::{make_factory, BackendKind};
use bypassd_kv::{BtreeStore, YcsbGen, YcsbWorkload};
use bypassd_sim::stats::Throughput;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use bypassd_trace::Histogram;

/// True when `BYPASSD_BENCH=full`.
pub fn full_mode() -> bool {
    std::env::var("BYPASSD_BENCH").is_ok_and(|v| v == "full")
}

/// Scales an op count by mode.
pub fn ops(quick: u64, full: u64) -> u64 {
    if full_mode() {
        full
    } else {
        quick
    }
}

/// A standard 8 GB system (64 GB in full mode, for the 16 GB fmap row).
pub fn std_system() -> System {
    let cap = if full_mode() { 64u64 << 30 } else { 8u64 << 30 };
    System::builder().capacity(cap).build()
}

/// Runs a closure as a single simulated actor, returning its value.
pub fn run_one<T: Send + 'static>(
    f: impl FnOnce(&mut bypassd_sim::ActorCtx) -> T + Send + 'static,
) -> T {
    let sim = Simulation::new();
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    sim.spawn("bench", move |ctx| {
        *o2.lock() = Some(f(ctx));
    });
    sim.run();
    let mut g = out.lock();
    g.take().expect("actor produced no result")
}

/// Aggregate of a multi-threaded KV run.
#[derive(Debug, Clone)]
pub struct KvRunResult {
    /// Completed operations.
    pub ops: u64,
    /// Virtual duration.
    pub elapsed: Nanos,
    /// Per-op latency.
    pub latency: Histogram,
}

impl KvRunResult {
    /// Throughput in kops/s.
    pub fn kops(&self) -> f64 {
        let mut t = Throughput::new();
        t.ops = self.ops;
        t.kops_per_sec(self.elapsed)
    }
}

/// Runs `threads` workers over a shared B-tree store, each executing
/// `ops_per_thread` YCSB ops through its own backend thread.
#[allow(clippy::too_many_arguments)]
pub fn run_btree_ycsb(
    system: &System,
    store: &Arc<BtreeStore>,
    kind: BackendKind,
    workload: YcsbWorkload,
    n_keys: u64,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> KvRunResult {
    system.reset_virtual_time();
    // Fairness: identical cache state per cell — cold, then warmed with a
    // fixed op stream (untimed) so every backend measures steady state.
    store.clear_cache();
    let warm_ops = (ops_per_thread * 4).max(1_500);
    let factory = make_factory(kind, system, 0, 0);
    {
        let store = Arc::clone(store);
        let f2 = Arc::clone(&factory);
        let sim = Simulation::new();
        sim.spawn("warm", move |ctx| {
            let mut backend = f2.make_thread();
            let h = backend.open(ctx, store.file(), true).expect("open store");
            let mut gen = YcsbGen::new(workload, n_keys, n_keys + n_keys / 4, 0xDEAD);
            for _ in 0..warm_ops {
                let op = gen.next_op();
                store.execute(ctx, &mut *backend, h, op).expect("warm op");
            }
            let _ = backend.close(ctx, h);
        });
        sim.run();
    }
    system.reset_virtual_time();
    let sim = Simulation::new();
    let sink: Arc<Mutex<Vec<(Histogram, Nanos)>>> = Arc::new(Mutex::new(Vec::new()));
    for tid in 0..threads {
        let factory = Arc::clone(&factory);
        let store = Arc::clone(store);
        let sink = Arc::clone(&sink);
        sim.spawn(&format!("kv{tid}"), move |ctx| {
            let mut backend = factory.make_thread();
            let h = backend.open(ctx, store.file(), true).expect("open store");
            let mut gen = YcsbGen::new(
                workload,
                n_keys,
                n_keys + n_keys / 4,
                seed ^ (tid as u64 * 7919),
            );
            let mut hist = Histogram::new();
            for _ in 0..ops_per_thread {
                let op = gen.next_op();
                let t0 = ctx.now();
                store.execute(ctx, &mut *backend, h, op).expect("op failed");
                hist.record(ctx.now() - t0);
            }
            let end = ctx.now();
            let _ = backend.close(ctx, h);
            sink.lock().push((hist, end));
        });
    }
    sim.run();
    let data = sink.lock();
    let mut latency = Histogram::new();
    let mut last = Nanos::ZERO;
    for (h, end) in data.iter() {
        latency.merge(h);
        last = last.max(*end);
    }
    KvRunResult {
        ops: threads as u64 * ops_per_thread,
        elapsed: last,
        latency,
    }
}

/// Formats a nanosecond value as microseconds with 2 decimals.
pub fn us(t: Nanos) -> String {
    format!("{:.2}", t.as_micros_f64())
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}
