//! Figure 16: KVell throughput and request latency for YCSB A/B/C with
//! increasing threads — KVell at QD 1, KVell at QD 64 (libaio), and
//! BypassD with a synchronous interface. The trade the figure shows:
//! KVell_64 buys throughput with ~100× the latency; BypassD's sync path
//! beats KVell_1 and keeps microsecond latencies.

use std::sync::Arc;

use bypassd_backends::{make_factory, BackendFactory, BackendKind, LibaioFactory};
use bypassd_bench::{f1, ops, std_system, us};
use bypassd_kv::{Kvell, KvellConfig, YcsbGen, YcsbWorkload};
use bypassd_sim::report::Table;
use bypassd_sim::stats::Throughput;
use bypassd_sim::time::Nanos;
use bypassd_sim::Simulation;
use bypassd_trace::Histogram;
use parking_lot::Mutex;

#[allow(clippy::too_many_arguments)]
fn run_variant(
    system: &bypassd::System,
    store: &Arc<Kvell>,
    factory: Arc<dyn BackendFactory>,
    w: YcsbWorkload,
    n: u64,
    threads: usize,
    ops_per_thread: u64,
    qd: usize,
) -> (f64, Nanos) {
    system.reset_virtual_time();
    let sink: Arc<Mutex<(Histogram, Throughput, Nanos)>> = Arc::new(Mutex::new((
        Histogram::new(),
        Throughput::new(),
        Nanos::ZERO,
    )));
    let sim = Simulation::new();
    for tid in 0..threads {
        let factory = Arc::clone(&factory);
        let store = Arc::clone(store);
        let sink = Arc::clone(&sink);
        sim.spawn(&format!("kv{tid}"), move |ctx| {
            let mut b = factory.make_thread();
            let h = b.open(ctx, store.file(), true).expect("open slab");
            let mut gen = YcsbGen::new(w, n, n, 19 + tid as u64);
            let r = store
                .run_ycsb(ctx, &mut *b, h, &mut gen, ops_per_thread, qd)
                .expect("kvell run");
            let _ = b.close(ctx, h);
            let mut s = sink.lock();
            s.0.merge(&r.latency);
            s.1.merge(&r.throughput);
            s.2 = s.2.max(ctx.now());
        });
    }
    sim.run();
    let s = sink.lock();
    (s.1.kops_per_sec(s.2), s.0.mean())
}

fn main() {
    let n: u64 = 100_000;
    let threads = [1usize, 2, 4, 8];
    let ops_per_thread = ops(200, 1200);
    let system = std_system();
    let store = Arc::new(Kvell::build(&system, KvellConfig::new("/kvell", n)).unwrap());

    for w in [YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::C] {
        let mut t = Table::new(
            &format!("Figure 16 — {w}: throughput (kops/s) / mean latency (µs)"),
            &["threads", "kvell_1", "kvell_64", "bypassd"],
        );
        let mut last_row = (
            0.0f64,
            Nanos::ZERO,
            0.0f64,
            Nanos::ZERO,
            0.0f64,
            Nanos::ZERO,
        );
        for nt in threads {
            let k1 = run_variant(
                &system,
                &store,
                Arc::new(LibaioFactory::new(&system, 0, 0, 1)),
                w,
                n,
                nt,
                ops_per_thread,
                1,
            );
            let k64 = run_variant(
                &system,
                &store,
                Arc::new(LibaioFactory::new(&system, 0, 0, 64)),
                w,
                n,
                nt,
                ops_per_thread,
                64,
            );
            let byp = run_variant(
                &system,
                &store,
                make_factory(BackendKind::Bypassd, &system, 0, 0),
                w,
                n,
                nt,
                ops_per_thread,
                1, // BypassD uses the synchronous interface (§6.5)
            );
            t.row(&[
                &nt.to_string(),
                &format!("{}/{}", f1(k1.0), us(k1.1)),
                &format!("{}/{}", f1(k64.0), us(k64.1)),
                &format!("{}/{}", f1(byp.0), us(byp.1)),
            ]);
            last_row = (k1.0, k1.1, k64.0, k64.1, byp.0, byp.1);
        }
        t.print();

        let (k1_tp, _k1_lat, k64_tp, k64_lat, byp_tp, byp_lat) = last_row;
        // BypassD beats KVell_1 on throughput but not KVell_64 (§6.5).
        assert!(
            byp_tp > k1_tp,
            "{w}: bypassd {byp_tp:.0} !> kvell_1 {k1_tp:.0}"
        );
        assert!(
            k64_tp > byp_tp * 0.9,
            "{w}: kvell_64 should stay competitive: {k64_tp:.0} vs {byp_tp:.0}"
        );
        // Latency: KVell_64 is 1-2 orders of magnitude above BypassD.
        let ratio = k64_lat.as_nanos() as f64 / byp_lat.as_nanos() as f64;
        assert!(
            ratio > 10.0,
            "{w}: kvell_64/bypassd latency ratio = {ratio:.0}x (paper: ~100x)"
        );
        println!("{w}: kvell_64 latency = {ratio:.0}x bypassd's\n");
    }
    println!("OK: Figure 16 shape reproduced");
}
