//! Figure 5: IOMMU overhead versus the number of translations per ATS
//! request (contiguous 4 KB pages; one 64 B cacheline holds 8 entries).

use bypassd_hw::iommu::AccessKind;
use bypassd_hw::page_table::AddressSpace;
use bypassd_hw::pte::Pte;
use bypassd_hw::types::{DevId, Lba, Pasid, Vba, PAGE_SIZE};
use bypassd_hw::{Iommu, PhysMem};
use bypassd_sim::report::Table;

fn main() {
    let mem = PhysMem::new();
    let mut asid = AddressSpace::new(&mem);
    let vba = Vba(0x4000_0000);
    let dev = DevId(1);
    for i in 0..12u64 {
        asid.map_page(
            vba.as_virt().offset(i * PAGE_SIZE),
            Pte::fte(Lba::from_block(100 + i), dev, true),
        );
    }
    let mut iommu = Iommu::new(&mem);
    let pasid = Pasid(1);
    iommu.register(pasid, asid.root_frame());
    let pcie = iommu.timing().pcie_rtt;

    let mut t = Table::new(
        "Figure 5: IOMMU overhead vs translations per ATS request (ns, PCIe excluded)",
        &["translations", "paper(approx)", "measured"],
    );
    // Approximate series read off the figure.
    let paper = [183, 183, 208, 208, 208, 208, 208, 208, 214, 214, 214, 214];
    let mut series = Vec::new();
    for n in 1..=12u64 {
        // Warm the page-walk cache (steady state), cold IOTLB (FTEs are
        // not cached, per §4.3).
        iommu
            .translate(pasid, vba, PAGE_SIZE, AccessKind::Read, dev)
            .unwrap();
        let tr = iommu
            .translate(pasid, vba, n * PAGE_SIZE, AccessKind::Read, dev)
            .unwrap();
        let overhead = (tr.cost - pcie).as_nanos();
        series.push(overhead);
        t.row(&[
            &n.to_string(),
            &paper[(n - 1) as usize].to_string(),
            &overhead.to_string(),
        ]);
    }
    t.print();

    assert_eq!(series[0], series[1], "1 vs 2 translations must match");
    assert!(series[2] > series[1], "small step at 3 translations");
    assert_eq!(series[2], series[7], "flat across one cacheline");
    assert!(series[8] > series[7], "second cacheline adds slightly");
    assert!(
        series[11] - series[0] < 60,
        "growth must stay small: {series:?}"
    );
    println!("OK: shape matches Fig. 5 (flat 1-2, step at 3, ~flat to 8, tiny step per cacheline)");
}
