//! Figure 11: device-side I/O scheduling — 4 KB random-read latency of a
//! foreground process while N background reader processes hammer the
//! device. BypassD relies on the device's round-robin across queues
//! instead of a kernel I/O scheduler, and still beats the baseline.

use bypassd_backends::{make_factory, BackendKind};
use bypassd_bench::{ops, std_system, us};
use bypassd_fio::{run_jobs, JobSpec, RwMode};
use bypassd_sim::report::Table;
use bypassd_sim::time::Nanos;

fn main() {
    let background = [0usize, 1, 2, 4, 8, 12, 16];
    let n_ops = ops(200, 1200);
    let mut t = Table::new(
        "Figure 11: foreground 4KB randread latency (µs) with background readers",
        &["bg readers", "sync", "bypassd"],
    );
    let mut rows = Vec::new();
    for n_bg in background {
        let mut cells = vec![n_bg.to_string()];
        let mut pair = Vec::new();
        for kind in [BackendKind::Sync, BackendKind::Bypassd] {
            let system = std_system();
            let mut jobs = vec![(
                make_factory(kind, &system, 1000, 1000),
                JobSpec {
                    name: "fg".into(),
                    mode: RwMode::RandRead,
                    block_size: 4096,
                    file: "/fg".into(),
                    file_size: 128 << 20,
                    threads: 1,
                    ops_per_thread: n_ops,
                    warmup_ops: 16,
                    per_thread_files: false,
                    seed: 31,
                    start_at: Nanos::ZERO,
                },
            )];
            for b in 0..n_bg {
                jobs.push((
                    // Background readers always use the same (bypassd)
                    // interface so only the foreground path varies.
                    make_factory(BackendKind::Bypassd, &system, 2000 + b as u32, 2000),
                    JobSpec {
                        name: format!("bg{b}"),
                        mode: RwMode::RandRead,
                        block_size: 4096,
                        file: format!("/bg{b}"),
                        file_size: 64 << 20,
                        threads: 1,
                        ops_per_thread: n_ops * 2,
                        warmup_ops: 0,
                        per_thread_files: false,
                        seed: 41 + b as u64,
                        start_at: Nanos::ZERO,
                    },
                ));
            }
            let results = run_jobs(&system, jobs);
            let fg = &results[0];
            pair.push(fg.mean_latency());
            cells.push(us(fg.mean_latency()));
        }
        rows.push((n_bg, pair[0], pair[1]));
        t.row_owned(cells);
    }
    t.print();

    for (n_bg, sync, byp) in &rows {
        assert!(
            byp < sync,
            "bypassd ({byp}) must stay below sync ({sync}) with {n_bg} bg readers"
        );
    }
    // Latency grows with load for both (device queueing), but stays
    // bounded thanks to round-robin across queues.
    let (_, _, byp0) = rows[0];
    let (_, _, byp16) = rows[rows.len() - 1];
    assert!(byp16 > byp0, "no queueing effect visible");
    assert!(
        byp16 < byp0 * 20,
        "round-robin should bound the foreground latency: {byp16} vs {byp0}"
    );
    println!("OK: Figure 11 shape reproduced (bypassd < sync at every load)");
}
