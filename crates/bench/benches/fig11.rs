//! Figure 11: device-side I/O scheduling — 4 KB random-read latency of a
//! foreground process while N background reader processes hammer the
//! device. BypassD relies on the device's round-robin across queues
//! instead of a kernel I/O scheduler, and still beats the baseline.

use bypassd::{direct_read_check, write_chrome_trace, Breakdown, System, TraceConfig};
use bypassd_backends::{make_factory, BackendKind};
use bypassd_bench::{ops, std_system, us};
use bypassd_fio::{run_jobs, JobSpec, RwMode};
use bypassd_sim::report::{f, Table};
use bypassd_sim::time::Nanos;

fn main() {
    let background = [0usize, 1, 2, 4, 8, 12, 16];
    // Approximate series read off the figure.
    let paper_sync = [8.0, 8.0, 8.5, 8.5, 9.0, 12.0, 14.0];
    let paper_byp = [5.0, 5.0, 5.0, 5.5, 6.0, 9.0, 11.0];
    let n_ops = ops(200, 1200);
    let mut t = Table::new(
        "Figure 11: foreground 4KB randread latency (µs) with background readers",
        &[
            "bg readers",
            "paper sync",
            "sync",
            "paper bypassd",
            "bypassd",
        ],
    );
    let mut rows = Vec::new();
    for (load, n_bg) in background.into_iter().enumerate() {
        let mut cells = vec![n_bg.to_string()];
        let mut pair = Vec::new();
        for kind in [BackendKind::Sync, BackendKind::Bypassd] {
            let system = std_system();
            let mut jobs = vec![(
                make_factory(kind, &system, 1000, 1000),
                JobSpec {
                    name: "fg".into(),
                    mode: RwMode::RandRead,
                    block_size: 4096,
                    file: "/fg".into(),
                    file_size: 128 << 20,
                    threads: 1,
                    ops_per_thread: n_ops,
                    warmup_ops: 16,
                    per_thread_files: false,
                    seed: 31,
                    start_at: Nanos::ZERO,
                },
            )];
            for b in 0..n_bg {
                jobs.push((
                    // Background readers always use the same (bypassd)
                    // interface so only the foreground path varies.
                    make_factory(BackendKind::Bypassd, &system, 2000 + b as u32, 2000),
                    JobSpec {
                        name: format!("bg{b}"),
                        mode: RwMode::RandRead,
                        block_size: 4096,
                        file: format!("/bg{b}"),
                        file_size: 64 << 20,
                        threads: 1,
                        ops_per_thread: n_ops * 2,
                        warmup_ops: 0,
                        per_thread_files: false,
                        seed: 41 + b as u64,
                        start_at: Nanos::ZERO,
                    },
                ));
            }
            let results = run_jobs(&system, jobs);
            let fg = &results[0];
            pair.push(fg.mean_latency());
        }
        cells.push(f(paper_sync[load], 1));
        cells.push(us(pair[0]));
        cells.push(f(paper_byp[load], 1));
        cells.push(us(pair[1]));
        rows.push((n_bg, pair[0], pair[1]));
        t.row_owned(cells);
    }
    t.print();

    for (n_bg, sync, byp) in &rows {
        assert!(
            byp < sync,
            "bypassd ({byp}) must stay below sync ({sync}) with {n_bg} bg readers"
        );
    }
    // Latency grows with load for both (device queueing), but stays
    // bounded thanks to round-robin across queues.
    let (_, _, byp0) = rows[0];
    let (_, _, byp16) = rows[rows.len() - 1];
    assert!(byp16 > byp0, "no queueing effect visible");
    assert!(
        byp16 < byp0 * 20,
        "round-robin should bound the foreground latency: {byp16} vs {byp0}"
    );

    // The flip side of relying on device round-robin alone: a *single*
    // misbehaving tenant with a deep queue (one process, 16 sync
    // threads) still inflates an innocent QD1 foreground, because the
    // device has no notion of per-tenant shares. This is the unfairness
    // the QoS arbiter removes (see the `fairness` bench / Ablation 8).
    let system = std_system();
    let results = run_jobs(
        &system,
        vec![
            (
                make_factory(BackendKind::Bypassd, &system, 1000, 1000),
                JobSpec {
                    name: "fg".into(),
                    mode: RwMode::RandRead,
                    block_size: 4096,
                    file: "/fg".into(),
                    file_size: 128 << 20,
                    threads: 1,
                    ops_per_thread: n_ops,
                    warmup_ops: 16,
                    per_thread_files: false,
                    seed: 31,
                    start_at: Nanos::ZERO,
                },
            ),
            (
                make_factory(BackendKind::Bypassd, &system, 2000, 2000),
                JobSpec {
                    name: "antagonist".into(),
                    mode: RwMode::RandRead,
                    block_size: 4096,
                    file: "/bg".into(),
                    file_size: 64 << 20,
                    threads: 16,
                    ops_per_thread: n_ops * 2,
                    warmup_ops: 0,
                    per_thread_files: false,
                    seed: 41,
                    start_at: Nanos::ZERO,
                },
            ),
        ],
    );
    let solo = rows[0].2;
    let contended = results[0].mean_latency();
    let mut t = Table::new(
        "Figure 11 addendum: QD1 foreground vs one 16-deep tenant (no QoS)",
        &["scenario", "fg latency (µs)"],
    );
    t.row(&["foreground alone", &us(solo)]);
    t.row(&["with 16-deep antagonist", &us(contended)]);
    t.print();
    assert!(
        contended.as_nanos() as f64 >= 1.8 * solo.as_nanos() as f64,
        "a deep-queue tenant must visibly hurt the no-QoS foreground: {contended} vs {solo}"
    );

    // Observability addendum (bypassd-trace): repeat the uncontended
    // bypassd point with the flight recorder on and attribute the
    // latency to pipeline stages. Tracing is passive — it never advances
    // the simulation clock — so the per-stage means must close to the
    // measured end-to-end direct-read latency within 10%.
    let system = System::builder().trace(TraceConfig::on()).build();
    run_jobs(
        &system,
        vec![(
            make_factory(BackendKind::Bypassd, &system, 1000, 1000),
            JobSpec {
                name: "fg".into(),
                mode: RwMode::RandRead,
                block_size: 4096,
                file: "/fg".into(),
                file_size: 128 << 20,
                threads: 1,
                ops_per_thread: n_ops,
                warmup_ops: 16,
                per_thread_files: false,
                seed: 31,
                start_at: Nanos::ZERO,
            },
        )],
    );
    let device = system.recorder().take_device();
    let op_recs = system.recorder().take_ops();
    println!("{}", Breakdown::build(&device, &op_recs).render());
    let check = direct_read_check(&device, &op_recs);
    assert!(
        check.ops > 0 && check.commands > 0,
        "recorder captured nothing"
    );
    let err = check.relative_error();
    println!(
        "trace closure: e2e mean {} vs stage sum {} over {} ops / {} cmds ({:.2}% error)",
        check.e2e_mean,
        check.stage_sum,
        check.ops,
        check.commands,
        err * 100.0,
    );
    assert!(
        err <= 0.10,
        "stage attribution must close within 10% of end-to-end latency: {err:.3}"
    );
    let trace_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/trace/fig11_trace.json");
    write_chrome_trace(&trace_path, &device, &op_recs).expect("write chrome trace");
    println!("chrome trace: {}", trace_path.display());
    println!("OK: Figure 11 shape reproduced (bypassd < sync at every load)");
}
