//! Figure 8: effect of VBA translation latency on single-thread read
//! bandwidth. The paper sweeps the emulated delay {none, 350, 550, 950,
//! 1350 ns} and finds even 1.35 µs translations leave BypassD well above
//! the sync baseline; 350 vs 550 ns (FTE caching in the IOTLB vs not)
//! barely matters — the justification for not polluting the IOTLB.

use bypassd::System;
use bypassd_backends::{make_factory, BackendKind};
use bypassd_bench::{f2, ops};
use bypassd_fio::{run_job, JobSpec, RwMode};
use bypassd_hw::iommu::IommuTiming;
use bypassd_sim::report::Table;
use bypassd_sim::time::Nanos;

fn timing_with_total(total_ns: u64) -> IommuTiming {
    // Collapse the model to a flat per-request translation cost, exactly
    // as the paper's emulation injects a fixed delay.
    IommuTiming {
        pcie_rtt: Nanos(total_ns),
        iotlb_hit: Nanos::ZERO,
        walk_miss: Nanos::ZERO,
        multi_translation: Nanos::ZERO,
        extra_cacheline: Nanos::ZERO,
        pwc_miss: Nanos::ZERO,
    }
}

fn bw(system: &System, kind: BackendKind, bs: u64, n_ops: u64) -> f64 {
    let factory = make_factory(kind, system, 0, 0);
    run_job(
        system,
        factory,
        JobSpec {
            name: "f8".into(),
            mode: RwMode::RandRead,
            block_size: bs,
            file: "/fio8".into(),
            file_size: 128 << 20,
            threads: 1,
            ops_per_thread: n_ops,
            warmup_ops: 16,
            per_thread_files: false,
            seed: 5,
            start_at: Nanos::ZERO,
        },
    )
    .gbps()
}

fn main() {
    let delays: [(&str, u64); 5] = [
        ("no delay", 0),
        ("350ns", 350),
        ("550ns", 550),
        ("950ns", 950),
        ("1350ns", 1350),
    ];
    let sizes = [4u64, 16, 64, 128];
    let n_ops = ops(250, 1500);

    let mut t = Table::new(
        "Figure 8: single-thread read bandwidth (GB/s) vs VBA translation latency",
        &[
            "bs", "no delay", "350ns", "550ns", "950ns", "1350ns", "sync",
        ],
    );
    for bs_kb in sizes {
        let bs = bs_kb << 10;
        let mut cells = vec![format!("{bs_kb}KB")];
        let mut series = Vec::new();
        for (_, delay) in delays {
            let system = System::builder()
                .capacity(8 << 30)
                .iommu_timing(timing_with_total(delay))
                .build();
            let v = bw(&system, BackendKind::Bypassd, bs, n_ops);
            series.push(v);
            cells.push(f2(v));
        }
        let system = System::builder().capacity(8 << 30).build();
        let sync_bw = bw(&system, BackendKind::Sync, bs, n_ops);
        cells.push(f2(sync_bw));
        t.row_owned(cells);

        // Monotone slight decrease with slower translation…
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] + 0.02,
                "bandwidth rose with slower translation"
            );
        }
        // …350 vs 550 nearly identical (IOTLB caching of FTEs unneeded)…
        let rel = (series[1] - series[2]) / series[1];
        assert!(rel < 0.06, "350ns vs 550ns differ by {:.1}%", rel * 100.0);
        // …and even 1350ns stays clearly above sync.
        assert!(
            series[4] > sync_bw * 1.05,
            "{bs_kb}KB: 1350ns bypassd {} !>> sync {}",
            series[4],
            sync_bw
        );
    }
    t.print();
    println!("OK: Figure 8 shape reproduced (gentle slope; 350≈550ns; all above sync)");
}
