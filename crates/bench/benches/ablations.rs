//! Ablations of BypassD design choices beyond the paper's figures
//! (DESIGN.md §5):
//!
//! 1. **FTE caching in the IOTLB** — the paper keeps FTEs *out* of the
//!    IOTLB to avoid pollution, arguing the saved walk barely matters
//!    (§4.3, Fig. 8). Measured here directly.
//! 2. **Shared pre-populated file tables** — vs every process building
//!    private tables (cold fmap per process).
//! 3. **Optimized append** (§5.1) — preallocate + direct overwrite vs
//!    routing every append through the kernel.
//! 4. **File fragmentation** — contiguous extents let the IOMMU coalesce
//!    translations and the kernel issue single commands; a fragmented
//!    layout stresses both.

use bypassd::{System, UserProcess};
use bypassd_backends::{make_factory, BackendKind};
use bypassd_bench::{ops, run_one, us};
use bypassd_ext4::Ext4Options;
use bypassd_fio::{run_job, JobSpec, RwMode};
use bypassd_os::OpenFlags;
use bypassd_sim::report::Table;
use bypassd_sim::time::Nanos;

fn mean_4k_read(system: &System, n_ops: u64) -> Nanos {
    let r = run_job(
        system,
        make_factory(BackendKind::Bypassd, system, 0, 0),
        JobSpec {
            name: "abl".into(),
            mode: RwMode::RandRead,
            block_size: 4096,
            file: "/abl".into(),
            file_size: 64 << 20,
            threads: 1,
            ops_per_thread: n_ops,
            warmup_ops: 16,
            per_thread_files: false,
            seed: 3,
            start_at: Nanos::ZERO,
        },
    );
    r.mean_latency()
}

fn main() {
    let n_ops = ops(300, 2000);

    // 1. FTE caching in the IOTLB.
    let off = mean_4k_read(&System::builder().capacity(4 << 30).build(), n_ops);
    let on = mean_4k_read(
        &System::builder().capacity(4 << 30).cache_ftes(true).build(),
        n_ops,
    );
    let mut t = Table::new(
        "Ablation 1: caching FTEs in the IOTLB (4KB randread mean latency)",
        &["config", "latency (µs)"],
    );
    t.row(&["no FTE caching (paper default)", &us(off)]);
    t.row(&["FTE caching enabled", &us(on)]);
    t.print();
    let saved = off.saturating_sub(on).as_nanos();
    println!("caching saves {saved}ns/op — marginal, as the paper argues (§4.3)\n");
    assert!(on <= off);
    assert!(saved < 600, "FTE caching saved implausibly much: {saved}ns");

    // 2. Shared vs private file tables: 8 processes mapping one 1GB file.
    let system = System::builder().capacity(4 << 30).build();
    system.fs().populate("/shared-ft", 1 << 30, 0).unwrap();
    let sys2 = system.clone();
    let (shared_total, first_cold): (Nanos, Nanos) = run_one(move |ctx| {
        let k = sys2.kernel();
        let mut total = Nanos::ZERO;
        let mut first = Nanos::ZERO;
        for p in 0..8 {
            let pid = k.spawn_process(0, 0);
            let t0 = ctx.now();
            let fd = k
                .sys_open(
                    ctx,
                    pid,
                    "/shared-ft",
                    OpenFlags::rdonly_direct().bypassd(),
                    0,
                )
                .unwrap();
            let vba = k.sys_fmap(ctx, pid, fd, false).unwrap();
            assert!(!vba.is_null());
            let dt = ctx.now() - t0;
            total += dt;
            if p == 0 {
                first = dt;
            }
        }
        (total, first)
    });
    let private_total = Nanos(first_cold.as_nanos() * 8); // every process cold
    let mut t = Table::new(
        "Ablation 2: shared pre-populated file tables, 8 processes × 1GB file",
        &["design", "total fmap cost (µs)"],
    );
    t.row(&["shared fragments (BypassD)", &us(shared_total)]);
    t.row(&["private tables (1 cold fmap each)", &us(private_total)]);
    t.print();
    println!(
        "sharing saves {:.0}% of mapping cost\n",
        (1.0 - shared_total.as_nanos() as f64 / private_total.as_nanos() as f64) * 100.0
    );
    assert!(shared_total.as_nanos() * 3 < private_total.as_nanos());

    // 3. Optimized append.
    let system = System::builder().capacity(4 << 30).build();
    let sys3 = system.clone();
    let appends = ops(64, 512);
    let (plain, optimized): (Nanos, Nanos) = run_one(move |ctx| {
        let proc = UserProcess::start(&sys3, 0, 0);
        let mut th = proc.thread();
        let chunk = vec![7u8; 4096];
        let fd1 = th.open_with(ctx, "/app-plain", true, true).unwrap();
        let t0 = ctx.now();
        for i in 0..appends {
            th.pwrite(ctx, fd1, &chunk, i * 4096).unwrap();
        }
        let plain = ctx.now() - t0;
        th.close(ctx, fd1).unwrap();
        let fd2 = th.open_with(ctx, "/app-opt", true, true).unwrap();
        proc.enable_optimized_append(fd2, 4 << 20);
        let t1 = ctx.now();
        for i in 0..appends {
            th.pwrite(ctx, fd2, &chunk, i * 4096).unwrap();
        }
        let optimized = ctx.now() - t1;
        th.fsync(ctx, fd2).unwrap();
        th.close(ctx, fd2).unwrap();
        (plain, optimized)
    });
    let mut t = Table::new(
        &format!("Ablation 3: optimized append (§5.1), {appends} × 4KB appends"),
        &["design", "total (µs)", "per append (µs)"],
    );
    t.row(&["kernel appends (default)", &us(plain), &us(plain / appends)]);
    t.row(&[
        "preallocate + overwrite",
        &us(optimized),
        &us(optimized / appends),
    ]);
    t.print();
    println!(
        "optimized append is {:.2}x faster\n",
        plain.as_nanos() as f64 / optimized.as_nanos() as f64
    );
    assert!(optimized < plain);

    // 4. Fragmentation: contiguous vs forced single-block extents.
    let frag_lat = |max_run: Option<u64>| {
        let opts = Ext4Options {
            max_run,
            ..Ext4Options::default()
        };
        let system = System::builder().capacity(4 << 30).fs_options(opts).build();
        let r = run_job(
            &system,
            make_factory(BackendKind::Bypassd, &system, 0, 0),
            JobSpec {
                name: "frag".into(),
                mode: RwMode::RandRead,
                block_size: 128 << 10,
                file: "/frag".into(),
                file_size: 64 << 20,
                threads: 1,
                ops_per_thread: ops(150, 1000),
                warmup_ops: 8,
                per_thread_files: false,
                seed: 21,
                start_at: Nanos::ZERO,
            },
        );
        r.mean_latency()
    };
    let contiguous = frag_lat(None);
    let fragmented = frag_lat(Some(1)); // every block its own extent
    let mut t = Table::new(
        "Ablation 4: file layout vs 128KB read latency (translation coalescing)",
        &["layout", "latency (µs)"],
    );
    t.row(&["contiguous extents", &us(contiguous)]);
    t.row(&["fully fragmented (1-block extents)", &us(fragmented)]);
    t.print();
    assert!(fragmented >= contiguous);
    println!(
        "fragmentation costs {}ns per 128KB read — BypassD degrades gracefully \
         (unlike MonetaD, which the paper notes suffers under fragmentation)",
        fragmented.saturating_sub(contiguous).as_nanos()
    );
    // 5. Page-walk cache size: a working set spanning many 2MB regions
    // stresses the IOMMU's upper-level caches; the paper predicts larger
    // translation caches help where a larger IOTLB would not (§4.3).
    let pwc_lat = |entries: usize| {
        let system = System::builder()
            .capacity(4 << 30)
            .pwc_capacity(entries)
            .build();
        let r = run_job(
            &system,
            make_factory(BackendKind::Bypassd, &system, 0, 0),
            JobSpec {
                name: "pwc".into(),
                mode: RwMode::RandRead,
                block_size: 4096,
                file: "/pwc".into(),
                file_size: 1 << 30, // 512 distinct 2MB regions
                threads: 1,
                ops_per_thread: ops(300, 2000),
                warmup_ops: 32,
                per_thread_files: false,
                seed: 29,
                start_at: Nanos::ZERO,
            },
        );
        r.mean_latency()
    };
    let small = pwc_lat(4);
    let large = pwc_lat(1024);
    let mut t = Table::new(
        "Ablation 5: page-walk cache size, 4KB randread over a 1GB file",
        &["PWC entries", "latency (µs)"],
    );
    t.row(&["4 (tiny)", &us(small)]);
    t.row(&["1024 (large)", &us(large)]);
    t.print();
    assert!(large <= small);
    println!(
        "a large translation cache saves {}ns/op on a wide working set — \
         'BypassD would benefit from larger translation caches' (§4.3)\n",
        small.saturating_sub(large).as_nanos()
    );

    // 6. Non-blocking writes (§5.1): submit-and-continue vs synchronous.
    let system = System::builder().capacity(4 << 30).build();
    system.fs().populate("/nbw", 16 << 20, 0).unwrap();
    let sys6 = system.clone();
    let writes = ops(128, 1024);
    let (sync_w, async_w): (Nanos, Nanos) = run_one(move |ctx| {
        let proc = UserProcess::start(&sys6, 0, 0);
        let mut th = proc.thread();
        let fd = th.open(ctx, "/nbw", true).unwrap();
        let data = vec![5u8; 4096];
        let t0 = ctx.now();
        for i in 0..writes {
            th.pwrite(ctx, fd, &data, (i % 4000) * 4096).unwrap();
        }
        let sync_w = ctx.now() - t0;
        let t1 = ctx.now();
        for i in 0..writes {
            th.pwrite_async(ctx, fd, &data, ((i + 7) % 4000) * 4096)
                .unwrap();
        }
        th.flush_writes(ctx, fd).unwrap();
        let async_w = ctx.now() - t1;
        (sync_w, async_w)
    });
    let mut t = Table::new(
        &format!("Ablation 6: non-blocking writes (§5.1), {writes} × 4KB overwrites"),
        &["interface", "total (µs)", "per write (µs)"],
    );
    t.row(&[
        "synchronous (paper default)",
        &us(sync_w),
        &us(sync_w / writes),
    ]);
    t.row(&["non-blocking (§5.1)", &us(async_w), &us(async_w / writes)]);
    t.print();
    assert!(async_w < sync_w);
    println!(
        "non-blocking writes are {:.2}x faster at the cost of deferred \
         durability (drained at fsync)\n",
        sync_w.as_nanos() as f64 / async_w.as_nanos() as f64
    );

    // 7. Device-side ATS cache: with the ATC on, repeat translations for
    // hot pages are answered on-device (SRAM lookup) instead of crossing
    // PCIe to the IOMMU. Hot set well inside the 1024-entry ATC (64
    // pages = 256KB) and fully warmed, so the steady state is all hits.
    let atc_read = |enabled: bool| {
        let system = System::builder()
            .capacity(4 << 30)
            .device_atc(enabled)
            .build();
        let r = run_job(
            &system,
            make_factory(BackendKind::Bypassd, &system, 0, 0),
            JobSpec {
                name: "atc".into(),
                mode: RwMode::RandRead,
                block_size: 4096,
                file: "/atc".into(),
                file_size: 256 << 10,
                threads: 1,
                ops_per_thread: ops(300, 2000),
                warmup_ops: 128,
                per_thread_files: false,
                seed: 31,
                start_at: Nanos::ZERO,
            },
        );
        (r.mean_latency(), system.device().atc_stats())
    };
    let (atc_off, off_stats) = atc_read(false);
    let (atc_on, on_stats) = atc_read(true);
    let mut t = Table::new(
        "Ablation 7: device-side ATS cache, 4KB randread over a 256KB hot set",
        &["config", "latency (µs)", "ATC hits", "ATC misses"],
    );
    t.row(&[
        "ATC off (paper model)",
        &us(atc_off),
        &off_stats.hits.to_string(),
        &off_stats.misses.to_string(),
    ]);
    t.row(&[
        "ATC on",
        &us(atc_on),
        &on_stats.hits.to_string(),
        &on_stats.misses.to_string(),
    ]);
    t.print();
    assert_eq!(off_stats.hits + off_stats.misses, 0, "disabled ATC counted");
    assert!(on_stats.hits > on_stats.misses, "hot set should mostly hit");
    assert!(atc_on <= atc_off);
    println!(
        "the ATC saves {}ns/op by skipping the PCIe ATS round trip on hits\n",
        atc_off.saturating_sub(atc_on).as_nanos()
    );

    // 8. Multi-tenant QoS: a misbehaving 16-deep tenant vs a QD1
    // foreground. Without the fair-share arbiter the antagonist's
    // backlog queues in front of every foreground request.
    let shared_read = |qos: bool| {
        let mut b = System::builder();
        if qos {
            b = b.qos(bypassd::QosConfig::enabled());
        }
        let system = b.build();
        let fg_ops = ops(200, 1200);
        let results = bypassd_fio::run_jobs(
            &system,
            vec![
                (
                    make_factory(BackendKind::Bypassd, &system, 1000, 1000),
                    JobSpec {
                        name: "fg".into(),
                        mode: RwMode::RandRead,
                        block_size: 4096,
                        file: "/fg".into(),
                        file_size: 64 << 20,
                        threads: 1,
                        ops_per_thread: fg_ops,
                        warmup_ops: 16,
                        per_thread_files: false,
                        seed: 7,
                        start_at: Nanos::ZERO,
                    },
                ),
                (
                    make_factory(BackendKind::Bypassd, &system, 2000, 2000),
                    JobSpec {
                        name: "antagonist".into(),
                        mode: RwMode::RandRead,
                        block_size: 4096,
                        file: "/bg".into(),
                        file_size: 64 << 20,
                        threads: 16,
                        ops_per_thread: fg_ops * 2,
                        warmup_ops: 0,
                        per_thread_files: false,
                        seed: 11,
                        start_at: Nanos::ZERO,
                    },
                ),
            ],
        );
        (results[0].latency.percentile(0.99), results[1].kiops())
    };
    let (p99_off, bg_off) = shared_read(false);
    let (p99_on, bg_on) = shared_read(true);
    let mut t = Table::new(
        "Ablation 8: QoS fair sharing, QD1 foreground vs 16-deep antagonist",
        &["config", "fg p99 (µs)", "antagonist kIOPS"],
    );
    t.row(&[
        "QoS off (implicit FIFO)",
        &us(p99_off),
        &format!("{bg_off:.0}"),
    ]);
    t.row(&["QoS on (fair share)", &us(p99_on), &format!("{bg_on:.0}")]);
    t.print();
    assert!(
        p99_on * 2 <= p99_off,
        "QoS must at least halve foreground p99: {p99_on} vs {p99_off}"
    );
    assert!(
        bg_on >= 0.45 * bg_off,
        "antagonist must keep its fair share: {bg_on:.0} vs {bg_off:.0} kIOPS"
    );
    println!(
        "fair-share pacing cuts the foreground tail {:.1}x while the antagonist keeps {:.0}% of its throughput\n",
        p99_off.as_nanos() as f64 / p99_on.as_nanos().max(1) as f64,
        100.0 * bg_on / bg_off
    );

    println!("\nOK: all ablations completed");
}
