//! Wall-clock throughput microbench for the simulator's hot paths:
//! IOMMU VBA translation (IOTLB/PWC churn + range invalidation), NVMe
//! completion-queue polling, the full UserLib 4 KB random-read path, and
//! the batched-read path (`pread_batch`: one doorbell + one CQ drain per
//! flight).
//!
//! Unlike the fig*/table* benches (which validate *modeled* time), this
//! bench measures how fast the simulator itself executes — simulated
//! operations per wall-clock second. It writes `BENCH_fastpath.json` at
//! the repo root with the numbers measured on this run (plus host
//! metadata) next to the pre-optimization baseline recorded from the
//! seed tree, so the speedup of the fast-path overhaul is tracked
//! in-repo.
//!
//! **CI perf contract:** `cargo bench --bench fastpath -- --smoke` runs
//! a shortened sweep and compares it against the *committed*
//! `BENCH_fastpath.json`, failing (non-zero exit) if any metric drops
//! below `SMOKE_TOLERANCE` of its committed value. Smoke mode never
//! rewrites the report.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use bypassd::{ReadReq, System, UserProcess};
use bypassd_bench::hostinfo;
use bypassd_hw::iommu::AccessKind;
use bypassd_hw::page_table::AddressSpace;
use bypassd_hw::pte::Pte;
use bypassd_hw::types::{DevId, Lba, Pasid, Vba, PAGE_SIZE};
use bypassd_hw::{Iommu, PhysMem};
use bypassd_sim::rng::Rng;
use bypassd_sim::Simulation;

/// Baseline measured on the pre-overhaul tree (HashMap + `Vec` order
/// lists with `Vec::remove(0)` eviction and full-`retain` invalidation;
/// per-poll completion sort; mutex-per-op UserLib), same machine, same
/// workload constants. Units: operations per wall-clock second. The
/// pre-overhaul tree had no batch API, so the batched metric's reference
/// point is the sequential read rate.
const BASELINE: [(&str, f64); 4] = [
    ("translate_ops_per_sec", 772_421.0),
    ("queue_polls_per_sec", 3_162_656.0),
    ("userlib_read_iops_per_sec", 221_715.0),
    ("userlib_batch_read_iops_per_sec", 221_715.0),
];

/// A smoke-mode metric may land this far below its committed value
/// before the contract fails — wide enough for shared-runner noise,
/// tight enough to catch the 2x-class regressions this contract exists
/// for.
const SMOKE_TOLERANCE: f64 = 0.55;

/// Translation-heavy loop: FTE caching on (ablation), working set twice
/// the IOTLB capacity so every miss inserts-with-eviction, plus a
/// periodic range invalidation — the three paths that were O(n) before
/// the LRU rewrite.
fn bench_translate(ops: u64) -> f64 {
    const PAGES: u64 = 32_768; // 8x the 4096-entry IOTLB: heavy eviction churn
    let mem = PhysMem::new();
    let mut asid = AddressSpace::new(&mem);
    let vba = Vba(0x4000_0000);
    for i in 0..PAGES {
        asid.map_page(
            vba.as_virt().offset(i * PAGE_SIZE),
            Pte::fte(Lba::from_block(100_000 + i), DevId(1), true),
        );
    }
    let mut iommu = Iommu::new(&mem);
    iommu.set_cache_ftes(true);
    iommu.register(Pasid(1), asid.root_frame());
    let mut rng = Rng::new(42);
    // Warm the caches to steady-state churn before timing.
    for _ in 0..PAGES {
        let page = rng.gen_range(PAGES);
        let _ = iommu.translate(
            Pasid(1),
            vba.offset(page * PAGE_SIZE),
            PAGE_SIZE,
            AccessKind::Read,
            DevId(1),
        );
    }
    let start = Instant::now();
    for op in 0..ops {
        let page = rng.gen_range(PAGES);
        let t = iommu.translate(
            Pasid(1),
            vba.offset(page * PAGE_SIZE),
            PAGE_SIZE,
            AccessKind::Read,
            DevId(1),
        );
        assert!(t.is_ok());
        if op % 1024 == 0 {
            // Kernel-side shootdown of one hot 2 MB region.
            let base = rng.gen_range(PAGES / 512) * 512;
            iommu.invalidate_range(Pasid(1), vba.offset(base * PAGE_SIZE), 512 * PAGE_SIZE);
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Completion-queue polling with a standing backlog: submissions keep a
/// kernel queue ~full while a poller reaps a few completions at a time —
/// the per-poll `sort_by_key` the heap swap removes.
fn bench_queue_poll(polls: u64) -> f64 {
    use bypassd_ssd::device::{BlockAddr, Command};
    use bypassd_ssd::dma::DmaBuffer;
    use bypassd_ssd::timing::MediaTiming;
    use bypassd_ssd::NvmeDevice;
    const DEPTH: usize = 512;
    let mem = PhysMem::new();
    let iommu = Arc::new(Mutex::new(Iommu::new(&mem)));
    let dev = NvmeDevice::new(DevId(1), 1 << 22, MediaTiming::default(), iommu);
    let q = dev.create_queue(None, DEPTH);
    let dma = DmaBuffer::alloc(&mem, 4096);
    let mut now = bypassd_sim::Nanos(0);
    let mut inflight = 0usize;
    let mut rng = Rng::new(7);
    let mut comps = Vec::with_capacity(4);
    let start = Instant::now();
    for _ in 0..polls {
        while inflight < DEPTH {
            let lba = Lba::from_block(rng.gen_range(1 << 10));
            dev.submit(q, Command::read(BlockAddr::Lba(lba), 8, &dma), now)
                .unwrap();
            inflight += 1;
        }
        now = bypassd_sim::Nanos(now.as_nanos() + 200);
        comps.clear();
        inflight -= dev.reap_ready_into(q, now, 4, &mut comps);
    }
    polls as f64 / start.elapsed().as_secs_f64()
}

/// The full simulated data path: one UserThread doing 4 KB random reads
/// over a direct-mapped file. Reports simulated read IOPS executed per
/// wall-clock second (simulator speed, not modeled latency).
fn bench_userlib_iops(ops: u64) -> f64 {
    const FILE: u64 = 64 << 20;
    let sys = System::builder().capacity(256 << 20).build();
    sys.fs().populate("/hot", FILE, 0x5a).unwrap();
    let start = Instant::now();
    let sim = Simulation::new();
    let s2 = sys.clone();
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&s2, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/hot", false).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut rng = Rng::new(99);
        for _ in 0..ops {
            let off = rng.gen_range(FILE / 4096) * 4096;
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096);
        }
        let (direct, fallback) = proc.op_counts();
        assert_eq!(direct, ops);
        assert_eq!(fallback, 0);
    });
    sim.run();
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Same data path through `pread_batch`: flights of 32 reads share one
/// userlib/doorbell charge, one wait and one CQ drain.
fn bench_userlib_batch_iops(ops: u64) -> f64 {
    const FILE: u64 = 64 << 20;
    const BATCH: usize = 32;
    let sys = System::builder().capacity(256 << 20).build();
    sys.fs().populate("/hot", FILE, 0x5a).unwrap();
    let start = Instant::now();
    let sim = Simulation::new();
    let s2 = sys.clone();
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&s2, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/hot", false).unwrap();
        let mut buf = vec![0u8; BATCH * 4096];
        let mut rng = Rng::new(99);
        let flights = ops / BATCH as u64;
        for _ in 0..flights {
            let mut reqs: Vec<ReadReq<'_>> = buf
                .chunks_mut(4096)
                .map(|b| ReadReq {
                    offset: rng.gen_range(FILE / 4096) * 4096,
                    buf: b,
                })
                .collect();
            let n = t.pread_batch(ctx, fd, &mut reqs).unwrap();
            assert_eq!(n, BATCH * 4096);
        }
        let (direct, fallback) = proc.op_counts();
        assert_eq!(direct, flights * BATCH as u64);
        assert_eq!(fallback, 0);
    });
    sim.run();
    ops as f64 / start.elapsed().as_secs_f64()
}

fn measure(smoke: bool) -> [(&'static str, f64); 4] {
    // Smoke mode trades statistical weight for CI latency; the e2e
    // benches shrink less because their fixed setup (file populate,
    // thread DMA pinning) is a larger fraction of short runs.
    let (micro, e2e) = if smoke { (5, 2) } else { (1, 1) };
    [
        ("translate_ops_per_sec", bench_translate(400_000 / micro)),
        ("queue_polls_per_sec", bench_queue_poll(200_000 / micro)),
        (
            "userlib_read_iops_per_sec",
            bench_userlib_iops(50_000 / e2e),
        ),
        (
            "userlib_batch_read_iops_per_sec",
            bench_userlib_batch_iops(50_016 / e2e),
        ),
    ]
}

fn repo_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}"))
}

/// Smoke mode: compare a shortened run against the committed report;
/// non-zero exit on regression — this is the CI perf contract.
fn smoke() {
    let committed = std::fs::read_to_string(repo_path("BENCH_fastpath.json"))
        .expect("smoke mode needs the committed BENCH_fastpath.json");
    let results = measure(true);
    let mut failed = false;
    for (name, measured) in results {
        let reference = hostinfo::json_number(&committed, "current", name)
            .unwrap_or_else(|| panic!("committed BENCH_fastpath.json lacks current.{name}"));
        let floor = reference * SMOKE_TOLERANCE;
        let ok = measured >= floor;
        failed |= !ok;
        println!(
            "{} {name:<32} {measured:>12.0} /s  (committed {reference:.0}, floor {floor:.0})",
            if ok { "PASS" } else { "FAIL" },
        );
    }
    if failed {
        eprintln!(
            "perf contract violated: e2e throughput regressed below {SMOKE_TOLERANCE} of the \
             committed BENCH_fastpath.json; if the slowdown is intended, regenerate the report \
             with `cargo bench --bench fastpath`"
        );
        std::process::exit(1);
    }
    println!("perf contract holds (tolerance {SMOKE_TOLERANCE})");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let results = measure(false);
    let mut json = String::from(
        "{\n  \"workload\": \"fastpath microbench: translation churn (32768-page set, FTE \
         caching, range shootdowns), CQ polling (depth 512, reap 4), UserLib 4KB random reads \
         (sequential + 32-deep batched)\",\n  \"units\": \"simulated ops per wall-clock \
         second\",\n  ",
    );
    json.push_str(&hostinfo::host_json());
    json.push_str(",\n  \"baseline_pre_overhaul\": {\n");
    for (i, (name, v)) in BASELINE.iter().enumerate() {
        let sep = if i + 1 < BASELINE.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.0}{sep}\n"));
    }
    json.push_str("  },\n  \"current\": {\n");
    for (i, (name, v)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.0}{sep}\n"));
    }
    json.push_str("  },\n  \"speedup\": {\n");
    for (i, ((name, cur), (_, base))) in results.iter().zip(BASELINE.iter()).enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {:.2}{sep}\n", cur / base));
    }
    json.push_str("  }\n}\n");
    std::fs::write(repo_path("BENCH_fastpath.json"), &json).expect("write BENCH_fastpath.json");
    println!("{json}");
    for ((name, cur), (_, base)) in results.iter().zip(BASELINE.iter()) {
        println!("{name:<32} {cur:>12.0} /s  ({:.2}x baseline)", cur / base);
    }
}
