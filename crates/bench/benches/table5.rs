//! Table 5: `fmap()` overheads — default `open()`, open + warm fmap
//! (file tables cached in the inode), and open + cold fmap (tables built
//! from the extent tree) across file sizes.

use bypassd_bench::{full_mode, run_one, std_system, us};
use bypassd_os::OpenFlags;
use bypassd_sim::report::Table;
use bypassd_sim::time::Nanos;

fn main() {
    let system = std_system();
    let mut sizes: Vec<(&str, u64, [f64; 3])> = vec![
        // (label, bytes, paper [open, open+warm, open+cold] in µs)
        ("4KB", 4 << 10, [1.28, 1.96, 2.68]),
        ("1MB", 1 << 20, [1.38, 1.96, 3.67]),
        ("64MB", 64 << 20, [1.74, 2.76, 85.51]),
        ("256MB", 256 << 20, [1.59, 5.79, 333.93]),
        ("1GB", 1 << 30, [1.80, 17.94, 1330.75]),
    ];
    if full_mode() {
        sizes.push(("16GB", 16 << 30, [2.10, 259.94, 21197.88]));
    }

    let mut t = Table::new(
        "Table 5: fmap() overheads (µs) — paper | measured",
        &[
            "size", "open(p)", "open(m)", "warm(p)", "warm(m)", "cold(p)", "cold(m)",
        ],
    );

    for (i, (label, bytes, paper)) in sizes.iter().enumerate() {
        let path = format!("/t5-{i}");
        system.fs().populate(&path, *bytes, 0).unwrap();
        let sys2 = system.clone();
        let p2 = path.clone();
        let (open_t, cold_t, warm_t): (Nanos, Nanos, Nanos) = run_one(move |ctx| {
            let k = sys2.kernel();
            // Default open (no fmap).
            let pid0 = k.spawn_process(0, 0);
            let t0 = ctx.now();
            let fd0 = k
                .sys_open(ctx, pid0, &p2, OpenFlags::rdonly_direct(), 0)
                .unwrap();
            let open_t = ctx.now() - t0;
            k.sys_close(ctx, pid0, fd0).unwrap();

            // Open + cold fmap (first mapping ever builds the tables).
            let pid1 = k.spawn_process(0, 0);
            let t1 = ctx.now();
            let fd1 = k
                .sys_open(ctx, pid1, &p2, OpenFlags::rdonly_direct().bypassd(), 0)
                .unwrap();
            let vba = k.sys_fmap(ctx, pid1, fd1, false).unwrap();
            let cold_t = ctx.now() - t1;
            assert!(!vba.is_null());

            // Open + warm fmap from a second process (shared fragments).
            let pid2 = k.spawn_process(0, 0);
            let t2 = ctx.now();
            let fd2 = k
                .sys_open(ctx, pid2, &p2, OpenFlags::rdonly_direct().bypassd(), 0)
                .unwrap();
            let vba2 = k.sys_fmap(ctx, pid2, fd2, false).unwrap();
            let warm_t = ctx.now() - t2;
            assert!(!vba2.is_null());
            (open_t, cold_t, warm_t)
        });
        t.row(&[
            label,
            &format!("{:.2}", paper[0]),
            &us(open_t),
            &format!("{:.2}", paper[1]),
            &us(warm_t),
            &format!("{:.2}", paper[2]),
            &us(cold_t),
        ]);

        // Shape assertions per row.
        assert!(warm_t >= open_t, "{label}: warm fmap below plain open");
        assert!(cold_t > warm_t, "{label}: cold fmap not above warm");
    }
    t.print();
    println!(
        "OK: warm fmap ~constant until GB sizes; cold fmap grows ~linearly \
         with 2MB fragments (≈2.6µs per fragment, Table 5's slope)"
    );
}
