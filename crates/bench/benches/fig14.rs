//! Figure 14: WiredTiger-like single-thread throughput versus cache
//! size, normalized to the sync baseline. As the cache grows, XRP's
//! advantage fades (fewer back-to-back misses to chain) while BypassD
//! keeps a consistent edge (it accelerates *every* I/O).

use std::sync::Arc;

use bypassd_backends::BackendKind;
use bypassd_bench::{f2, ops, run_btree_ycsb, std_system};
use bypassd_kv::{BtreeConfig, BtreeStore, YcsbWorkload};
use bypassd_sim::report::Table;

fn main() {
    let n_keys: u64 = 400_000;
    let db_bytes = (n_keys / 21 + n_keys / 21 / 40) * 512;
    // Paper sweeps 2/4/6 GB of a 46 GB store: ~4.3% / 8.7% / 13%.
    let cache_fracs = [(2, 43u64), (4, 87), (6, 130)];
    let ops_per_thread = ops(250, 1500);
    let workloads = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::F,
    ];

    let mut xrp_trend: Vec<f64> = Vec::new();
    let mut byp_trend: Vec<f64> = Vec::new();
    for w in workloads {
        let mut t = Table::new(
            &format!("Figure 14 — {w}: 1-thread throughput normalized to sync, by cache size"),
            &["cache(paper GB)", "sync", "xrp", "bypassd"],
        );
        for (paper_gb, frac_permille) in cache_fracs {
            let cache_bytes = db_bytes * frac_permille / 1000;
            let system = std_system();
            let store = Arc::new(
                BtreeStore::build(
                    &system,
                    BtreeConfig::new(&format!("/wt14-{w}-{paper_gb}"), n_keys, cache_bytes),
                )
                .unwrap(),
            );
            let mut kops = Vec::new();
            for kind in [BackendKind::Sync, BackendKind::Xrp, BackendKind::Bypassd] {
                let r = run_btree_ycsb(&system, &store, kind, w, n_keys, 1, ops_per_thread, 9);
                kops.push(r.kops());
            }
            let (sync, xrp, byp) = (kops[0], kops[1], kops[2]);
            t.row(&[
                &paper_gb.to_string(),
                "1.00",
                &f2(xrp / sync),
                &f2(byp / sync),
            ]);
            if w == YcsbWorkload::C {
                xrp_trend.push(xrp / sync);
                byp_trend.push(byp / sync);
            }
        }
        t.print();
    }

    println!(
        "YCSB C: xrp/sync across cache sizes = {:?}; bypassd/sync = {:?}",
        xrp_trend
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>(),
        byp_trend
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
    );
    // XRP's relative benefit must shrink as the cache grows…
    assert!(
        xrp_trend[2] < xrp_trend[0] + 0.02,
        "XRP benefit should fade with cache size: {xrp_trend:?}"
    );
    // …while BypassD stays consistently above baseline at every size.
    for v in &byp_trend {
        assert!(
            *v > 1.05,
            "bypassd must keep a consistent edge: {byp_trend:?}"
        );
    }
    // And BypassD ≥ XRP at the largest cache.
    assert!(
        byp_trend[2] > xrp_trend[2],
        "bypassd must lead xrp at 6GB-equivalent"
    );
    println!("OK: Figure 14 shape reproduced");
}
