//! Figure 6: fio single-threaded random-access latency vs bandwidth for
//! block sizes 4 KB–128 KB, reads and writes, across the five systems.

use bypassd_backends::{make_factory, BackendKind};
use bypassd_bench::{f2, ops, std_system, us};
use bypassd_fio::{run_job, JobSpec, RwMode};
use bypassd_sim::report::Table;
use bypassd_sim::time::Nanos;

fn main() {
    let systems = [
        BackendKind::Sync,
        BackendKind::Libaio,
        BackendKind::IoUring,
        BackendKind::Spdk,
        BackendKind::Bypassd,
    ];
    let sizes = [4u64, 8, 16, 32, 64, 128];
    let n_ops = ops(300, 2000);

    for (mode, title) in [
        (
            RwMode::RandRead,
            "Figure 6a: random read latency(µs)/bandwidth(GB/s)",
        ),
        (
            RwMode::RandWrite,
            "Figure 6b: random write latency(µs)/bandwidth(GB/s)",
        ),
    ] {
        let mut t = Table::new(
            title,
            &["bs", "sync", "libaio", "io_uring", "spdk", "bypassd"],
        );
        let mut byp_vs_sync = Vec::new();
        for bs_kb in sizes {
            let mut cells = vec![format!("{bs_kb}KB")];
            let mut lat = std::collections::HashMap::new();
            for kind in systems {
                let system = std_system();
                let factory = make_factory(kind, &system, 0, 0);
                let spec = JobSpec {
                    name: format!("{bs_kb}k"),
                    mode,
                    block_size: bs_kb << 10,
                    file: "/fio".into(),
                    file_size: 256 << 20,
                    threads: 1,
                    ops_per_thread: n_ops,
                    warmup_ops: 16,
                    per_thread_files: false,
                    seed: 11,
                    start_at: Nanos::ZERO,
                };
                let r = run_job(&system, factory, spec);
                lat.insert(kind, r.mean_latency());
                cells.push(format!("{}/{}", us(r.mean_latency()), f2(r.gbps())));
            }
            byp_vs_sync.push((
                bs_kb,
                lat[&BackendKind::Bypassd].as_nanos() as f64
                    / lat[&BackendKind::Sync].as_nanos() as f64,
            ));
            // Orderings the figure shows, at every block size.
            assert!(lat[&BackendKind::Spdk] <= lat[&BackendKind::Bypassd]);
            assert!(lat[&BackendKind::Bypassd] < lat[&BackendKind::IoUring]);
            assert!(lat[&BackendKind::IoUring] < lat[&BackendKind::Sync]);
            t.row_owned(cells);
        }
        t.print();
        let (small_bs, small_ratio) = byp_vs_sync[0];
        let (big_bs, big_ratio) = byp_vs_sync[byp_vs_sync.len() - 1];
        println!(
            "bypassd/sync latency ratio: {:.2} at {small_bs}KB, {:.2} at {big_bs}KB \
             (paper: ~0.6 at 4KB; gap narrows as device time dominates)\n",
            small_ratio, big_ratio
        );
        assert!(
            small_ratio < 0.75,
            "no speedup at small blocks: {small_ratio}"
        );
        assert!(big_ratio > small_ratio, "gap should narrow at large blocks");
    }
    println!("OK: Figure 6 shape reproduced");
}
