//! Figure 9: 4 KB random-read latency and IOPS with increasing thread
//! count, across the five systems. Expected shape: SPDK/BypassD flat and
//! low until the device saturates (~1.5 M IOPS); kernel paths higher;
//! io_uring collapses past 12 threads (SQPOLL needs a core per job).

use bypassd_backends::{make_factory, BackendKind};
use bypassd_bench::{f1, ops, std_system, us};
use bypassd_fio::{run_job, JobSpec, RwMode};
use bypassd_sim::report::Table;
use bypassd_sim::time::Nanos;
use std::collections::HashMap;

fn main() {
    let threads = [1usize, 2, 4, 8, 12, 16, 20, 24];
    let systems = [
        BackendKind::Sync,
        BackendKind::Libaio,
        BackendKind::IoUring,
        BackendKind::Spdk,
        BackendKind::Bypassd,
    ];
    let n_ops = ops(250, 1500);

    let mut t = Table::new(
        "Figure 9: 4KB randread — latency(µs)/KIOPS per thread count",
        &["threads", "sync", "libaio", "io_uring", "spdk", "bypassd"],
    );
    let mut data: HashMap<(BackendKind, usize), (Nanos, f64)> = HashMap::new();
    for n in threads {
        let mut cells = vec![n.to_string()];
        for kind in systems {
            let system = std_system();
            let r = run_job(
                &system,
                make_factory(kind, &system, 0, 0),
                JobSpec {
                    name: "f9".into(),
                    mode: RwMode::RandRead,
                    block_size: 4096,
                    file: "/fio9".into(),
                    file_size: 512 << 20,
                    threads: n,
                    ops_per_thread: n_ops,
                    warmup_ops: 16,
                    per_thread_files: false,
                    seed: 17,
                    start_at: Nanos::ZERO,
                },
            );
            data.insert((kind, n), (r.mean_latency(), r.kiops()));
            cells.push(format!("{}/{}", us(r.mean_latency()), f1(r.kiops())));
        }
        t.row_owned(cells);
    }
    t.print();

    // Shape assertions.
    let lat = |k, n| data[&(k, n)].0;
    let iops = |k, n| data[&(k, n)].1;
    // BypassD latency stays ~flat until saturation (paper: constant to
    // ~8 threads).
    let flat = lat(BackendKind::Bypassd, 8).as_nanos() as f64
        / lat(BackendKind::Bypassd, 1).as_nanos() as f64;
    assert!(flat < 1.4, "bypassd latency grew {flat:.2}x by 8 threads");
    // Device saturation: ~1.2-1.8M IOPS at high thread counts.
    let sat = iops(BackendKind::Bypassd, 24);
    assert!(
        (1_100.0..1_900.0).contains(&sat),
        "saturation = {sat:.0} KIOPS"
    );
    // At saturation the gap between systems closes (device-bound).
    let gap = iops(BackendKind::Bypassd, 24) / iops(BackendKind::Sync, 24);
    assert!(
        gap < 1.25,
        "systems should converge at saturation: {gap:.2}"
    );
    // At low thread counts BypassD leads the kernel paths.
    assert!(iops(BackendKind::Bypassd, 1) > iops(BackendKind::Sync, 1) * 1.3);
    // io_uring collapses past 12 threads.
    let uring_drop = lat(BackendKind::IoUring, 16).as_nanos() as f64
        / lat(BackendKind::IoUring, 12).as_nanos() as f64;
    assert!(
        uring_drop > 1.5,
        "io_uring should collapse past 12 threads: {uring_drop:.2}"
    );
    println!(
        "OK: Figure 9 shape reproduced (flat bypassd, ~1.5M IOPS saturation, io_uring collapse)"
    );
}
