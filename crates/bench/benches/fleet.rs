//! Fleet scaling benchmark: the sharded parallel event executor versus
//! the monolithic single-timeline simulation, on the 1 000- and
//! 10 000-process shared-SSD scenarios.
//!
//! Full mode runs the monolithic baseline once per scale, then the
//! sharded fleet at 1/2/4/8 workers. Along the way it enforces the two
//! correctness contracts that make the wall-clock numbers meaningful:
//! every worker count must produce the bit-identical virtual-time
//! fingerprint, and the fleet must reach the same logical outcome
//! (op totals, remote counts, writes, revocations, media fingerprints)
//! as the monolithic run. It writes `BENCH_fleet.json` at the repo root
//! with the full matrix plus host metadata.
//!
//! **CI perf contract:** `cargo bench --bench fleet -- --smoke` runs the
//! smoke-sized fleet, re-checks both correctness contracts, and compares
//! throughput against the *committed* `BENCH_fleet.json`, failing
//! (non-zero exit) on regression. The parallel-scaling floor is scaled
//! by the host's core count — a 1-core runner can only demand that the
//! 8-worker run is not grossly slower than 1 worker, while an 8-core
//! host must show the >= 3x the subsystem exists to deliver. Smoke mode
//! never rewrites the report.

use std::time::Instant;

use bypassd::fleet::{FleetBuilder, FleetConfig, FleetReport};
use bypassd_bench::hostinfo;

/// Worker counts swept in full mode; smoke mode uses the first and last.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// A smoke-mode throughput may land this far below its committed value
/// before the contract fails. Wider than the fastpath tolerance because
/// a fleet run's wall clock includes thread spawn/join for every lane
/// worker, which is noisier on shared runners.
const SMOKE_TOLERANCE: f64 = 0.50;

/// Per-core parallel-efficiency demanded by the smoke scaling floor:
/// with `c = min(cores, 8)`, the 8-worker run must be at least
/// `max(c * 0.375, 0.45)` times as fast as the 1-worker run. At 8 cores
/// that is the 3.0x contract from the fleet issue; at 1 core it only
/// guards against the sharding machinery itself becoming a > 2.2x
/// overhead.
const PER_CORE_EFFICIENCY: f64 = 0.375;
const SCALING_FLOOR_MIN: f64 = 0.45;

struct ScaleResult {
    label: &'static str,
    ops: u64,
    mono_secs: f64,
    fleet_secs: [f64; WORKERS.len()],
}

impl ScaleResult {
    fn best_fleet_secs(&self) -> f64 {
        self.fleet_secs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    fn speedup_w8_over_w1(&self) -> f64 {
        self.fleet_secs[0] / self.fleet_secs[WORKERS.len() - 1]
    }

    fn speedup_over_monolithic(&self) -> f64 {
        self.mono_secs / self.best_fleet_secs()
    }
}

fn timed(f: impl FnOnce() -> FleetReport) -> (FleetReport, f64) {
    let start = Instant::now();
    let report = f();
    (report, start.elapsed().as_secs_f64())
}

/// Run one scale end-to-end: monolithic baseline, then the worker
/// sweep, enforcing fingerprint invariance and outcome equivalence.
fn run_scale(label: &'static str, cfg: FleetConfig) -> ScaleResult {
    let fleet = FleetBuilder::new(cfg);
    let (mono, mono_secs) = timed(|| fleet.run_monolithic());
    println!(
        "{label:>4} monolithic        {mono_secs:>8.3}s  ({} ops)",
        mono.total_ops()
    );

    let mut fleet_secs = [0.0; WORKERS.len()];
    let mut fingerprint = None;
    let mut ops = 0;
    for (i, &w) in WORKERS.iter().enumerate() {
        let (report, secs) = timed(|| fleet.run(w));
        fleet_secs[i] = secs;
        ops = report.total_ops();
        println!(
            "{label:>4} fleet workers={w}   {secs:>8.3}s  (fingerprint {:#018x})",
            report.fingerprint()
        );
        match fingerprint {
            None => {
                report.assert_same_outcome(&mono);
                fingerprint = Some(report.fingerprint());
            }
            Some(fp) => assert_eq!(
                report.fingerprint(),
                fp,
                "{label}: fingerprint diverged at {w} workers — worker-count invariance broken"
            ),
        }
    }
    ScaleResult {
        label,
        ops,
        mono_secs,
        fleet_secs,
    }
}

fn repo_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}"))
}

/// Smoke mode: correctness contracts on the smoke fleet, then the
/// throughput and scaling floors against the committed report — this is
/// the CI perf contract.
fn smoke() {
    let committed = std::fs::read_to_string(repo_path("BENCH_fleet.json"))
        .expect("smoke mode needs the committed BENCH_fleet.json");

    let fleet = FleetBuilder::new(FleetConfig::smoke());
    let (mono, _) = timed(|| fleet.run_monolithic());
    let (w1, w1_secs) = timed(|| fleet.run(1));
    let (w8, w8_secs) = timed(|| fleet.run(8));
    w1.assert_same_outcome(&mono);
    assert_eq!(
        w1.fingerprint(),
        w8.fingerprint(),
        "smoke fleet fingerprint diverged between 1 and 8 workers"
    );
    println!(
        "PASS determinism + outcome equivalence (fingerprint {:#018x})",
        w1.fingerprint()
    );

    let mut failed = false;

    let measured = w1.total_ops() as f64 / w1_secs;
    let reference = hostinfo::json_number(&committed, "smoke", "ops_per_sec_w1")
        .expect("committed BENCH_fleet.json lacks smoke.ops_per_sec_w1");
    let floor = reference * SMOKE_TOLERANCE;
    let ok = measured >= floor;
    failed |= !ok;
    println!(
        "{} smoke ops_per_sec_w1   {measured:>12.0} /s  (committed {reference:.0}, floor {floor:.0})",
        if ok { "PASS" } else { "FAIL" },
    );

    let cores = hostinfo::cores().min(8) as f64;
    let scaling_floor = (cores * PER_CORE_EFFICIENCY).max(SCALING_FLOOR_MIN);
    let scaling = w1_secs / w8_secs;
    let ok = scaling >= scaling_floor;
    failed |= !ok;
    println!(
        "{} smoke speedup w8/w1    {scaling:>12.2} x   (floor {scaling_floor:.2} on {} core(s))",
        if ok { "PASS" } else { "FAIL" },
        hostinfo::cores(),
    );

    if failed {
        eprintln!(
            "fleet perf contract violated; if the slowdown is intended, regenerate the report \
             with `cargo bench --bench fleet`"
        );
        std::process::exit(1);
    }
    println!(
        "fleet perf contract holds (tolerance {SMOKE_TOLERANCE}, scaling floor {scaling_floor:.2})"
    );
}

fn scale_json(r: &ScaleResult) -> String {
    let mut s = format!("  \"{}\": {{\n    \"ops\": {},\n", r.label, r.ops);
    s.push_str(&format!("    \"mono_secs\": {:.3},\n", r.mono_secs));
    for (i, &w) in WORKERS.iter().enumerate() {
        s.push_str(&format!("    \"w{w}_secs\": {:.3},\n", r.fleet_secs[i]));
    }
    s.push_str(&format!(
        "    \"speedup_w8_over_w1\": {:.2},\n    \"speedup_over_monolithic\": {:.2}\n  }}",
        r.speedup_w8_over_w1(),
        r.speedup_over_monolithic(),
    ));
    s
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let smoke_fleet = FleetBuilder::new(FleetConfig::smoke());
    let (smoke_report, smoke_secs) = timed(|| smoke_fleet.run(1));
    let smoke_ops_per_sec = smoke_report.total_ops() as f64 / smoke_secs;

    let k1 = run_scale("1k", FleetConfig::k1());
    let k10 = run_scale("10k", FleetConfig::k10());

    let mut json = String::from(
        "{\n  \"workload\": \"fleet scaling: sharded event lanes (1 machine lane per shard + \
         control lane, Chandy-Misra lookahead = PCIe RTT) vs one monolithic timeline; mixed \
         read/write + cross-machine remote reads + QoS pressure epochs + revocations\",\n  \
         \"units\": \"wall-clock seconds per full scenario\",\n  ",
    );
    json.push_str(&hostinfo::host_json());
    json.push_str(",\n  \"smoke\": {\n");
    json.push_str(&format!("    \"ops\": {},\n", smoke_report.total_ops()));
    json.push_str(&format!(
        "    \"ops_per_sec_w1\": {smoke_ops_per_sec:.0}\n  }},\n"
    ));
    json.push_str(&scale_json(&k1));
    json.push_str(",\n");
    json.push_str(&scale_json(&k10));
    json.push_str("\n}\n");
    std::fs::write(repo_path("BENCH_fleet.json"), &json).expect("write BENCH_fleet.json");
    println!("{json}");
    for r in [&k1, &k10] {
        println!(
            "{:>4}: {} ops  mono {:.3}s  fleet best {:.3}s  ({:.2}x vs mono, w8/w1 {:.2}x)",
            r.label,
            r.ops,
            r.mono_secs,
            r.best_fleet_secs(),
            r.speedup_over_monolithic(),
            r.speedup_w8_over_w1(),
        );
    }
}
