//! Tracing overhead: proves the flight recorder honors its contract.
//!
//! Three claims, checked on the UserLib 4 KB random-read path:
//!
//! 1. **Disabled is near-free.** Every stamp site costs one relaxed
//!    atomic load when tracing is off; the aggregate per-op cost must
//!    stay under 5% of the per-op simulator wall time.
//! 2. **Enabled never perturbs the model.** Recording is passive — the
//!    virtual end time of the traced and sampled runs must be
//!    bit-identical to the untraced run.
//! 3. **Sampling bounds the cost.** Full and 1-in-16 sampled tracing
//!    slow the simulator by a bounded wall-clock factor.
//!
//! Writes `BENCH_trace_overhead.json` at the repo root.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use bypassd::{Recorder, System, TraceConfig, UserProcess};
use bypassd_bench::hostinfo;
use bypassd_sim::rng::Rng;
use bypassd_sim::{Nanos, Simulation};

const OPS: u64 = 30_000;
const FILE: u64 = 64 << 20;

struct Run {
    wall_iops: f64,
    virtual_end: Nanos,
    records: u64,
}

/// One single-threaded 4 KB random-read run under the given trace
/// config. Returns simulator speed (wall), the virtual end time (model)
/// and how many records the recorder captured.
fn run(config: TraceConfig) -> Run {
    let sys = System::builder().capacity(256 << 20).trace(config).build();
    sys.fs().populate("/hot", FILE, 0x5a).unwrap();
    let start = Instant::now();
    let sim = Simulation::new();
    let s2 = sys.clone();
    let end = Arc::new(Mutex::new(Nanos::ZERO));
    let e2 = Arc::clone(&end);
    sim.spawn("reader", move |ctx| {
        let proc = UserProcess::start(&s2, 0, 0);
        let mut t = proc.thread();
        let fd = t.open(ctx, "/hot", false).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut rng = Rng::new(99);
        for _ in 0..OPS {
            let off = rng.gen_range(FILE / 4096) * 4096;
            let n = t.pread(ctx, fd, &mut buf, off).unwrap();
            assert_eq!(n, 4096);
        }
        *e2.lock() = ctx.now();
    });
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let counts = sys.recorder().counts();
    let virtual_end = *end.lock();
    Run {
        wall_iops: OPS as f64 / wall,
        virtual_end,
        records: counts.device + counts.ops,
    }
}

/// Wall-clock cost of one stamp site with the recorder disabled (the
/// default-build cost): one relaxed load, closure never built.
fn disabled_stamp_cost_ns() -> f64 {
    const N: u64 = 20_000_000;
    let rec = Recorder::disabled();
    let start = Instant::now();
    for _ in 0..N {
        rec.record_device(|| unreachable!("disabled recorder must not build records"));
    }
    start.elapsed().as_secs_f64() * 1e9 / N as f64
}

fn main() {
    // The CI trace job exports BYPASSD_TRACE=1 for the test suite; this
    // bench compares explicit configs, so the env override must not
    // silently turn the "off" run on.
    std::env::remove_var("BYPASSD_TRACE");
    std::env::remove_var("BYPASSD_TRACE_SAMPLE");
    std::env::remove_var("BYPASSD_TRACE_RING");

    let off = run(TraceConfig::default());
    let on = run(TraceConfig::on());
    let sampled = run(TraceConfig::sampled(16));

    assert_eq!(off.records, 0, "off run must record nothing");
    assert!(on.records > 0, "traced run captured nothing");
    assert!(
        sampled.records > 0 && sampled.records < on.records,
        "sampling must keep a strict subset: {} vs {}",
        sampled.records,
        on.records
    );

    // Claim 2: recording is passive. Virtual time must not move at all.
    assert_eq!(
        off.virtual_end, on.virtual_end,
        "tracing perturbed the model: {} vs {}",
        off.virtual_end, on.virtual_end
    );
    assert_eq!(
        off.virtual_end, sampled.virtual_end,
        "sampled tracing perturbed the model: {} vs {}",
        off.virtual_end, sampled.virtual_end
    );

    // Claim 1: the default build pays one relaxed load per stamp site.
    // A 4 KB direct read crosses two sites (device record + op record).
    let stamp_ns = disabled_stamp_cost_ns();
    let per_op_ns = 1e9 / off.wall_iops;
    let stamps_per_op = 2.0;
    let disabled_overhead = stamp_ns * stamps_per_op / per_op_ns;
    assert!(
        disabled_overhead < 0.05,
        "disabled tracing must cost <5% per op: {:.4} ({stamp_ns:.1}ns/stamp vs {per_op_ns:.0}ns/op)",
        disabled_overhead
    );

    // Claim 3: wall-clock overhead of recording stays bounded. With the
    // single-RMW sampler and preallocated rings the measured slowdown is
    // within run-to-run noise; the bounds leave headroom for shared CI
    // machines while still catching the pre-overhaul 1.15-1.25x costs.
    let slowdown_on = off.wall_iops / on.wall_iops;
    let slowdown_sampled = off.wall_iops / sampled.wall_iops;
    assert!(
        slowdown_on < 2.0,
        "full tracing slowdown out of bounds: {slowdown_on:.2}x"
    );
    assert!(
        slowdown_sampled < 1.25,
        "sampled tracing slowdown out of bounds: {slowdown_sampled:.2}x"
    );

    let json = format!(
        "{{\n  \"workload\": \"UserLib 4KB random reads, {OPS} ops, single thread\",\n  {host},\n  \
         \"disabled\": {{\n    \"wall_iops\": {:.0},\n    \"stamp_cost_ns\": {:.2},\n    \
         \"stamps_per_op\": {stamps_per_op},\n    \"overhead_fraction\": {:.5},\n    \
         \"budget_fraction\": 0.05\n  }},\n  \
         \"enabled\": {{\n    \"wall_iops\": {:.0},\n    \"records\": {},\n    \
         \"slowdown_vs_off\": {:.3}\n  }},\n  \
         \"sampled_1_in_16\": {{\n    \"wall_iops\": {:.0},\n    \"records\": {},\n    \
         \"slowdown_vs_off\": {:.3}\n  }},\n  \
         \"virtual_time_bit_identical\": true,\n  \"virtual_end_ns\": {}\n}}\n",
        off.wall_iops,
        stamp_ns,
        disabled_overhead,
        on.wall_iops,
        on.records,
        slowdown_on,
        sampled.wall_iops,
        sampled.records,
        slowdown_sampled,
        off.virtual_end.as_nanos(),
        host = hostinfo::host_json(),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace_overhead.json");
    std::fs::write(&path, &json).expect("write BENCH_trace_overhead.json");
    println!("{json}");
    println!(
        "OK: tracing contract holds (disabled {:.3}% per op, on {:.2}x, sampled {:.2}x, \
         virtual time identical)",
        disabled_overhead * 100.0,
        slowdown_on,
        slowdown_sampled
    );
}
